//! Monitor quickstart: the observe→detect→adapt loop in one process.
//!
//! A job is tuned at 5×Wu, then *watched*: the monitor polls its backend
//! every tick while the scripted environment shifts the source rate to
//! 10×Wu mid-run. The CUSUM detector spots the change point, estimates the
//! shifted multiplier from the dashboard rates alone, and the adaptation
//! policy re-tunes the job through the job manager — producing exactly
//! the recommendation a manual re-submit at the shifted rate would.
//!
//! ```sh
//! cargo run --release --example monitor_quickstart
//! ```
//!
//! The same verbs (`watch` / `tick` / `drift_status`) work over
//! `streamtune serve --listen ADDR`, and `streamtune monitor` wraps this
//! whole flow in one CLI command.

use streamtune::core::Parallelism;
use streamtune::prelude::*;
use streamtune::serve::{JobState, Request, ServerConfig};
use streamtune::workloads::history::HistoryGenerator;
use streamtune::workloads::rates::Engine;

fn main() {
    // 1. Bootstrap an in-process server (fast pre-train, no store).
    println!("pre-training…");
    let config = ServerConfig::fast().with_parallelism(Parallelism::Auto);
    let (mut server, _) = Server::bootstrap(None, config, || {
        let cluster = SimCluster::flink_defaults(81);
        HistoryGenerator::new(81).with_jobs(14).generate(&cluster)
    })
    .expect("bootstrap failed");
    println!("  {} cluster(s) ready", server.pretrained().clusters.len());

    // 2. Tune a job at 5×Wu.
    let spec = JobSpec {
        name: "checkout".to_string(),
        query: "nexmark-q1".to_string(),
        multiplier: 5.0,
        seed: 21,
        engine: Engine::Flink,
        backend: BackendSpec::Sim,
    };
    server.handle(&Request::Submit(spec));
    server.handle(&Request::Status); // drain the queue
    let degrees_before = match &server.manager().job("checkout").unwrap().state {
        JobState::Done(r) => r.outcome.final_assignment.clone(),
        other => panic!("job not tuned: {other:?}"),
    };
    println!(
        "tuned `checkout` at 5×Wu → total parallelism {}",
        degrees_before.total()
    );

    // 3. Watch it under a scripted rate shift: ten quiet ticks, then the
    //    environment jumps to 10×Wu (the monitor only sees the dashboard).
    let schedule: Vec<f64> = std::iter::repeat_n(5.0, 10).chain([10.0]).collect();
    server.handle(&Request::Watch {
        job: "checkout".to_string(),
        schedule: Some(schedule),
    });
    println!("watching `checkout`; the source rate will shift to 10×Wu at tick 10…");

    // 4. Tick the monitor until the drift is detected and adapted.
    let report = server.tick_monitor(30);
    for event in &report.events {
        println!("  tick event: [{}] {}", event.kind, event.detail);
    }
    assert_eq!(
        report.events.len(),
        1,
        "the shift fires exactly one adaptation"
    );

    // 5. The job was automatically re-tuned — identical to a manual
    //    re-submit at the shifted rate.
    let job = server.manager().job("checkout").unwrap();
    let JobState::Done(result) = &job.state else {
        panic!("job not re-tuned: {:?}", job.state)
    };
    println!(
        "auto re-tune #{} at {}×Wu → total parallelism {} (was {})",
        job.retunes,
        job.spec.multiplier,
        result.outcome.final_assignment.total(),
        degrees_before.total()
    );
    assert_eq!(job.retunes, 1);
    assert_eq!(job.spec.multiplier, 10.0);
    assert_ne!(result.outcome.final_assignment, degrees_before);

    // 6. Drift status: one stable, re-baselined watch.
    if let streamtune::serve::Response::Drift { watches: lines, .. } =
        server.handle(&Request::DriftStatus).0
    {
        for l in lines {
            println!(
                "drift status: {} is {} after {} tick(s), {} trigger(s), {} re-tune(s)",
                l.job, l.class, l.ticks, l.triggers, l.retunes
            );
        }
    }
    println!("done — the loop closed without any manual re-submit");
}
