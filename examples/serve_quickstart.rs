//! Serve quickstart: drive an in-process tuning server through the
//! line-delimited JSON control protocol — submit three jobs, read their
//! recommendations, snapshot the model store, and shut down cleanly.
//!
//! ```sh
//! cargo run --release --example serve_quickstart
//! ```
//!
//! The same byte stream works over `streamtune serve --listen ADDR` +
//! `streamtune client --connect ADDR`; the in-process buffer here just
//! removes the socket.

use std::io::Cursor;
use streamtune::prelude::*;
use streamtune::serve::{parse_request, Request, Response, ServerConfig};
use streamtune::workloads::history::HistoryGenerator;

fn main() {
    // 1. Bootstrap: no store on disk yet, so this pre-trains (fast
    //    config) and persists the model store for the next run.
    let store_dir = std::env::temp_dir().join(format!(
        "streamtune-serve-quickstart-{}",
        std::process::id()
    ));
    println!(
        "bootstrapping server (model store at {})…",
        store_dir.display()
    );
    let (mut server, report) = Server::bootstrap(
        Some(ModelStore::new(&store_dir)),
        ServerConfig::fast(),
        || {
            let cluster = SimCluster::flink_defaults(42);
            HistoryGenerator::new(7).with_jobs(40).generate(&cluster)
        },
    )
    .expect("bootstrap failed");
    println!(
        "  {} cluster(s), loaded_from_store = {}",
        server.pretrained().clusters.len(),
        report.loaded_from_store
    );

    // 2. A scripted protocol session: three submissions, their
    //    recommendations, a snapshot, and shutdown. Each line is exactly
    //    what a TCP client would send.
    let script = r#"
# three concurrent tuning jobs sharing one pre-trained corpus
{"submit": {"name": "checkout", "query": "nexmark-q1", "multiplier": 10.0, "seed": 1, "engine": "flink", "backend": "sim"}}
{"submit": {"name": "fraud", "query": "nexmark-q5", "multiplier": 8.0, "seed": 2, "engine": "flink", "backend": "sim"}}
{"submit": {"name": "billing", "query": "nexmark-q8", "multiplier": 6.0, "seed": 3, "engine": "flink", "backend": "sim"}}
"status"
{"recommend": {"job": "checkout"}}
{"recommend": {"job": "fraud"}}
{"recommend": {"job": "billing"}}
"snapshot"
"shutdown"
"#;

    let mut raw = Vec::new();
    let shutdown = server
        .serve(Cursor::new(script), &mut raw)
        .expect("serve failed");
    assert!(shutdown, "the script ends with shutdown");

    // 3. Render the session: requests on the left, responses decoded.
    let responses = String::from_utf8(raw).expect("responses are UTF-8");
    let requests = script
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'));
    println!("\nprotocol session:");
    for (req_line, resp_line) in requests.zip(responses.lines()) {
        let request = parse_request(req_line).expect("script lines are valid requests");
        let response: Response = serde_json::from_str(resp_line).expect("valid response");
        match (&request, &response) {
            (Request::Submit(spec), Response::Submitted { cluster, .. }) => {
                println!(
                    "  submit {:<9} ({} @ {}×Wu) → admitted to cluster {cluster}",
                    spec.name, spec.query, spec.multiplier
                );
            }
            (_, Response::Status(status)) => {
                println!("  status → {} job(s):", status.jobs.len());
                for l in &status.jobs {
                    println!("      {:<9} {:<10} {}", l.name, l.query, l.state);
                }
            }
            (_, Response::Recommendation(rec)) => {
                println!(
                    "  recommend {:<9} → total parallelism {} in {} reconfiguration(s):",
                    rec.job, rec.total, rec.reconfigurations
                );
                for (name, degree) in rec.op_names.iter().zip(&rec.degrees) {
                    println!("      {name:<20} parallelism {degree}");
                }
            }
            (_, Response::Snapshotted { dir }) => {
                println!("  snapshot → model store persisted at {dir}");
            }
            (_, Response::ShuttingDown) => println!("  shutdown → server stopped"),
            (_, Response::Error { message }) => println!("  error: {message}"),
            other => println!("  unexpected pairing: {other:?}"),
        }
    }

    // 4. Restart from the snapshot: the second bootstrap must load the
    //    store (no retraining) and still know all three jobs.
    let (restarted, report) = Server::bootstrap(
        Some(ModelStore::new(&store_dir)),
        ServerConfig::fast(),
        || unreachable!("a persisted store must not retrain"),
    )
    .expect("restart failed");
    println!(
        "\nrestart: loaded_from_store = {}, {} job(s) restored from the ledger",
        report.loaded_from_store, report.restored_jobs
    );
    assert!(report.loaded_from_store);
    assert_eq!(report.restored_jobs, 3);
    drop(restarted);

    std::fs::remove_dir_all(&store_dir).ok();
}
