//! Compare all four tuners (DS2, ContTune, ZeroTune, StreamTune) on a PQP
//! 2-way-join query under a burst of source-rate changes — a miniature of
//! the paper's Fig. 6 / Fig. 7a evaluation.
//!
//! ```sh
//! cargo run --release --example compare_tuners
//! ```

use streamtune::backend::{Tuner, TuningSession};
use streamtune::baselines::{ContTune, Ds2, ZeroTune, ZeroTuneConfig};
use streamtune::prelude::*;
use streamtune::workloads::history::HistoryGenerator;

fn main() {
    let mut cluster = SimCluster::flink_defaults(9);
    println!("building shared knowledge base…");
    let corpus = HistoryGenerator::new(9).with_jobs(48).generate(&cluster);
    let pretrained = Pretrainer::new(PretrainConfig::fast()).run(&corpus);

    let rates = [3.0, 10.0, 5.0, 8.0];
    let workload = pqp::two_way_join_query(4);

    // Each tuner lives across all rate changes (continuous operation).
    let mut tuners: Vec<(String, Box<dyn Tuner>)> = vec![
        ("DS2".into(), Box::new(Ds2::default())),
        ("ContTune".into(), Box::new(ContTune::default())),
        (
            "ZeroTune".into(),
            Box::new(ZeroTune::train(&corpus, ZeroTuneConfig::default())),
        ),
        (
            "StreamTune".into(),
            Box::new(StreamTune::new(&pretrained, TuneConfig::default())),
        ),
    ];

    println!(
        "\n{:<12} {:>6} {:>10} {:>9} {:>13}",
        "method", "rate", "total-par", "reconfigs", "backpressure"
    );
    for (name, tuner) in &mut tuners {
        let mut carry: Option<ParallelismAssignment> = None;
        for (k, &m) in rates.iter().enumerate() {
            let flow = workload.at(m);
            let mut session = match carry.take() {
                Some(a) => TuningSession::with_initial(&mut cluster, &flow, a, k as u64 * 100),
                None => TuningSession::new(&mut cluster, &flow),
            };
            let out = tuner.tune(&mut session).expect("tuning failed");
            println!(
                "{:<12} {:>4}×W {:>10} {:>9} {:>13}",
                name,
                m,
                out.final_assignment.total(),
                out.reconfigurations,
                out.backpressure_events
            );
            carry = Some(out.final_assignment);
        }
        println!();
    }
    println!("Expected shape: ZeroTune over-provisions; StreamTune matches or beats");
    println!("DS2/ContTune on parallelism with the fewest reconfigurations.");
}
