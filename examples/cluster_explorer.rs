//! Explore the GED-based clustering of a dataflow-DAG corpus: distances,
//! cluster assignments, similarity centers, and where an unseen query
//! would land (paper §IV-C machinery, standalone).
//!
//! ```sh
//! cargo run --release --example cluster_explorer
//! ```

use streamtune::cluster::{cluster_dags, nearest_center, ClusterConfig};
use streamtune::dataflow::GraphSignature;
use streamtune::ged::{ged_lsa, GraphView};
use streamtune::workloads::{nexmark, pqp, rates::Engine};

fn main() {
    // A corpus mixing the Nexmark queries with PQP templates.
    let mut workloads = nexmark::all(Engine::Flink);
    workloads.extend(pqp::linear_queries().into_iter().take(4));
    workloads.extend(pqp::two_way_join_queries().into_iter().take(4));
    workloads.extend(pqp::three_way_join_queries().into_iter().take(4));

    let graphs: Vec<(GraphView, GraphSignature)> = workloads
        .iter()
        .map(|w| (GraphView::of(&w.flow), GraphSignature::of(&w.flow)))
        .collect();

    // Pairwise GED between a few representative queries.
    println!("pairwise graph edit distances:");
    let names = ["nexmark-q1", "nexmark-q8", "pqp-linear-0", "pqp-3way-0"];
    for a in names {
        for b in names {
            let ia = workloads.iter().position(|w| w.name == a).expect("exists");
            let ib = workloads.iter().position(|w| w.name == b).expect("exists");
            let d = ged_lsa(&graphs[ia].0, &graphs[ib].0, 64).capped();
            print!("{d:>4}");
        }
        println!("   {a}");
    }

    // Cluster with k chosen by the elbow method.
    let clustering = cluster_dags(&graphs, &ClusterConfig::default());
    println!(
        "\nclustered {} DAGs into k = {} (inertia {:.1}):",
        graphs.len(),
        clustering.k,
        clustering.inertia
    );
    for c in 0..clustering.k {
        let members: Vec<&str> = clustering
            .members(c)
            .into_iter()
            .map(|i| workloads[i].name.as_str())
            .collect();
        println!(
            "  cluster {c} (center {}): {}",
            workloads[clustering.centers[c]].name,
            members.join(", ")
        );
    }

    // Where would an unseen query land?
    let unseen = pqp::two_way_join_query(11);
    let centers: Vec<GraphView> = clustering
        .centers
        .iter()
        .map(|&g| graphs[g].0.clone())
        .collect();
    let (c, d) = nearest_center(&GraphView::of(&unseen.flow), &centers, 64);
    println!(
        "\nunseen query {} → cluster {c} (GED {d} to its similarity center)",
        unseen.name
    );
}
