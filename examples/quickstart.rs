//! Quickstart: pre-train StreamTune on a simulated execution-history
//! corpus, then tune Nexmark Q5 online through the backend-agnostic
//! execution API.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use streamtune::backend::{Tuner, TuningSession};
use streamtune::prelude::*;
use streamtune::workloads::history::HistoryGenerator;
use streamtune::workloads::rates::Engine;

fn main() {
    // 1. A simulated Flink-like cluster: ground-truth processing abilities,
    //    noisy useful-time metrics, stop-and-restart reconfiguration. It is
    //    one implementation of `ExecutionBackend`; the tuner below never
    //    learns which one it is driving.
    let mut cluster = SimCluster::flink_defaults(42);

    // 2. An execution-history corpus: randomized jobs deployed at random
    //    rates and parallelisms, with the engine's observations recorded.
    println!("generating execution histories…");
    let corpus = HistoryGenerator::new(7).with_jobs(40).generate(&cluster);
    println!("  {} runs across {} jobs", corpus.len(), corpus.len() / 2);

    // 3. Offline phase: GED-cluster the DAGs, pre-train one GNN encoder per
    //    cluster on operator-level bottleneck classification.
    println!("pre-training…");
    let pretrained = Pretrainer::new(PretrainConfig::fast()).run(&corpus);
    println!(
        "  {} cluster(s), {} warm-up points",
        pretrained.clusters.len(),
        pretrained.total_warmup_points()
    );

    // 4. Online phase: tune Nexmark Q5 at ten times its base source rate.
    let mut job = nexmark::q5(Engine::Flink);
    job.set_multiplier(10.0);
    let mut session = TuningSession::new(&mut cluster, &job.flow);
    let mut tuner = StreamTune::new(&pretrained, TuneConfig::default());
    let outcome = tuner.tune(&mut session).expect("tuning failed");

    println!("\ntuned {} at 10×Wu:", job.name);
    for (op, degree) in outcome.final_assignment.iter() {
        println!("  {:<16} → parallelism {}", job.flow.op_name(op), degree);
    }
    println!(
        "total parallelism {} in {} reconfiguration(s), {} backpressure event(s)",
        outcome.final_assignment.total(),
        outcome.reconfigurations,
        outcome.backpressure_events
    );

    // 5. Verify the recommendation sustains the sources. Engines only
    //    surface backpressure past a ~10% blocked-time threshold (see
    //    backend::BACKPRESSURE_VISIBILITY), so that is the relevant
    //    acceptance bar — the same one the tuner optimizes against.
    let report = cluster.simulate(&job.flow, &outcome.final_assignment);
    println!(
        "deployment sustains {:.1}% of the offered source rate ({})",
        report.observation.throughput_scale * 100.0,
        if report.observation.job_backpressure {
            "visible backpressure — tuning would continue"
        } else {
            "no visible backpressure"
        }
    );
}
