//! Ingest → replay → detect → recommend, from a checked-in JSONL dump.
//!
//! `examples/data/ingest_demo.jsonl` is a small metrics dump in the shape
//! a Flink metrics scraper writes: one JSON object per line, one line per
//! (operator, sample). Midway through, the recorded source rate shifts to
//! 1.6× — the kind of drift StreamTune exists to absorb. This example:
//!
//! 1. streams the dump into a replayable [`TraceLog`] and a rate schedule
//!    (`streamtune ingest` wraps exactly this call);
//! 2. replays it into the drift monitor, which spots the embedded shift
//!    and estimates the new rate multiplier from the dashboard rates
//!    alone;
//! 3. re-tunes at the estimated multiplier and prints the recommendation
//!    next to what the recorded deployment actually ran.
//!
//! ```sh
//! cargo run --release --example ingest_replay
//! ```
//!
//! Run with `--regenerate` to rewrite the checked-in dump from its
//! generator spec (deterministic, so the file only changes if the spec
//! does).

use streamtune::backend::{ReplayBackend, TuningSession};
use streamtune::connect::{ingest_file, write_dump_file, DumpSpec, IngestConfig};
use streamtune::core::{PretrainConfig, Pretrainer, StreamTune, TuneConfig};
use streamtune::monitor::{DriftEvent, Monitor, MonitorConfig, WatchSpec};
use streamtune::prelude::*;
use streamtune::workloads::history::HistoryGenerator;
use streamtune::workloads::Workload;

const DATA: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/examples/data/ingest_demo.jsonl"
);

/// The spec the checked-in dump was generated from: 24 windows × 4
/// samples × 5 operators, rate drift of 1.6× at window 14.
fn demo_spec() -> DumpSpec {
    DumpSpec::example(24, 4)
}

/// A logical flow matching the dump's pipeline, so the monitor can watch
/// the ingested trace.
fn dump_workload(spec: &DumpSpec) -> Workload {
    let names: Vec<String> = spec.ops.iter().map(|o| o.name.clone()).collect();
    Workload::linear("ingested-dump", &names, spec.base_rate)
}

fn main() {
    let spec = demo_spec();
    if std::env::args().any(|a| a == "--regenerate") {
        let rows = write_dump_file(DATA, &spec).expect("write demo dump");
        println!("regenerated {DATA} ({rows} rows)");
        return;
    }

    // 1. Stream the dump into a trace + schedule.
    let report = ingest_file(DATA, &IngestConfig::default()).expect("ingest demo dump");
    let s = &report.stats;
    println!(
        "ingested {} window(s) from {} row(s) ({} line(s)); operators: {}",
        s.windows,
        s.rows,
        s.lines,
        report.operators.join(", ")
    );
    let recorded = report.log.deploys[0].assignment.clone();
    println!("recorded deployment: {:?}", recorded.as_slice());

    // 2. Replay it into the drift monitor.
    let workload = dump_workload(&spec);
    let mut monitor = Monitor::new(MonitorConfig::default());
    monitor
        .watch(
            WatchSpec {
                name: "demo".to_string(),
                assignment: recorded.clone(),
                workload: workload.clone(),
                multiplier: 1.0,
                schedule: None,
                structure_covered: true,
            },
            Box::new(ReplayBackend::new(report.log)),
        )
        .expect("watch the replayed dump");
    let mut shifted = None;
    for tick in 0..s.windows.saturating_sub(2) {
        for event in monitor.tick() {
            if let DriftEvent::RateDrift {
                from_multiplier,
                to_multiplier,
                ..
            } = event
            {
                println!(
                    "tick {tick}: rate drift {from_multiplier:.2}× → {to_multiplier:.2}× \
                     (embedded: {:.2}× at window {})",
                    spec.drift_factor,
                    spec.drift_at_window.unwrap_or_default()
                );
                shifted = Some(to_multiplier);
            }
        }
        if shifted.is_some() {
            break;
        }
    }
    let shifted = shifted.expect("the embedded drift must be detected");

    // 3. Re-tune at the estimated post-drift rate.
    println!("pre-training (fast)…");
    let mut cluster = SimCluster::flink_defaults(7);
    let corpus = HistoryGenerator::new(7).with_jobs(12).generate(&cluster);
    let pre = Pretrainer::new(PretrainConfig::fast()).run(&corpus);
    let flow = workload.at(shifted);
    let mut tuner = StreamTune::new(&pre, TuneConfig::default());
    let mut session = TuningSession::new(&mut cluster, &flow);
    let outcome = tuner.tune(&mut session).expect("tune at the drifted rate");
    println!("recommendation at {shifted:.2}× the dump's base rate:");
    for ((op, d), was) in outcome.final_assignment.iter().zip(recorded.as_slice()) {
        println!("  {:<8} parallelism {d} (dump ran {was})", flow.op_name(op));
    }
    println!(
        "total {} slot(s), {} reconfiguration(s), converged: {}",
        outcome.final_assignment.total(),
        outcome.reconfigurations,
        outcome.converged
    );
}
