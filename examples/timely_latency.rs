//! Timely Dataflow mode: tune Nexmark Q8 with StreamTune and DS2, then
//! compare per-epoch latency distributions at the recommended parallelisms
//! (the paper's Fig. 8 experiment in miniature).
//!
//! ```sh
//! cargo run --release --example timely_latency
//! ```

use streamtune::backend::{Tuner, TuningSession};
use streamtune::prelude::*;
use streamtune::sim::latency::LatencyModel;
use streamtune::workloads::history::HistoryGenerator;
use streamtune::workloads::rates::Engine;

fn main() {
    let mut cluster = SimCluster::timely_defaults(5);
    println!("pre-training on Timely-mode histories…");
    let mut gen = HistoryGenerator::new(5).with_jobs(40);
    gen.engine = Engine::Timely;
    let corpus = gen.generate(&cluster);
    let pretrained = Pretrainer::new(PretrainConfig::fast()).run(&corpus);

    let mut job = nexmark::q8(Engine::Timely);
    job.set_multiplier(10.0);

    let mut streamtune = StreamTune::new(&pretrained, TuneConfig::default());
    let mut ds2 = streamtune::baselines::Ds2::default();
    let tuners: [(&str, &mut dyn Tuner); 2] = [("StreamTune", &mut streamtune), ("DS2", &mut ds2)];

    println!(
        "\n{:<12} {:>10} {:>9} {:>9} {:>9}",
        "method", "total-par", "p50 (s)", "p95 (s)", "p99 (s)"
    );
    for (name, tuner) in tuners {
        let mut session = TuningSession::new(&mut cluster, &job.flow);
        let outcome = tuner.tune(&mut session).expect("tuning failed");
        let latencies = cluster.epoch_latencies(&job.flow, &outcome.final_assignment, 400);
        println!(
            "{:<12} {:>10} {:>9.3} {:>9.3} {:>9.3}",
            name,
            outcome.final_assignment.total(),
            LatencyModel::percentile(&latencies, 50.0),
            LatencyModel::percentile(&latencies, 95.0),
            LatencyModel::percentile(&latencies, 99.0),
        );
    }
    println!("\nExpected shape (paper Fig. 8): StreamTune needs materially less");
    println!("parallelism while the latency percentiles stay comparable.");
}
