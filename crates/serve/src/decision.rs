//! The decision audit trail: one [`DecisionRecord`] per recommendation.
//!
//! Every time the daemon turns a job into a parallelism recommendation —
//! at first admission, on a monitor-driven re-tune, or when resuming a
//! journaled run after a crash — it records *why*: the input DAG's shape
//! and signature hash, which cluster the model assigned it to and how far
//! every center was, which model generation served it, the GED cache's
//! provenance counters at decision time, the chosen per-operator degrees
//! and every rejected candidate total the tuning loop walked through.
//!
//! The trail is **functional, not telemetry**: capture is always on and
//! built exclusively from deterministic inputs (per-instance
//! [`GedCacheStats`](streamtune_ged::GedCacheStats), pure
//! [`center_distances`](streamtune_core::Pretrained::center_distances)
//! A\* runs that never touch cache memoization), so recording a decision
//! can never perturb the decision itself — tuning outcomes with auditing
//! compiled in are bit-identical to the pre-audit daemon. The only
//! wall-clock field, `ts_millis`, is observational and never compared.
//!
//! Records persist in the model store as `decisions.json` (same
//! checksummed envelope as the jobs ledger) and are served by the
//! `explain <job>` protocol verb across daemon restarts.

use serde::{Deserialize, Serialize, Value};

/// Why a job's decision audit ran.
pub mod trigger {
    /// First admission via the `submit` verb.
    pub const SUBMIT: &str = "submit";
    /// Monitor- or operator-driven re-tune at a shifted rate.
    pub const RETUNE: &str = "retune";
    /// Journal recovery re-admitted the job after a crash.
    pub const RESUME: &str = "resume";
}

/// The full audit record behind one recommendation.
///
/// Serialized with derived serde (field names are the wire schema of the
/// `explained` response payload); readers should tolerate new fields —
/// the record grows release to release.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// Job name the decision belongs to.
    pub job: String,
    /// What started the run: `"submit"`, `"retune"` or `"resume"`.
    pub trigger: String,
    /// Workload the job tunes.
    pub query: String,
    /// Source-rate multiplier the run used.
    pub multiplier: f64,
    /// Backend seed the run used.
    pub seed: u64,
    /// Backend family (`"sim"`, `"chaos"`, `"replay"`, `"flink"`,
    /// `"ingest"`).
    pub backend: String,
    /// Operators in the input DAG.
    pub dag_ops: u64,
    /// Edges in the input DAG.
    pub dag_edges: u64,
    /// FNV-1a 64 of the DAG's serialized [`GraphSignature`]
    /// (structurally identical DAGs hash identically).
    ///
    /// [`GraphSignature`]: streamtune_dataflow::GraphSignature
    pub dag_signature: u64,
    /// Cluster index the model assigned the DAG to.
    pub cluster: u64,
    /// Clusters in the serving model.
    pub clusters: u64,
    /// Whether the model is the §VII single-cluster global fallback.
    pub global_fallback: bool,
    /// Capped GED from the DAG to every cluster center, in cluster order
    /// (the assignment is the argmin; ties break to the lower index).
    pub center_distances: Vec<u64>,
    /// Model-store generation that served the decision: 0 for the
    /// bootstrap model, bumped on every model swap (corpus growth,
    /// re-pretrain).
    pub model_generation: u64,
    /// GED cache distance queries answered at decision time (cumulative,
    /// per daemon cache instance).
    pub cache_lookups: u64,
    /// A\* searches the cache actually ran (misses).
    pub cache_searches: u64,
    /// Queries the signature lower bound rejected without a search.
    pub cache_filtered: u64,
    /// Distinct DAG structures interned in the cache.
    pub cache_structures: u64,
    /// Operator names, in [`degrees`](Self::degrees) order.
    pub op_names: Vec<String>,
    /// Chosen per-operator parallelism.
    pub degrees: Vec<u32>,
    /// Chosen total parallelism.
    pub total: u64,
    /// Rejected candidate totals, in deployment order: every total the
    /// tuning loop deployed and moved past before settling on
    /// [`total`](Self::total).
    pub rejected: Vec<u64>,
    /// Tuning iterations executed.
    pub iterations: u32,
    /// Whether the tuner reached its own convergence criterion.
    pub converged: bool,
    /// Transient-fault retries absorbed during the run.
    pub retries: u64,
    /// Unix milliseconds at capture. Observational only — never part of
    /// any bit-identity comparison.
    pub ts_millis: u64,
}

impl DecisionRecord {
    /// Render the record as a protocol [`Value`] (the `explained`
    /// payload).
    pub fn to_value(&self) -> Value {
        self.serialize()
    }
}

/// FNV-1a 64 of a serialized graph signature: the stable structural hash
/// stored in [`DecisionRecord::dag_signature`].
pub fn signature_hash(sig: &streamtune_dataflow::GraphSignature) -> u64 {
    crate::store::fnv1a64(serde_json::to_string(sig).unwrap_or_default().as_bytes())
}

/// Unix milliseconds now (0 if the clock is before the epoch).
pub fn unix_millis() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> DecisionRecord {
        DecisionRecord {
            job: "a".to_string(),
            trigger: trigger::SUBMIT.to_string(),
            query: "nexmark-q1".to_string(),
            multiplier: 6.0,
            seed: 1,
            backend: "chaos".to_string(),
            dag_ops: 4,
            dag_edges: 3,
            dag_signature: 0xdead_beef,
            cluster: 1,
            clusters: 3,
            global_fallback: false,
            center_distances: vec![4, 0, 9],
            model_generation: 2,
            cache_lookups: 120,
            cache_searches: 14,
            cache_filtered: 30,
            cache_structures: 11,
            op_names: vec!["source".to_string(), "sink".to_string()],
            degrees: vec![2, 1],
            total: 3,
            rejected: vec![2, 6],
            iterations: 3,
            converged: true,
            retries: 1,
            ts_millis: 1_700_000_000_000,
        }
    }

    #[test]
    fn records_roundtrip_through_serde() {
        let r = record();
        let line = serde_json::to_string(&r).unwrap();
        let back: DecisionRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back, r, "{line}");
    }

    #[test]
    fn signature_hash_is_structural() {
        use streamtune_workloads::{nexmark, rates::Engine};
        let a = nexmark::q1(Engine::Flink);
        let b = nexmark::q1(Engine::Flink);
        let c = nexmark::q5(Engine::Flink);
        let sig = |w: &streamtune_workloads::Workload| {
            signature_hash(&streamtune_dataflow::GraphSignature::of(&w.flow))
        };
        assert_eq!(sig(&a), sig(&b), "identical structures hash identically");
        assert_ne!(sig(&a), sig(&c), "different structures hash apart");
    }
}
