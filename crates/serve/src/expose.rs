//! Telemetry exposition for the daemon: the per-verb request metrics,
//! the `metrics` verb's JSON payload, and the optional Prometheus text
//! scrape endpoint (`--metrics-listen`).
//!
//! Everything here is strictly observational. The handles record into
//! the global [`streamtune_telemetry`] registry; reading them (over the
//! protocol or over HTTP) snapshots atomics and renders text — no server
//! lock, no tuning state, no way to perturb outcomes.

use serde::Value;
use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::{Duration, Instant};
use streamtune_connect::{HttpReply, MiniHttpServer};
use streamtune_ged::Parallelism;
use streamtune_telemetry::trace::SpanRecord;
use streamtune_telemetry::{
    bucket_upper_bound, chrome_trace, render_prometheus, Counter, DeltaValue, Gauge, Histogram,
    MetricValue,
};

/// Every wire verb, in protocol-table order — the label set of
/// `streamtune_requests_total` and `streamtune_request_duration_nanoseconds`.
pub const VERBS: [&str; 16] = [
    "submit",
    "status",
    "recommend",
    "cancel",
    "watch",
    "unwatch",
    "drift_status",
    "health",
    "metrics",
    "tick",
    "snapshot",
    "drain",
    "trace",
    "explain",
    "metrics_history",
    "shutdown",
];

/// Pre-registered per-verb request handles plus the lock-wait histogram:
/// one registry lookup at first use, relaxed atomics forever after.
pub struct ServeMetrics {
    requests: HashMap<&'static str, (Counter, Histogram)>,
    lock_wait: Histogram,
}

impl ServeMetrics {
    /// The process-wide handle set.
    pub fn get() -> &'static ServeMetrics {
        static CELL: OnceLock<ServeMetrics> = OnceLock::new();
        CELL.get_or_init(|| {
            let registry = streamtune_telemetry::global();
            let requests = VERBS
                .iter()
                .map(|&verb| {
                    let labels = [("verb", verb)];
                    (
                        verb,
                        (
                            registry.counter_with(
                                "streamtune_requests_total",
                                "Protocol requests served, by verb.",
                                &labels,
                            ),
                            registry.histogram_with(
                                "streamtune_request_duration_nanoseconds",
                                "Request handling latency under the server lock, by verb.",
                                &labels,
                            ),
                        ),
                    )
                })
                .collect();
            ServeMetrics {
                requests,
                lock_wait: registry.histogram(
                    "streamtune_lock_wait_nanoseconds",
                    "Time spent waiting for the shared server lock before dispatch.",
                ),
            }
        })
    }

    /// Record one handled request.
    pub fn record_request(&self, verb: &str, elapsed: Duration) {
        if let Some((count, latency)) = self.requests.get(verb) {
            count.inc();
            latency.record_duration(elapsed);
        }
    }

    /// Record one wait for the shared server lock.
    pub fn record_lock_wait(&self, waited: Duration) {
        self.lock_wait.record_duration(waited);
    }
}

/// The daemon's telemetry clock: first call pins the epoch, later calls
/// measure against it.
fn start_instant() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Whole seconds since the telemetry clock started.
pub fn uptime_seconds() -> u64 {
    start_instant().elapsed().as_secs()
}

/// Stable label text for a parallelism setting.
pub fn parallelism_label(p: Parallelism) -> String {
    match p {
        Parallelism::Auto => "auto".to_string(),
        Parallelism::Serial => "serial".to_string(),
        Parallelism::Fixed(n) => format!("fixed({n})"),
    }
}

/// Register the constant-1 `streamtune_build_info` gauge (version and
/// parallelism ride as labels) and start the uptime clock. Idempotent;
/// called from [`crate::Server::new`].
pub fn register_build_info(parallelism: Parallelism) -> Gauge {
    let registry = streamtune_telemetry::global();
    let label = parallelism_label(parallelism);
    let info = registry.gauge_with(
        "streamtune_build_info",
        "Constant 1; build and runtime info ride as labels.",
        &[
            ("version", env!("CARGO_PKG_VERSION")),
            ("parallelism", &label),
        ],
    );
    info.set(1.0);
    start_instant();
    uptime_gauge();
    info
}

fn uptime_gauge() -> &'static Gauge {
    static CELL: OnceLock<Gauge> = OnceLock::new();
    CELL.get_or_init(|| {
        streamtune_telemetry::global().gauge(
            "streamtune_uptime_seconds",
            "Whole seconds since the daemon's telemetry clock started.",
        )
    })
}

/// Mirror the in-memory [`EventLog`](streamtune_telemetry::EventLog)'s
/// own health — ring occupancy, evicted events, trace-log write failures
/// — into registry gauges, so the log that watches everything else is
/// itself watched. Called on every metrics read; gauge registration is
/// idempotent.
fn refresh_event_log_health() {
    static CELL: OnceLock<(Gauge, Gauge, Gauge)> = OnceLock::new();
    let (held, dropped, write_errors) = CELL.get_or_init(|| {
        let registry = streamtune_telemetry::global();
        (
            registry.gauge(
                "streamtune_event_log_events",
                "Events currently held in the bounded in-memory event ring.",
            ),
            registry.gauge(
                "streamtune_event_log_dropped",
                "Events evicted from the bounded ring since process start.",
            ),
            registry.gauge(
                "streamtune_event_log_write_errors",
                "Failed writes to the --trace-log JSONL sink since process start.",
            ),
        )
    });
    let log = streamtune_telemetry::events();
    held.set(log.len() as f64);
    dropped.set(log.dropped() as f64);
    write_errors.set(log.write_errors() as f64);
}

/// The telemetry registry as a JSON value — the `metrics` verb payload.
///
/// Shape: `{"metrics": [{"name", "kind", "labels", ...value}]}`, where a
/// counter carries `"value": <u64>`, a gauge `"value": <f64>`, and a
/// histogram `"count"`, `"sum"`, `"p50"`, `"p99"` plus the non-empty
/// `"buckets"` as `[upper_bound|null, count]` pairs (null = +Inf).
pub fn metrics_value() -> Value {
    uptime_gauge().set(uptime_seconds() as f64);
    refresh_event_log_health();
    let snapshot = streamtune_telemetry::global().snapshot();
    let series: Vec<Value> = snapshot
        .metrics
        .iter()
        .map(|m| {
            let mut fields = vec![
                ("name".to_string(), Value::String(m.name.clone())),
                (
                    "kind".to_string(),
                    Value::String(m.value.kind().as_str().to_string()),
                ),
                (
                    "labels".to_string(),
                    Value::Object(
                        m.labels
                            .iter()
                            .map(|(k, v)| (k.clone(), Value::String(v.clone())))
                            .collect(),
                    ),
                ),
            ];
            match &m.value {
                MetricValue::Counter(v) => fields.push(("value".to_string(), Value::U64(*v))),
                MetricValue::Gauge(v) => fields.push(("value".to_string(), Value::F64(*v))),
                MetricValue::Histogram(h) => {
                    fields.push(("count".to_string(), Value::U64(h.count)));
                    fields.push(("sum".to_string(), Value::U64(h.sum)));
                    fields.push(("p50".to_string(), Value::F64(h.quantile(0.5))));
                    fields.push(("p99".to_string(), Value::F64(h.quantile(0.99))));
                    let buckets: Vec<Value> = h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &n)| n > 0)
                        .map(|(i, &n)| {
                            Value::Array(vec![
                                match bucket_upper_bound(i) {
                                    Some(le) => Value::U64(le),
                                    None => Value::Null,
                                },
                                Value::U64(n),
                            ])
                        })
                        .collect();
                    fields.push(("buckets".to_string(), Value::Array(buckets)));
                }
            }
            Value::Object(fields)
        })
        .collect();
    Value::Object(vec![("metrics".to_string(), Value::Array(series))])
}

/// The registry rendered as Prometheus text exposition format 0.0.4.
pub fn prometheus_text() -> String {
    uptime_gauge().set(uptime_seconds() as f64);
    refresh_event_log_health();
    render_prometheus(&streamtune_telemetry::global().snapshot())
}

/// One finished span as a JSON object (the `trace` verb's span shape).
fn span_record_value(span: &SpanRecord) -> Value {
    Value::Object(vec![
        ("span".to_string(), Value::U64(span.span)),
        (
            "parent".to_string(),
            match span.parent {
                Some(parent) => Value::U64(parent),
                None => Value::Null,
            },
        ),
        ("target".to_string(), Value::String(span.target.to_string())),
        ("name".to_string(), Value::String(span.name.clone())),
        ("start_nanos".to_string(), Value::U64(span.start_nanos)),
        (
            "duration_nanos".to_string(),
            Value::U64(span.duration_nanos),
        ),
        ("thread".to_string(), Value::U64(span.thread)),
        (
            "fields".to_string(),
            Value::Object(
                span.fields
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::String(v.clone())))
                    .collect(),
            ),
        ),
    ])
}

/// The trace store as the `trace` verb payload.
///
/// Shape: `{"enabled": bool, "traces": [summaries, newest first]}`, plus —
/// when a complete trace matches `label` (or any complete trace exists
/// when `label` is `None`) — `"trace"`, the newest such span tree
/// (`{"id", "label", "dropped", "spans": [...]}`, spans sorted by start
/// offset, parent ids linking the tree), and `"chrome"`, the same trace
/// pre-rendered as a Chrome trace-event JSON document (a string; save it
/// verbatim and load it in `chrome://tracing` or Perfetto).
pub fn trace_value(label: Option<&str>) -> Value {
    let store = streamtune_telemetry::trace::store();
    let summaries: Vec<Value> = store
        .summaries(64)
        .iter()
        .map(|t| {
            Value::Object(vec![
                ("id".to_string(), Value::U64(t.id)),
                ("label".to_string(), Value::String(t.label.clone())),
                ("spans".to_string(), Value::U64(t.spans as u64)),
                ("dropped".to_string(), Value::U64(t.dropped)),
                ("complete".to_string(), Value::Bool(t.complete)),
                ("duration_nanos".to_string(), Value::U64(t.duration_nanos)),
            ])
        })
        .collect();
    let mut fields = vec![
        (
            "enabled".to_string(),
            Value::Bool(streamtune_telemetry::enabled()),
        ),
        ("traces".to_string(), Value::Array(summaries)),
    ];
    if let Some((id, (trace_label, spans))) = store
        .latest(label)
        .and_then(|id| store.spans(id).map(|t| (id, t)))
    {
        let dropped = store
            .summaries(usize::MAX)
            .iter()
            .find(|t| t.id == id)
            .map(|t| t.dropped)
            .unwrap_or(0);
        fields.push((
            "trace".to_string(),
            Value::Object(vec![
                ("id".to_string(), Value::U64(id)),
                ("label".to_string(), Value::String(trace_label.clone())),
                ("dropped".to_string(), Value::U64(dropped)),
                (
                    "spans".to_string(),
                    Value::Array(spans.iter().map(span_record_value).collect()),
                ),
            ]),
        ));
        fields.push((
            "chrome".to_string(),
            Value::String(chrome_trace(&trace_label, &spans)),
        ));
    }
    Value::Object(fields)
}

/// Snapshot the registry and append one frame to the metrics-history
/// ring. Returns the frame's sequence number (`None` with telemetry
/// disabled). Called on monitor ticks, on the `metrics_history` verb and
/// on each `/metrics/history.json` scrape, so every reader sees at least
/// its own frame.
pub fn record_history_frame() -> Option<u64> {
    uptime_gauge().set(uptime_seconds() as f64);
    refresh_event_log_health();
    streamtune_telemetry::history().record(&streamtune_telemetry::global().snapshot())
}

/// The metrics-history ring as the `metrics_history` verb (and
/// `/metrics/history.json`) payload.
///
/// Shape: `{"enabled": bool, "frames": [oldest first]}`; each frame is
/// `{"seq", "ts_millis", "interval_nanos", "series": [...]}` where a
/// series carries `"name"`, `"labels"` and a `"kind"`-tagged delta —
/// counters `{"delta", "total"}`, gauges `{"value"}`, histograms the
/// interval's `{"count", "sum", "p50", "p99"}` plus the cumulative
/// `"total_count"`.
pub fn history_value() -> Value {
    let frames: Vec<Value> = streamtune_telemetry::history()
        .frames(streamtune_telemetry::DEFAULT_HISTORY_CAPACITY)
        .iter()
        .map(|frame| {
            let series: Vec<Value> = frame
                .series
                .iter()
                .map(|s| {
                    let mut fields = vec![
                        ("name".to_string(), Value::String(s.name.clone())),
                        (
                            "labels".to_string(),
                            Value::Object(
                                s.labels
                                    .iter()
                                    .map(|(k, v)| (k.clone(), Value::String(v.clone())))
                                    .collect(),
                            ),
                        ),
                    ];
                    match &s.value {
                        DeltaValue::Counter { delta, total } => {
                            fields.push(("kind".to_string(), Value::String("counter".to_string())));
                            fields.push(("delta".to_string(), Value::U64(*delta)));
                            fields.push(("total".to_string(), Value::U64(*total)));
                        }
                        DeltaValue::Gauge { value } => {
                            fields.push(("kind".to_string(), Value::String("gauge".to_string())));
                            fields.push(("value".to_string(), Value::F64(*value)));
                        }
                        DeltaValue::Histogram {
                            delta,
                            total_count,
                            p50,
                            p99,
                        } => {
                            fields
                                .push(("kind".to_string(), Value::String("histogram".to_string())));
                            fields.push(("count".to_string(), Value::U64(delta.count)));
                            fields.push(("sum".to_string(), Value::U64(delta.sum)));
                            fields.push(("p50".to_string(), Value::F64(*p50)));
                            fields.push(("p99".to_string(), Value::F64(*p99)));
                            fields.push(("total_count".to_string(), Value::U64(*total_count)));
                        }
                    }
                    Value::Object(fields)
                })
                .collect();
            Value::Object(vec![
                ("seq".to_string(), Value::U64(frame.seq)),
                ("ts_millis".to_string(), Value::U64(frame.ts_millis)),
                (
                    "interval_nanos".to_string(),
                    Value::U64(frame.interval_nanos),
                ),
                ("series".to_string(), Value::Array(series)),
            ])
        })
        .collect();
    Value::Object(vec![
        (
            "enabled".to_string(),
            Value::Bool(streamtune_telemetry::enabled()),
        ),
        ("frames".to_string(), Value::Array(frames)),
    ])
}

/// Serve `GET /metrics` (Prometheus text), `GET /metrics.json` (the
/// `metrics` verb payload) and `GET /metrics/history.json` (the
/// `metrics_history` payload; each scrape appends a fresh frame first,
/// which is what `streamtune top` polls) on `addr` from a background
/// thread. The endpoint shares nothing with the protocol path but the
/// atomics it snapshots; a slow or hostile scraper cannot touch the
/// server lock.
pub fn spawn_metrics_endpoint(addr: &str) -> std::io::Result<MiniHttpServer> {
    MiniHttpServer::bind(addr, |_method, path| match path {
        "/metrics" => HttpReply::text(prometheus_text()),
        "/metrics.json" => HttpReply::json(
            serde_json::to_string(&metrics_value()).expect("metrics values always serialize"),
        ),
        "/metrics/history.json" => {
            record_history_frame();
            HttpReply::json(
                serde_json::to_string(&history_value()).expect("history values always serialize"),
            )
        }
        _ => HttpReply::not_found(),
    })
}
