//! Telemetry exposition for the daemon: the per-verb request metrics,
//! the `metrics` verb's JSON payload, and the optional Prometheus text
//! scrape endpoint (`--metrics-listen`).
//!
//! Everything here is strictly observational. The handles record into
//! the global [`streamtune_telemetry`] registry; reading them (over the
//! protocol or over HTTP) snapshots atomics and renders text — no server
//! lock, no tuning state, no way to perturb outcomes.

use serde::Value;
use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::{Duration, Instant};
use streamtune_connect::{HttpReply, MiniHttpServer};
use streamtune_ged::Parallelism;
use streamtune_telemetry::{
    bucket_upper_bound, render_prometheus, Counter, Gauge, Histogram, MetricValue,
};

/// Every wire verb, in protocol-table order — the label set of
/// `streamtune_requests_total` and `streamtune_request_duration_nanoseconds`.
pub const VERBS: [&str; 13] = [
    "submit",
    "status",
    "recommend",
    "cancel",
    "watch",
    "unwatch",
    "drift_status",
    "health",
    "metrics",
    "tick",
    "snapshot",
    "drain",
    "shutdown",
];

/// Pre-registered per-verb request handles plus the lock-wait histogram:
/// one registry lookup at first use, relaxed atomics forever after.
pub struct ServeMetrics {
    requests: HashMap<&'static str, (Counter, Histogram)>,
    lock_wait: Histogram,
}

impl ServeMetrics {
    /// The process-wide handle set.
    pub fn get() -> &'static ServeMetrics {
        static CELL: OnceLock<ServeMetrics> = OnceLock::new();
        CELL.get_or_init(|| {
            let registry = streamtune_telemetry::global();
            let requests = VERBS
                .iter()
                .map(|&verb| {
                    let labels = [("verb", verb)];
                    (
                        verb,
                        (
                            registry.counter_with(
                                "streamtune_requests_total",
                                "Protocol requests served, by verb.",
                                &labels,
                            ),
                            registry.histogram_with(
                                "streamtune_request_duration_nanoseconds",
                                "Request handling latency under the server lock, by verb.",
                                &labels,
                            ),
                        ),
                    )
                })
                .collect();
            ServeMetrics {
                requests,
                lock_wait: registry.histogram(
                    "streamtune_lock_wait_nanoseconds",
                    "Time spent waiting for the shared server lock before dispatch.",
                ),
            }
        })
    }

    /// Record one handled request.
    pub fn record_request(&self, verb: &str, elapsed: Duration) {
        if let Some((count, latency)) = self.requests.get(verb) {
            count.inc();
            latency.record_duration(elapsed);
        }
    }

    /// Record one wait for the shared server lock.
    pub fn record_lock_wait(&self, waited: Duration) {
        self.lock_wait.record_duration(waited);
    }
}

/// The daemon's telemetry clock: first call pins the epoch, later calls
/// measure against it.
fn start_instant() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Whole seconds since the telemetry clock started.
pub fn uptime_seconds() -> u64 {
    start_instant().elapsed().as_secs()
}

/// Stable label text for a parallelism setting.
pub fn parallelism_label(p: Parallelism) -> String {
    match p {
        Parallelism::Auto => "auto".to_string(),
        Parallelism::Serial => "serial".to_string(),
        Parallelism::Fixed(n) => format!("fixed({n})"),
    }
}

/// Register the constant-1 `streamtune_build_info` gauge (version and
/// parallelism ride as labels) and start the uptime clock. Idempotent;
/// called from [`crate::Server::new`].
pub fn register_build_info(parallelism: Parallelism) -> Gauge {
    let registry = streamtune_telemetry::global();
    let label = parallelism_label(parallelism);
    let info = registry.gauge_with(
        "streamtune_build_info",
        "Constant 1; build and runtime info ride as labels.",
        &[
            ("version", env!("CARGO_PKG_VERSION")),
            ("parallelism", &label),
        ],
    );
    info.set(1.0);
    start_instant();
    uptime_gauge();
    info
}

fn uptime_gauge() -> &'static Gauge {
    static CELL: OnceLock<Gauge> = OnceLock::new();
    CELL.get_or_init(|| {
        streamtune_telemetry::global().gauge(
            "streamtune_uptime_seconds",
            "Whole seconds since the daemon's telemetry clock started.",
        )
    })
}

/// The telemetry registry as a JSON value — the `metrics` verb payload.
///
/// Shape: `{"metrics": [{"name", "kind", "labels", ...value}]}`, where a
/// counter carries `"value": <u64>`, a gauge `"value": <f64>`, and a
/// histogram `"count"`, `"sum"`, `"p50"`, `"p99"` plus the non-empty
/// `"buckets"` as `[upper_bound|null, count]` pairs (null = +Inf).
pub fn metrics_value() -> Value {
    uptime_gauge().set(uptime_seconds() as f64);
    let snapshot = streamtune_telemetry::global().snapshot();
    let series: Vec<Value> = snapshot
        .metrics
        .iter()
        .map(|m| {
            let mut fields = vec![
                ("name".to_string(), Value::String(m.name.clone())),
                (
                    "kind".to_string(),
                    Value::String(m.value.kind().as_str().to_string()),
                ),
                (
                    "labels".to_string(),
                    Value::Object(
                        m.labels
                            .iter()
                            .map(|(k, v)| (k.clone(), Value::String(v.clone())))
                            .collect(),
                    ),
                ),
            ];
            match &m.value {
                MetricValue::Counter(v) => fields.push(("value".to_string(), Value::U64(*v))),
                MetricValue::Gauge(v) => fields.push(("value".to_string(), Value::F64(*v))),
                MetricValue::Histogram(h) => {
                    fields.push(("count".to_string(), Value::U64(h.count)));
                    fields.push(("sum".to_string(), Value::U64(h.sum)));
                    fields.push(("p50".to_string(), Value::F64(h.quantile(0.5))));
                    fields.push(("p99".to_string(), Value::F64(h.quantile(0.99))));
                    let buckets: Vec<Value> = h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &n)| n > 0)
                        .map(|(i, &n)| {
                            Value::Array(vec![
                                match bucket_upper_bound(i) {
                                    Some(le) => Value::U64(le),
                                    None => Value::Null,
                                },
                                Value::U64(n),
                            ])
                        })
                        .collect();
                    fields.push(("buckets".to_string(), Value::Array(buckets)));
                }
            }
            Value::Object(fields)
        })
        .collect();
    Value::Object(vec![("metrics".to_string(), Value::Array(series))])
}

/// The registry rendered as Prometheus text exposition format 0.0.4.
pub fn prometheus_text() -> String {
    uptime_gauge().set(uptime_seconds() as f64);
    render_prometheus(&streamtune_telemetry::global().snapshot())
}

/// Serve `GET /metrics` (Prometheus text) and `GET /metrics.json` (the
/// `metrics` verb payload) on `addr` from a background thread. The
/// endpoint shares nothing with the protocol path but the atomics it
/// snapshots; a slow or hostile scraper cannot touch the server lock.
pub fn spawn_metrics_endpoint(addr: &str) -> std::io::Result<MiniHttpServer> {
    MiniHttpServer::bind(addr, |_method, path| match path {
        "/metrics" => HttpReply::text(prometheus_text()),
        "/metrics.json" => HttpReply::json(
            serde_json::to_string(&metrics_value()).expect("metrics values always serialize"),
        ),
        _ => HttpReply::not_found(),
    })
}
