//! `streamtune-serve` — the long-running tuning service.
//!
//! The paper's end state is an *online* tuner: one pre-trained model
//! corpus serving recommendation requests for many concurrently running
//! stream jobs. This crate turns the workspace's library pieces into that
//! system:
//!
//! * [`store`] — the **persistent model store**: the serialized
//!   [`Pretrained`](streamtune_core::Pretrained) bundle, a warm-start
//!   [`GedCacheSnapshot`](streamtune_ged::GedCacheSnapshot) and the
//!   completed-job ledger, each wrapped in a versioned, FNV-checksummed
//!   envelope (unknown future fields tolerated; corruption is an explicit
//!   error, never a panic);
//! * [`job`] — the **job manager**: admits named jobs, assigns each to
//!   its cluster at admission, and drains queued jobs in deterministic
//!   [`Parallelism`](streamtune_ged::Parallelism) batches — every job
//!   owns its backend and fine-tuning state, so any thread count and any
//!   submission interleaving produce bit-identical per-job outcomes;
//! * [`protocol`] — the **line-delimited JSON control protocol**
//!   (`submit` / `status` / `recommend` / `cancel` / `snapshot` /
//!   `shutdown`), identical over stdio, in-process buffers and TCP;
//! * [`server`] — the daemon: [`Server::bootstrap`] loads the store (no
//!   retraining) or pre-trains (warm-started from any persisted GED
//!   cache) and persists, then serves the protocol.
//!
//! The CLI front ends are `streamtune serve` and `streamtune client`;
//! `examples/serve_quickstart.rs` drives an in-process server.

pub mod error;
pub mod job;
pub mod protocol;
pub mod server;
pub mod store;

pub use error::ServeError;
pub use job::{Job, JobManager, JobResult, JobState, PersistedJob};
pub use protocol::{
    parse_request, render_response, BackendSpec, JobSpec, JobStatusLine, Recommendation, Request,
    Response,
};
pub use server::{BootstrapReport, Server};
pub use store::{fnv1a64, read_envelope, write_envelope, ModelStore, StoreError};
