//! `streamtune-serve` — the long-running tuning service.
//!
//! The paper's end state is an *online* tuner: one pre-trained model
//! corpus serving recommendation requests for many concurrently running
//! stream jobs, re-tuning them as their workloads drift. This crate turns
//! the workspace's library pieces into that system:
//!
//! * [`store`] — the **persistent model store**: the serialized
//!   [`Pretrained`](streamtune_core::Pretrained) bundle (superseded models
//!   rotate to `model.json.bak`), a warm-start
//!   [`GedCacheSnapshot`](streamtune_ged::GedCacheSnapshot), the training
//!   corpus (so the model can grow) and the rotated completed-job ledger,
//!   each wrapped in a versioned, FNV-checksummed envelope (unknown future
//!   fields tolerated; corruption is an explicit error, never a panic);
//! * [`job`] — the **job manager**: admits named jobs, assigns each to
//!   its cluster at admission, and drains queued jobs in deterministic
//!   [`Parallelism`](streamtune_ged::Parallelism) batches — every job
//!   owns its backend and fine-tuning state, so any thread count and any
//!   submission interleaving produce bit-identical per-job outcomes.
//!   Monitor-triggered re-tunes go through [`JobManager::resubmit`] and
//!   are bit-identical to manual re-submits at the shifted rate; model
//!   swaps go through [`JobManager::swap_pretrained`];
//! * [`protocol`] — the **line-delimited JSON control protocol**
//!   (`submit` / `status` / `recommend` / `cancel` / `watch` / `unwatch` /
//!   `drift_status` / `tick` / `health` / `metrics` / `snapshot` /
//!   `drain` / `trace` / `explain` / `metrics_history` / `shutdown`),
//!   identical over stdio, in-process buffers and TCP;
//! * [`decision`] — the **decision audit trail**: every recommendation
//!   captures a [`DecisionRecord`] (DAG signature, cluster assignment and
//!   center distances, model generation, GED-cache provenance, chosen
//!   degrees and rejected candidates), persisted in the store and served
//!   by the `explain` verb across restarts;
//! * [`expose`] — **telemetry exposition**: per-verb request counters and
//!   latency histograms, lock-wait timings, the `metrics` verb's JSON
//!   payload, the `trace` verb's span trees ([`expose::trace_value`],
//!   with a pre-rendered Chrome trace-event export), the
//!   `metrics_history` frames ([`expose::history_value`]) and a
//!   Prometheus text scrape endpoint
//!   ([`expose::spawn_metrics_endpoint`], the CLI's `--metrics-listen`,
//!   which also serves `/metrics/history.json`) served off-thread so
//!   scrapers never touch the server lock;
//! * [`journal`] — the **epoch-granular job journal**: every tuning
//!   deployment is appended (sealed, `fsync`ed) to a per-job append-only
//!   file as it happens, so a process killed mid-tune resumes from the
//!   last journaled epoch on restart;
//! * [`server`] — the daemon: [`Server::bootstrap`] loads the store (no
//!   retraining) or pre-trains (warm-started from any persisted GED
//!   cache) and persists; [`Server::serve_tcp`] serves **one session per
//!   client** over the shared state and doubles as the background monitor
//!   loop; [`Server::tick_monitor`] runs the observe→detect→adapt cycle —
//!   rate drifts re-tune through the job manager, structure drifts grow
//!   the corpus and warm re-pretrain (see `streamtune-monitor`).
//!
//! # Fault tolerance
//!
//! The daemon is built to keep serving through backend faults, handler
//! panics and torn writes — deterministically, so failure scenarios are
//! reproducible test cases:
//!
//! * **Deterministic fault injection** — a job may run on
//!   [`BackendSpec::Chaos`], wrapping the simulator in a
//!   [`ChaosBackend`](streamtune_backend::ChaosBackend) driven by a
//!   seeded [`FaultPlan`](streamtune_backend::FaultPlan): transient I/O
//!   errors, failed deploys, NaN observations, stale epochs and
//!   crash-at-epoch, all pure functions of the plan seed.
//! * **Retry, then degrade** — transient backend faults are retried at
//!   the *same* epoch under a bounded
//!   [`RetryPolicy`](streamtune_backend::RetryPolicy) with virtual
//!   (never slept) backoff, so a run with absorbed transient faults
//!   yields a **bit-identical** [`JobResult`] to a fault-free run. A
//!   backend that stays sick past the retry budget leaves the job
//!   [`JobState::Degraded`] — distinct from [`JobState::Failed`] — and a
//!   watched stream that cannot be polled flips its drift status line to
//!   `degraded` until the backend answers again. Injected crashes are
//!   contained per job (`catch_unwind` inside the drain worker) and per
//!   request (handler panics become `error` responses); poisoned server
//!   locks are cleared and counted, never fatal.
//! * **Crash-safe store** — every artifact write is
//!   write-temp → `fsync` → atomic rename (plus a parent-directory
//!   `fsync`), so a crash at any byte leaves either the old or the new
//!   artifact, never garbage. On boot, [`Server::bootstrap`] routes
//!   through [`ModelStore::recover_model`]: a corrupt `model.json` is
//!   quarantined to `model.json.corrupt` and the `.bak` rotation is
//!   promoted in its place; corrupt warm-start artifacts are quarantined
//!   and rebuilt.
//! * **Epoch-journaled resumption** — while a journalable job tunes,
//!   every deployed epoch's `(assignment, report)` is appended to its
//!   [`journal`] file (seal → append → `sync_data`), and
//!   [`Server::bootstrap`] replays surviving journals: an interrupted
//!   job is re-admitted and its tune *resumes* after the journaled
//!   prefix via a replay-then-live [`JournaledBackend`], producing a
//!   `TuneOutcome` **bit-identical** to an uninterrupted run. Torn or
//!   tampered journal tails are dropped at the last sealed line, so a
//!   SIGKILL at any byte resumes-or-restarts, never serves garbage
//!   (`tests/serve_store.rs` truncation sweep,
//!   `crates/cli/tests/kill_drill.rs` child-process SIGKILL drill, CI
//!   `kill-drill` job).
//! * **Graceful drain** — the `drain` protocol verb (and `SIGTERM` on a
//!   TCP daemon) stops accepting new sessions, finishes and journals
//!   in-flight work, flushes the store snapshot within
//!   [`TcpConfig::drain_timeout`] and exits cleanly; a restart on the
//!   drained store answers `recommend` without re-running anything.
//! * **Admission control** — [`Server::serve_tcp_with`] bounds live
//!   sessions at [`TcpConfig::session_cap`] (excess connections get a
//!   structured [`Response::Overloaded`] with a `retry_after_ms` hint,
//!   then are closed) and sheds requests whose session waited past
//!   [`TcpConfig::request_deadline`] for the server lock — the session
//!   survives and the shed is counted, so a flood degrades service
//!   *predictably* instead of queueing unboundedly.
//! * **SLO alarms** — a configurable [`SloPolicy`] projects alarm lines
//!   from the live health counters (monitor retry rate, degraded
//!   watches, poll failures, contained handler panics); alarms surface
//!   in `health` and `drift_status`, and monitor ticks emit
//!   `alarm-raised` / `alarm-cleared` events on edges — exercised
//!   deterministically by epoch-windowed
//!   [`FaultPlan::with_phase`](streamtune_backend::FaultPlan::with_phase)
//!   outage drills (`tests/chaos_faults.rs`).
//! * **Observability** — the `health` protocol verb reports build info
//!   (crate version, uptime, configured parallelism), per-job
//!   fault/retry counters ([`JobHealthLine`]) plus daemon-wide degraded
//!   watches, store recoveries, lock recoveries, contained handler
//!   panics, shed sessions, expired deadlines, oversized request lines
//!   and active SLO alarms ([`HealthReport`], [`HealthCounters`],
//!   [`TcpCounters`]). The `metrics` verb (and the HTTP scrape endpoint
//!   on `--metrics-listen`) exposes the `streamtune-telemetry` registry —
//!   per-verb request latency histograms, lock-wait timings, monitor
//!   tick durations, drift-event counts, retry/backoff timings, GED
//!   cache hit rates and pretrain phase timings. Telemetry is strictly
//!   observational: tuning outcomes with it enabled are bit-identical
//!   to runs with it disabled.
//! * **Flight recorder** — the `trace` verb returns the newest complete
//!   causal span tree (request dispatch → lock wait → handler → job
//!   drain → tune → backend deploys, stitched across worker threads)
//!   with a Chrome trace-event rendering for Perfetto; `explain <job>`
//!   replays the decision audit record behind a recommendation; and
//!   `metrics_history` (or `GET /metrics/history.json`) serves the
//!   sliding window of registry-snapshot deltas that `streamtune top`
//!   renders live. All three are read-only views over state the daemon
//!   records anyway — bit-identity with tracing enabled is part of the
//!   telemetry test suite.
//!
//! The CLI front ends are `streamtune serve`, `streamtune client`,
//! `streamtune trace`, `streamtune top` and `streamtune monitor`;
//! `examples/serve_quickstart.rs` and `examples/monitor_quickstart.rs`
//! drive in-process servers.

pub mod decision;
pub mod error;
pub mod expose;
pub mod job;
pub mod journal;
pub mod protocol;
pub mod server;
pub mod store;

pub use decision::DecisionRecord;
pub use error::ServeError;
pub use expose::{
    history_value, metrics_value, prometheus_text, record_history_frame, spawn_metrics_endpoint,
    trace_value, ServeMetrics,
};
pub use job::{Job, JobManager, JobResult, JobState, PersistedJob};
pub use journal::{
    create_journal, journal_file_name, load_journal, JournaledBackend, LoadedJournal,
};
pub use protocol::{
    parse_request, render_response, AlarmLine, BackendSpec, DriftEventLine, HealthReport,
    JobHealthLine, JobSpec, JobStatusLine, Recommendation, Request, Response, StatusReport,
    TickReport,
};
pub use server::{
    BootstrapReport, HealthCounters, Server, ServerConfig, SloPolicy, TcpConfig, TcpCounters,
    MAX_LINE_BYTES,
};
pub use store::{
    fnv1a64, read_envelope, write_envelope, ModelRecovery, ModelStore, StoreError, StoreStats,
};
