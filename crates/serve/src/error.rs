//! Serving-layer error type.

use crate::store::StoreError;
use std::fmt;
use streamtune_ged::SnapshotError;
use streamtune_monitor::MonitorError;

/// A serving operation that could not be performed. Protocol handling
/// lowers these into `error` responses; the daemon itself keeps running.
#[derive(Debug)]
pub enum ServeError {
    /// A job with this name already exists.
    DuplicateJob {
        /// The contested name.
        name: String,
    },
    /// No job with this name was ever admitted.
    UnknownJob {
        /// The requested name.
        name: String,
    },
    /// The submitted spec names a workload that does not exist.
    UnknownWorkload {
        /// The requested query name.
        query: String,
    },
    /// `cancel` on a job that already ran (or was already cancelled).
    NotQueued {
        /// The job's name.
        name: String,
        /// The state it is actually in.
        state: String,
    },
    /// `recommend` on a job that has no result (failed or cancelled).
    NoResult {
        /// The job's name.
        name: String,
        /// The state it is actually in.
        state: String,
    },
    /// `snapshot` on a server that was started without a store directory.
    NoStore,
    /// `watch` on a job whose backend cannot be monitored live (a
    /// replayed trace is finite; polling it forever makes no sense).
    NotWatchable {
        /// The job's name.
        name: String,
    },
    /// A monitor operation failed (duplicate/unknown watch).
    Monitor(MonitorError),
    /// Growing the corpus for a structure-drifted job is impossible
    /// because no training corpus is available (no `corpus.json` was
    /// persisted and the server was built without one).
    NoCorpus,
    /// A model-store operation failed.
    Store(StoreError),
    /// A persisted GED-cache snapshot is structurally invalid.
    Snapshot(SnapshotError),
    /// Transport I/O failed (socket, stdio).
    Io {
        /// What was being done.
        context: String,
        /// The underlying error rendered to text.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::DuplicateJob { name } => {
                write!(f, "job `{name}` already exists (names are unique handles)")
            }
            ServeError::UnknownJob { name } => write!(f, "no job named `{name}`"),
            ServeError::UnknownWorkload { query } => {
                write!(f, "unknown workload `{query}` (try `streamtune workloads`)")
            }
            ServeError::NotQueued { name, state } => {
                write!(
                    f,
                    "job `{name}` is {state}, only queued jobs can be cancelled"
                )
            }
            ServeError::NoResult { name, state } => {
                write!(f, "job `{name}` is {state} and has no recommendation")
            }
            ServeError::NoStore => {
                write!(
                    f,
                    "no model store configured (start the server with --store)"
                )
            }
            ServeError::NotWatchable { name } => {
                write!(
                    f,
                    "job `{name}` runs on a replayed trace and cannot be watched live"
                )
            }
            ServeError::Monitor(e) => write!(f, "{e}"),
            ServeError::NoCorpus => {
                write!(
                    f,
                    "no training corpus available to grow (the store has no corpus.json)"
                )
            }
            ServeError::Store(e) => write!(f, "model store: {e}"),
            ServeError::Snapshot(e) => write!(f, "{e}"),
            ServeError::Io { context, message } => write!(f, "{context}: {message}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Store(e) => Some(e),
            ServeError::Snapshot(e) => Some(e),
            ServeError::Monitor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MonitorError> for ServeError {
    fn from(e: MonitorError) -> Self {
        ServeError::Monitor(e)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::Snapshot(e)
    }
}
