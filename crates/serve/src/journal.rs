//! The epoch-granular job journal: fsync'd append-only run records that
//! make tuning sessions survive `kill -9`.
//!
//! The persistent store (`jobs.json`) only ever holds *terminal* job
//! states — a process death mid-tune used to vaporize every in-flight
//! session and any submitted-but-undrained job. The journal closes that
//! gap: each journalable job gets its own line-delimited file under
//! `<store>/journal/` holding a checksummed header (the [`JobSpec`])
//! followed by one checksummed [`TraceEntry`] per successfully observed
//! tuning epoch, each appended and fsync'd *before* the observation is
//! handed to the tuner.
//!
//! On bootstrap, journals whose jobs are not already terminal in the
//! ledger are re-admitted and their recorded prefix is replayed: because
//! tuning is a pure function of `(pretrained, spec)` and backends key
//! measurement noise on the epoch, feeding the journaled observations
//! back for epochs `1..k` and going live from `k+1` produces a
//! [`TuneOutcome`](streamtune_backend::TuneOutcome) **bit-identical** to
//! an uninterrupted run. The record format deliberately mirrors
//! [`TraceLog`](streamtune_backend::TraceLog)/[`ReplayBackend`](streamtune_backend::ReplayBackend):
//! a journal is a crash-consistent trace of the run so far.
//!
//! Crash consistency is line-granular: every line carries an FNV-1a 64
//! checksum of its payload, so a torn tail (the write the crash
//! interrupted) fails to parse or hash and is simply dropped — a reader
//! always sees *the state as of some completed epoch*, never garbage. A
//! corrupt or unreadable header disables resumption for that job (it
//! re-runs from scratch, which is deterministic anyway) but never blocks
//! the daemon from booting.

use crate::protocol::JobSpec;
use crate::store::fnv1a64;
use serde::{Deserialize, Serialize, Value};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use streamtune_backend::{
    BackendConstraints, BackendError, EngineMode, ExecutionBackend, SimulationReport, TraceEntry,
};
use streamtune_dataflow::{Dataflow, ParallelismAssignment};

/// Format name every journal header carries.
pub const JOURNAL_MAGIC: &str = "streamtune-job-journal";

/// Journal format version this build writes (and the newest it reads).
pub const JOURNAL_VERSION: u64 = 1;

/// File extension of journal files inside the journal directory.
pub const JOURNAL_EXT: &str = "journal";

/// The journal file name for a job: a readable sanitized prefix plus an
/// FNV-1a 64 hash of the exact name, so any job name maps to a unique
/// filesystem-safe file.
pub fn journal_file_name(job: &str) -> String {
    let safe: String = job
        .chars()
        .take(48)
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("{safe}-{:016x}.{JOURNAL_EXT}", fnv1a64(job.as_bytes()))
}

/// One checksummed journal line: `{"checksum":C,"data":payload}` where
/// `C` is FNV-1a 64 of the compact payload text (exactly as embedded).
fn sealed_line<T: Serialize>(payload: &T) -> String {
    let payload_json = serde_json::to_string(payload).expect("journal payloads serialize");
    let checksum = fnv1a64(payload_json.as_bytes());
    format!("{{\"checksum\":{checksum},\"data\":{payload_json}}}")
}

/// Parse and verify one checksummed line. `None` ⇔ the line is torn,
/// tampered with, or not a sealed line at all.
fn unseal<T: Deserialize>(line: &str) -> Option<T> {
    let value: Value = serde_json::from_str(line).ok()?;
    let recorded = u64::deserialize(value.field("checksum").ok()?).ok()?;
    let payload = value.field("data").ok()?;
    let payload_json = serde_json::to_string(payload).ok()?;
    if fnv1a64(payload_json.as_bytes()) != recorded {
        return None;
    }
    T::deserialize(payload).ok()
}

/// The first line of every journal: identifies the format and carries the
/// submitted spec, so a resumed daemon can re-admit the job from the
/// journal alone (queued jobs are not in the ledger).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct JournalHeader {
    magic: String,
    version: u64,
    spec: JobSpec,
}

/// A loaded journal: the job it belongs to and the epochs it recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedJournal {
    /// The spec as submitted (the job re-admits from this).
    pub spec: JobSpec,
    /// Complete, checksum-verified entries, in append order. A torn or
    /// corrupt tail is dropped, never surfaced.
    pub entries: Vec<TraceEntry>,
}

/// Create (or truncate) the journal for `spec` at `path`, writing and
/// fsync'ing the header. The parent directory is created as needed.
pub fn create_journal(path: &Path, spec: &JobSpec) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let header = JournalHeader {
        magic: JOURNAL_MAGIC.to_string(),
        version: JOURNAL_VERSION,
        spec: spec.clone(),
    };
    let mut file = std::fs::File::create(path)?;
    writeln!(file, "{}", sealed_line(&header))?;
    file.sync_all()
}

/// Load a journal, tolerating a torn tail (see module docs). Errors only
/// on I/O failure or an unusable header — both mean "no resumable state",
/// and callers treat them as a fresh run, not a boot failure.
pub fn load_journal(path: &Path) -> std::io::Result<Option<LoadedJournal>> {
    let text = std::fs::read_to_string(path)?;
    let mut lines = text.lines();
    let Some(header) = lines.next().and_then(unseal::<JournalHeader>) else {
        return Ok(None);
    };
    if header.magic != JOURNAL_MAGIC || header.version > JOURNAL_VERSION {
        return Ok(None);
    }
    let mut entries = Vec::new();
    for line in lines {
        // The first unverifiable line is the torn tail; everything after
        // it is unreachable state from before the truncation point.
        match unseal::<TraceEntry>(line) {
            Some(entry) => entries.push(entry),
            None => break,
        }
    }
    Ok(Some(LoadedJournal {
        spec: header.spec,
        entries,
    }))
}

/// Wraps a job's backend with journal record/replay.
///
/// * Epochs covered by the loaded `prefix` are served straight from the
///   journal — the live backend (and any chaos layer around it) is not
///   consulted, so the tuner sees exactly what the pre-crash run saw.
/// * Past the prefix, deploys go live; every *valid* successful report is
///   appended to the journal and fsync'd before it is returned, so the
///   next crash loses at most the epoch in flight. Invalid reports (e.g.
///   chaos NaN corruption) are passed through un-journaled — the session
///   retries them at the same epoch, and only the clean result is
///   recorded, keeping the journal a replayable trace of truths.
/// * If a live deploy disagrees with the journal (the model or spec
///   changed under the journal's feet), the journal is truncated to the
///   verified prefix and recording continues from there — stale state is
///   discarded, never mixed.
///
/// Journal writes are best-effort: an append failure (disk full, file
/// deleted) disables journaling for the rest of the run but never fails
/// the job — losing resumability must not lose the tune.
pub struct JournaledBackend<'a> {
    inner: &'a mut dyn ExecutionBackend,
    spec: &'a JobSpec,
    path: PathBuf,
    file: Option<std::fs::File>,
    prefix: Vec<TraceEntry>,
    next: usize,
}

impl<'a> JournaledBackend<'a> {
    /// Wrap `inner`, resuming from `prefix` (empty for a fresh run) and
    /// appending new epochs to the journal at `path`. The file is created
    /// with a fresh header when absent.
    pub fn resume(
        inner: &'a mut dyn ExecutionBackend,
        spec: &'a JobSpec,
        path: PathBuf,
        prefix: Vec<TraceEntry>,
    ) -> Self {
        if !path.is_file() {
            let _ = create_journal(&path, spec);
        }
        let file = std::fs::OpenOptions::new().append(true).open(&path).ok();
        JournaledBackend {
            inner,
            spec,
            path,
            file,
            prefix,
            next: 0,
        }
    }

    /// How many journaled epochs were served instead of live deploys.
    pub fn replayed(&self) -> usize {
        self.next
    }

    /// Rewrite the journal as header + the verified prefix served so far
    /// (used when a live deploy diverges from stale journal state).
    fn truncate_to_prefix(&mut self) {
        self.file = None;
        if create_journal(&self.path, self.spec).is_err() {
            return;
        }
        let Ok(mut file) = std::fs::OpenOptions::new().append(true).open(&self.path) else {
            return;
        };
        for entry in &self.prefix[..self.next] {
            if writeln!(file, "{}", sealed_line(entry)).is_err() {
                return;
            }
        }
        if file.sync_all().is_ok() {
            self.file = Some(file);
        }
    }

    /// Append one entry and fsync; on failure, stop journaling.
    fn record(&mut self, entry: &TraceEntry) {
        let Some(file) = &mut self.file else { return };
        let ok = writeln!(file, "{}", sealed_line(entry)).is_ok() && file.sync_data().is_ok();
        if !ok {
            self.file = None;
        }
    }
}

impl ExecutionBackend for JournaledBackend<'_> {
    fn engine_mode(&self) -> EngineMode {
        self.inner.engine_mode()
    }

    fn constraints(&self) -> BackendConstraints {
        self.inner.constraints()
    }

    fn deploy(
        &mut self,
        flow: &Dataflow,
        assignment: &ParallelismAssignment,
        epoch: u64,
    ) -> Result<SimulationReport, BackendError> {
        if self.next < self.prefix.len() {
            let entry = &self.prefix[self.next];
            if entry.epoch == epoch && &entry.assignment == assignment {
                let report = entry.report.clone();
                self.next += 1;
                return Ok(report);
            }
            // Divergence: the journal was written under different state.
            // Keep what replayed cleanly, drop the rest, go live.
            self.prefix.truncate(self.next);
            self.truncate_to_prefix();
        }
        let report = self.inner.deploy(flow, assignment, epoch)?;
        if report.observation.validate().is_ok() {
            self.record(&TraceEntry {
                epoch,
                assignment: assignment.clone(),
                report: report.clone(),
            });
        }
        Ok(report)
    }

    fn epoch_latencies(
        &mut self,
        flow: &Dataflow,
        assignment: &ParallelismAssignment,
        epochs: usize,
    ) -> Result<Vec<f64>, BackendError> {
        self.inner.epoch_latencies(flow, assignment, epochs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::BackendSpec;
    use streamtune_workloads::rates::Engine;

    fn temp_journal(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "streamtune-journal-test-{}-{name}",
            std::process::id()
        ))
    }

    fn spec(name: &str) -> JobSpec {
        JobSpec {
            name: name.to_string(),
            query: "nexmark-q1".to_string(),
            multiplier: 8.0,
            seed: 7,
            engine: Engine::Flink,
            backend: BackendSpec::Sim,
        }
    }

    fn entry(epoch: u64) -> TraceEntry {
        use streamtune_backend::{EngineMode, Observation};
        TraceEntry {
            epoch,
            assignment: ParallelismAssignment::from_vec(vec![1, 2]),
            report: SimulationReport {
                observation: Observation {
                    mode: EngineMode::Flink,
                    per_op: Vec::new(),
                    job_backpressure: false,
                    throughput_scale: 1.0 / (epoch as f64 + 1.0),
                    cpu_utilization: 0.25,
                    total_parallelism: 3,
                },
                true_pa: vec![1.0],
                demand_input: vec![1.0],
                saturated: vec![false],
            },
        }
    }

    fn append_raw(path: &Path, entry: &TraceEntry) {
        let mut file = std::fs::OpenOptions::new().append(true).open(path).unwrap();
        writeln!(file, "{}", sealed_line(entry)).unwrap();
    }

    #[test]
    fn journal_roundtrips_header_and_entries() {
        let path = temp_journal("roundtrip");
        create_journal(&path, &spec("j")).unwrap();
        append_raw(&path, &entry(1));
        append_raw(&path, &entry(2));
        let loaded = load_journal(&path).unwrap().expect("journal loads");
        assert_eq!(loaded.spec, spec("j"));
        assert_eq!(loaded.entries, vec![entry(1), entry(2)]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_dropped_not_garbage() {
        let path = temp_journal("torn");
        create_journal(&path, &spec("j")).unwrap();
        append_raw(&path, &entry(1));
        // Simulate a crash mid-append: half a sealed line at the end.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let torn = sealed_line(&entry(2));
        text.push_str(&torn[..torn.len() / 2]);
        std::fs::write(&path, text).unwrap();
        let loaded = load_journal(&path).unwrap().expect("journal still loads");
        assert_eq!(loaded.entries, vec![entry(1)], "torn tail dropped");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tampered_entry_truncates_from_there() {
        let path = temp_journal("tampered");
        create_journal(&path, &spec("j")).unwrap();
        append_raw(&path, &entry(1));
        append_raw(&path, &entry(2));
        let text = std::fs::read_to_string(&path).unwrap();
        // Flip a digit inside the *second* entry's payload.
        let lines: Vec<&str> = text.lines().collect();
        let tampered = lines[2].replacen("\"epoch\":2", "\"epoch\":3", 1);
        std::fs::write(&path, format!("{}\n{}\n{tampered}\n", lines[0], lines[1])).unwrap();
        let loaded = load_journal(&path).unwrap().expect("journal loads");
        assert_eq!(loaded.entries, vec![entry(1)], "bad checksum ends the log");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_header_means_no_resumable_state() {
        let path = temp_journal("badheader");
        std::fs::write(&path, "not a journal at all\n").unwrap();
        assert_eq!(load_journal(&path).unwrap(), None);
        std::fs::write(&path, "").unwrap();
        assert_eq!(load_journal(&path).unwrap(), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_names_are_safe_and_collision_free() {
        let a = journal_file_name("job/one:*?");
        let b = journal_file_name("job/one:*!");
        assert_ne!(a, b, "hash disambiguates sanitized twins");
        assert!(a.ends_with(".journal"));
        assert!(a
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.'));
    }
}
