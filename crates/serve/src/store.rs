//! The persistent model store: versioned, checksummed artifact files.
//!
//! A long-running tuning service must survive restarts without repeating
//! the (expensive) offline phase, so everything it learned is persisted as
//! four artifacts inside one store directory:
//!
//! * `model.json` — the serialized [`Pretrained`] bundle (cluster centers,
//!   GNN encoders, warm-up datasets); a *superseded* model (e.g. replaced
//!   after an incremental re-pretrain) is rotated to `model.json.bak`
//!   rather than overwritten, so one bad swap is always recoverable;
//! * `gedcache.json` — a [`GedCacheSnapshot`] of every memoized A\* fact,
//!   so a re-pretraining run (e.g. on a grown corpus) starts warm;
//! * `corpus.json` — the execution-history corpus the model was trained
//!   on, so incremental corpus growth (appending an uncovered DAG and
//!   re-pretraining warm) works across restarts;
//! * `jobs.json` — the completed job ledger (capped by the server's
//!   ledger rotation), so `status` answers across restarts;
//! * `decisions.json` — the decision audit trail (one
//!   [`DecisionRecord`](crate::decision::DecisionRecord) per
//!   recommendation, capped alongside the ledger), so `explain` answers
//!   across restarts.
//!
//! Every file is wrapped in the same **envelope**: a JSON object carrying
//! `magic` (format name), `version`, `checksum` (FNV-1a 64 of the compact
//! payload text) and `payload`. Readers *tolerate unknown extra fields* —
//! a future version may add fields without breaking old readers — but
//! refuse wrong magic, a version from the future, and any checksum
//! mismatch with an explicit [`StoreError`]; malformed input never
//! panics. The payload text is checksummed exactly as embedded (compact
//! rendering), so verification is a pure re-render of the parsed payload.

use serde::{Deserialize, Serialize, Value};
use std::path::{Path, PathBuf};
use streamtune_core::Pretrained;
use streamtune_ged::GedCacheSnapshot;
use streamtune_workloads::history::ExecutionRecord;

use crate::decision::DecisionRecord;
use crate::job::PersistedJob;

/// Format name every store artifact carries.
pub const STORE_MAGIC: &str = "streamtune-model-store";

/// Envelope version this build writes (and the newest it reads).
pub const STORE_VERSION: u64 = 1;

/// A failed store operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Reading or writing an artifact file failed.
    Io {
        /// The file involved.
        path: String,
        /// The underlying error rendered to text.
        message: String,
    },
    /// An artifact is not valid JSON or not a valid envelope/payload.
    Format {
        /// The file involved.
        path: String,
        /// What was wrong.
        message: String,
    },
    /// The artifact's payload does not match its recorded checksum.
    ChecksumMismatch {
        /// The file involved.
        path: String,
        /// Checksum recorded in the envelope.
        recorded: u64,
        /// Checksum of the payload actually present.
        actual: u64,
    },
    /// The file is not a store artifact at all (wrong `magic`).
    WrongMagic {
        /// The file involved.
        path: String,
        /// The magic string found.
        found: String,
    },
    /// The artifact was written by a newer format version.
    UnsupportedVersion {
        /// The file involved.
        path: String,
        /// The version found.
        version: u64,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, message } => write!(f, "{path}: {message}"),
            StoreError::Format { path, message } => write!(f, "{path}: {message}"),
            StoreError::ChecksumMismatch {
                path,
                recorded,
                actual,
            } => write!(
                f,
                "{path}: checksum mismatch (recorded {recorded:#018x}, payload hashes to \
                 {actual:#018x}) — the artifact is corrupt or was edited by hand"
            ),
            StoreError::WrongMagic { path, found } => {
                write!(f, "{path}: not a {STORE_MAGIC} artifact (magic `{found}`)")
            }
            StoreError::UnsupportedVersion { path, version } => write!(
                f,
                "{path}: envelope version {version} is newer than this build understands \
                 ({STORE_VERSION})"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    /// Whether the error means *the bytes on disk are damaged* — as
    /// opposed to unreadable (I/O) or written by a newer build
    /// (`UnsupportedVersion`, where the file is fine and quarantining it
    /// would destroy a future format's data).
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            StoreError::Format { .. }
                | StoreError::ChecksumMismatch { .. }
                | StoreError::WrongMagic { .. }
        )
    }
}

/// FNV-1a 64-bit over `bytes` — a small, dependency-free integrity hash.
/// This detects corruption and accidental edits, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Serialize `payload` into an envelope and write it to `path`.
///
/// The write is atomic (temp file + rename in the same directory): a
/// crash mid-snapshot must never leave a truncated artifact in place of
/// the previously good one, or the daemon could not restart from its own
/// store.
pub fn write_envelope<T: Serialize>(path: &Path, payload: &T) -> Result<(), StoreError> {
    let text = envelope_text(path, payload)?;
    write_text_atomic(path, &text)
}

/// Render the full envelope text for `payload` (the exact bytes
/// [`write_envelope`] would put on disk — the writer is deterministic, so
/// equal payloads produce byte-equal envelopes).
fn envelope_text<T: Serialize>(path: &Path, payload: &T) -> Result<String, StoreError> {
    let payload_json = serde_json::to_string(payload).map_err(|e| StoreError::Format {
        path: path.display().to_string(),
        message: format!("serialize payload: {e}"),
    })?;
    let checksum = fnv1a64(payload_json.as_bytes());
    Ok(format!(
        "{{\"magic\":\"{STORE_MAGIC}\",\"version\":{STORE_VERSION},\
         \"checksum\":{checksum},\"payload\":{payload_json}}}"
    ))
}

/// Atomically and *durably* place `text` at `path` (temp file + fsync +
/// rename + parent-directory fsync).
///
/// The rename makes the swap atomic against concurrent readers; the
/// `sync_all` before it makes it crash-safe — without the fsync a power
/// cut after the rename can leave the *new name pointing at unwritten
/// data* (rename metadata often reaches the journal before file pages
/// reach the platter). The parent-directory fsync then persists the
/// rename itself, so a crash cannot roll the swap back after callers
/// were told it succeeded. The directory sync is best-effort: some
/// filesystems refuse `fsync` on directory handles, and losing only the
/// rename (not the bytes) still leaves the previous good artifact.
fn write_text_atomic(path: &Path, text: &str) -> Result<(), StoreError> {
    use std::io::Write as _;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let io_err = |e: std::io::Error| StoreError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    };
    let mut file = std::fs::File::create(&tmp).map_err(io_err)?;
    file.write_all(text.as_bytes()).map_err(io_err)?;
    file.sync_all().map_err(io_err)?;
    drop(file);
    std::fs::rename(&tmp, path).map_err(io_err)?;
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Read and verify an envelope from `path`, deserializing its payload.
///
/// Unknown envelope fields are ignored (forward compatibility); wrong
/// magic, future versions and checksum mismatches are explicit errors.
pub fn read_envelope<T: Deserialize>(path: &Path) -> Result<T, StoreError> {
    let display = path.display().to_string();
    let text = std::fs::read_to_string(path).map_err(|e| StoreError::Io {
        path: display.clone(),
        message: e.to_string(),
    })?;
    let value: Value = serde_json::from_str(&text).map_err(|e| StoreError::Format {
        path: display.clone(),
        message: format!("invalid JSON: {e}"),
    })?;
    let envelope_field = |name: &str| {
        value.field(name).map_err(|e| StoreError::Format {
            path: display.clone(),
            message: format!("invalid envelope: {e}"),
        })
    };
    let magic = String::deserialize(envelope_field("magic")?).map_err(|e| StoreError::Format {
        path: display.clone(),
        message: format!("invalid envelope magic: {e}"),
    })?;
    if magic != STORE_MAGIC {
        return Err(StoreError::WrongMagic {
            path: display,
            found: magic,
        });
    }
    let version = u64::deserialize(envelope_field("version")?).map_err(|e| StoreError::Format {
        path: display.clone(),
        message: format!("invalid envelope version: {e}"),
    })?;
    if version > STORE_VERSION {
        return Err(StoreError::UnsupportedVersion {
            path: display,
            version,
        });
    }
    let recorded =
        u64::deserialize(envelope_field("checksum")?).map_err(|e| StoreError::Format {
            path: display.clone(),
            message: format!("invalid envelope checksum: {e}"),
        })?;
    let payload = envelope_field("payload")?;
    // The writer embedded the compact payload text verbatim, so hashing a
    // compact re-render of the parsed payload reproduces its checksum.
    let payload_json = serde_json::to_string(payload).map_err(|e| StoreError::Format {
        path: display.clone(),
        message: format!("re-render payload: {e}"),
    })?;
    let actual = fnv1a64(payload_json.as_bytes());
    if actual != recorded {
        return Err(StoreError::ChecksumMismatch {
            path: display,
            recorded,
            actual,
        });
    }
    T::deserialize(payload).map_err(|e| StoreError::Format {
        path: display,
        message: format!("invalid payload: {e}"),
    })
}

/// A model-store directory holding the three persisted artifacts.
#[derive(Debug, Clone)]
pub struct ModelStore {
    dir: PathBuf,
}

impl ModelStore {
    /// A store rooted at `dir` (created lazily on first save).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ModelStore { dir: dir.into() }
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the pre-trained model artifact.
    pub fn model_path(&self) -> PathBuf {
        self.dir.join("model.json")
    }

    /// Path of the GED-cache snapshot artifact.
    pub fn ged_cache_path(&self) -> PathBuf {
        self.dir.join("gedcache.json")
    }

    /// Path of the completed-job ledger artifact.
    pub fn jobs_path(&self) -> PathBuf {
        self.dir.join("jobs.json")
    }

    /// Path of the training-corpus artifact.
    pub fn corpus_path(&self) -> PathBuf {
        self.dir.join("corpus.json")
    }

    /// Path of the decision-audit-trail artifact.
    pub fn decisions_path(&self) -> PathBuf {
        self.dir.join("decisions.json")
    }

    /// Directory holding per-job epoch journals (crash resumption).
    pub fn journal_dir(&self) -> PathBuf {
        self.dir.join("journal")
    }

    /// Path a superseded model is rotated to.
    pub fn model_backup_path(&self) -> PathBuf {
        self.dir.join("model.json.bak")
    }

    /// Whether a pre-trained model is present.
    pub fn has_model(&self) -> bool {
        self.model_path().is_file()
    }

    /// Whether a GED-cache snapshot is present.
    pub fn has_ged_cache(&self) -> bool {
        self.ged_cache_path().is_file()
    }

    /// Whether a job ledger is present.
    pub fn has_jobs(&self) -> bool {
        self.jobs_path().is_file()
    }

    /// Whether a training corpus is present.
    pub fn has_corpus(&self) -> bool {
        self.corpus_path().is_file()
    }

    fn ensure_dir(&self) -> Result<(), StoreError> {
        std::fs::create_dir_all(&self.dir).map_err(|e| StoreError::Io {
            path: self.dir.display().to_string(),
            message: e.to_string(),
        })
    }

    /// Persist the pre-trained bundle. A *different* model already on disk
    /// is rotated to `model.json.bak` first (long-lived daemons swap
    /// models after incremental re-pretrains; the previous envelope stays
    /// recoverable). Re-saving an identical model is a no-op: the writer
    /// is deterministic, so byte-equal envelopes mean equal models.
    pub fn save_model(&self, pretrained: &Pretrained) -> Result<(), StoreError> {
        self.ensure_dir()?;
        let path = self.model_path();
        let text = envelope_text(&path, pretrained)?;
        if path.is_file() {
            let old = std::fs::read_to_string(&path).map_err(|e| StoreError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
            if old == text {
                return Ok(());
            }
            let bak = self.model_backup_path();
            std::fs::rename(&path, &bak).map_err(|e| StoreError::Io {
                path: bak.display().to_string(),
                message: e.to_string(),
            })?;
        }
        write_text_atomic(&path, &text)
    }

    /// Load the pre-trained bundle (strict: corruption is an error; use
    /// [`ModelStore::recover_model`] for the boot path that falls back).
    pub fn load_model(&self) -> Result<Pretrained, StoreError> {
        read_envelope(&self.model_path())
    }

    /// Move a damaged artifact aside as `<name>.corrupt` (replacing any
    /// previous quarantine of the same file) so the evidence survives for
    /// post-mortems without blocking the daemon from booting.
    pub fn quarantine(&self, path: &Path) -> Result<PathBuf, StoreError> {
        let mut corrupt = path.as_os_str().to_owned();
        corrupt.push(".corrupt");
        let corrupt = PathBuf::from(corrupt);
        std::fs::rename(path, &corrupt).map_err(|e| StoreError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Ok(corrupt)
    }

    /// Corruption-tolerant read of one artifact: an absent file reads as
    /// `None`; a *corrupt* file is quarantined and reads as `None` with a
    /// recovery-event description; I/O failures and future-version files
    /// stay hard errors.
    pub fn read_or_quarantine<T: Deserialize>(
        &self,
        path: &Path,
    ) -> Result<(Option<T>, Option<String>), StoreError> {
        if !path.is_file() {
            return Ok((None, None));
        }
        match read_envelope(path) {
            Ok(value) => Ok((Some(value), None)),
            Err(e) if e.is_corruption() => {
                let quarantined = self.quarantine(path)?;
                Ok((
                    None,
                    Some(format!(
                        "{}: corrupt ({e}); quarantined to {}",
                        path.display(),
                        quarantined.display()
                    )),
                ))
            }
            Err(e) => Err(e),
        }
    }

    /// Crash-safe model load for the boot path.
    ///
    /// A clean `model.json` loads as-is. A *corrupt* one (e.g. a torn
    /// write from a crash predating the fsync discipline, or a hand-edit)
    /// is quarantined as `model.json.corrupt` and the rotated
    /// `model.json.bak` is promoted in its place — the daemon boots on
    /// the last good model instead of refusing to start. If the backup is
    /// corrupt too (or absent), both are quarantined and the recovery
    /// reports no model, sending the caller down the cold-pretrain path.
    /// Every action taken is described in [`ModelRecovery::events`].
    pub fn recover_model(&self) -> Result<ModelRecovery, StoreError> {
        let mut events = Vec::new();
        if !self.has_model() {
            return Ok(ModelRecovery {
                model: None,
                events,
            });
        }
        match self.load_model() {
            Ok(model) => Ok(ModelRecovery {
                model: Some(model),
                events,
            }),
            Err(e) if e.is_corruption() => {
                let quarantined = self.quarantine(&self.model_path())?;
                events.push(format!(
                    "model.json: corrupt ({e}); quarantined to {}",
                    quarantined.display()
                ));
                let bak = self.model_backup_path();
                let (model, bak_event) = self.read_or_quarantine::<Pretrained>(&bak)?;
                if let Some(event) = bak_event {
                    events.push(event);
                }
                if model.is_some() {
                    // Promote the backup: it is now the live model, byte
                    // for byte (the envelope moves, not a re-render).
                    std::fs::rename(&bak, self.model_path()).map_err(|e| StoreError::Io {
                        path: bak.display().to_string(),
                        message: e.to_string(),
                    })?;
                    events.push("model.json.bak: promoted to model.json".to_string());
                }
                Ok(ModelRecovery { model, events })
            }
            Err(e) => Err(e),
        }
    }

    /// Persist a GED-cache snapshot.
    pub fn save_ged_cache(&self, snapshot: &GedCacheSnapshot) -> Result<(), StoreError> {
        self.ensure_dir()?;
        write_envelope(&self.ged_cache_path(), snapshot)
    }

    /// Load the GED-cache snapshot.
    pub fn load_ged_cache(&self) -> Result<GedCacheSnapshot, StoreError> {
        read_envelope(&self.ged_cache_path())
    }

    /// Persist the completed-job ledger.
    pub fn save_jobs(&self, jobs: &[PersistedJob]) -> Result<(), StoreError> {
        self.ensure_dir()?;
        write_envelope(&self.jobs_path(), &jobs.to_vec())
    }

    /// Load the completed-job ledger.
    pub fn load_jobs(&self) -> Result<Vec<PersistedJob>, StoreError> {
        read_envelope(&self.jobs_path())
    }

    /// Persist the decision audit trail.
    pub fn save_decisions(&self, decisions: &[DecisionRecord]) -> Result<(), StoreError> {
        self.ensure_dir()?;
        write_envelope(&self.decisions_path(), &decisions.to_vec())
    }

    /// Load the decision audit trail.
    pub fn load_decisions(&self) -> Result<Vec<DecisionRecord>, StoreError> {
        read_envelope(&self.decisions_path())
    }

    /// Persist the training corpus.
    pub fn save_corpus(&self, corpus: &[ExecutionRecord]) -> Result<(), StoreError> {
        self.ensure_dir()?;
        write_envelope(&self.corpus_path(), &corpus.to_vec())
    }

    /// Load the training corpus.
    pub fn load_corpus(&self) -> Result<Vec<ExecutionRecord>, StoreError> {
        read_envelope(&self.corpus_path())
    }

    /// File-level statistics (sizes in bytes; 0 when absent) — the
    /// `store_stats` block of the `status` reply.
    pub fn stats(&self) -> StoreStats {
        let size = |p: PathBuf| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
        StoreStats {
            model_bytes: size(self.model_path()),
            model_backup_bytes: size(self.model_backup_path()),
            ged_cache_bytes: size(self.ged_cache_path()),
            corpus_bytes: size(self.corpus_path()),
            jobs_bytes: size(self.jobs_path()),
        }
    }
}

/// What [`ModelStore::recover_model`] found and did.
#[derive(Debug, Clone)]
pub struct ModelRecovery {
    /// The model to boot on (`None` ⇒ nothing recoverable; cold-pretrain).
    pub model: Option<Pretrained>,
    /// Human-readable descriptions of every quarantine/promotion taken
    /// (empty ⇔ the store was healthy).
    pub events: Vec<String>,
}

/// Artifact sizes of a store directory (0 ⇔ absent). Reported by the
/// `status` verb so operators of long-lived daemons can watch growth and
/// verify that rotation/compaction are doing their jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Bytes of `model.json`.
    pub model_bytes: u64,
    /// Bytes of the rotated `model.json.bak` (0 ⇔ never superseded).
    pub model_backup_bytes: u64,
    /// Bytes of `gedcache.json`.
    pub ged_cache_bytes: u64,
    /// Bytes of `corpus.json`.
    pub corpus_bytes: u64,
    /// Bytes of `jobs.json`.
    pub jobs_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "streamtune-store-test-{}-{name}",
            std::process::id()
        ))
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Payload {
        answer: u64,
        label: String,
        weights: Vec<f64>,
    }

    fn payload() -> Payload {
        Payload {
            answer: 42,
            label: "q5".to_string(),
            weights: vec![0.1, -3.5, 2e-7],
        }
    }

    #[test]
    fn envelope_roundtrip() {
        let path = temp_file("roundtrip.json");
        write_envelope(&path, &payload()).unwrap();
        let back: Payload = read_envelope(&path).unwrap();
        assert_eq!(back, payload());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn envelope_tolerates_unknown_future_fields() {
        let path = temp_file("future.json");
        write_envelope(&path, &payload()).unwrap();
        // A future writer appends fields this build does not know about.
        let text = std::fs::read_to_string(&path).unwrap();
        let extended = text.replacen(
            "{\"magic\"",
            "{\"written_by\":\"v9\",\"compression\":null,\"magic\"",
            1,
        );
        std::fs::write(&path, extended).unwrap();
        let back: Payload = read_envelope(&path).unwrap();
        assert_eq!(back, payload());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tampered_payload_is_a_checksum_error_not_a_panic() {
        let path = temp_file("tampered.json");
        write_envelope(&path, &payload()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"answer\":42"));
        std::fs::write(&path, text.replace("\"answer\":42", "\"answer\":41")).unwrap();
        match read_envelope::<Payload>(&path) {
            Err(StoreError::ChecksumMismatch { .. }) => {}
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_future_version_and_garbage_are_explicit_errors() {
        let path = temp_file("bad.json");

        std::fs::write(&path, "{\"magic\":\"other-format\",\"version\":1}").unwrap();
        assert!(matches!(
            read_envelope::<Payload>(&path),
            Err(StoreError::WrongMagic { .. })
        ));

        std::fs::write(
            &path,
            format!("{{\"magic\":\"{STORE_MAGIC}\",\"version\":999,\"checksum\":0,\"payload\":0}}"),
        )
        .unwrap();
        assert!(matches!(
            read_envelope::<Payload>(&path),
            Err(StoreError::UnsupportedVersion { version: 999, .. })
        ));

        std::fs::write(&path, "not json at all {{{").unwrap();
        assert!(matches!(
            read_envelope::<Payload>(&path),
            Err(StoreError::Format { .. })
        ));

        std::fs::remove_file(&path).ok();
        assert!(matches!(
            read_envelope::<Payload>(&path),
            Err(StoreError::Io { .. })
        ));
    }

    #[test]
    fn superseded_models_rotate_to_bak_identical_saves_do_not() {
        use streamtune_core::{PretrainConfig, Pretrainer};
        use streamtune_sim::SimCluster;
        use streamtune_workloads::history::HistoryGenerator;

        let dir = std::env::temp_dir().join(format!("streamtune-rotate-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = ModelStore::new(&dir);
        let cluster = SimCluster::flink_defaults(5);
        let corpus = HistoryGenerator::new(5).with_jobs(4).generate(&cluster);
        let mut cfg = PretrainConfig::fast();
        cfg.min_structures_for_clustering = usize::MAX; // tiny global model
        let a = Pretrainer::new(cfg.clone()).run(&corpus);
        cfg.epochs = 3; // a genuinely different model
        let b = Pretrainer::new(cfg).run(&corpus);

        store.save_model(&a).unwrap();
        assert!(!store.model_backup_path().is_file());
        // Same model again: no rotation.
        store.save_model(&a).unwrap();
        assert!(!store.model_backup_path().is_file());
        // A different model supersedes: the old envelope rotates to .bak.
        let old_envelope = std::fs::read_to_string(store.model_path()).unwrap();
        store.save_model(&b).unwrap();
        assert!(store.model_backup_path().is_file());
        assert_eq!(
            std::fs::read_to_string(store.model_backup_path()).unwrap(),
            old_envelope,
            "the .bak must be the superseded envelope, byte for byte"
        );

        let stats = store.stats();
        assert!(stats.model_bytes > 0);
        assert!(stats.model_backup_bytes > 0);
        assert_eq!(stats.corpus_bytes, 0, "corpus never saved here");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
