//! The job manager: admission, deterministic batch execution, ledger.
//!
//! Jobs are *independent by construction*: every job owns its backend
//! (a per-job seeded `SimCluster` or a replayed trace) and its own
//! `StreamTune` fine-tuning state, while the admission-time [`Pretrained`]
//! corpus is shared read-only. Running a job is therefore a pure function
//! of `(pretrained, spec)`, which is what makes the worker-pool fan-out
//! deterministic: any thread count ([`Parallelism`]) and any submission
//! interleaving produce bit-identical per-job outcomes.
//!
//! Execution is batched, not streamed: `submit` only admits (and assigns
//! the job to its cluster); the first verb that needs results (`status`,
//! `recommend`, `snapshot`) drains every queued job in one deterministic
//! [`parallel_map`] batch. `cancel` removes a job that has not been
//! drained yet.

use crate::error::ServeError;
use crate::protocol::{BackendSpec, JobSpec, JobStatusLine};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use streamtune_backend::{
    ChaosBackend, ExecutionBackend, FaultPlan, RetryPolicy, RetryStats, TuneError, TuneOutcome,
    Tuner, TuningSession,
};
use streamtune_connect::{ingest_file, FlinkBackend, IngestConfig};
use streamtune_core::{Pretrained, StreamTune, TuneConfig};
use streamtune_ged::{parallel_map, Parallelism};
use streamtune_sim::SimCluster;
use streamtune_workloads::{find_workload, rates::Engine};

/// A finished job's tuning result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// Cluster whose model served the job.
    pub cluster: usize,
    /// The tuning outcome.
    pub outcome: TuneOutcome,
    /// Operator names, aligned with the outcome's assignment.
    pub op_names: Vec<String>,
}

/// Lifecycle state of an admitted job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobState {
    /// Admitted, not yet drained onto the worker pool.
    Queued,
    /// Ran to completion.
    Done(JobResult),
    /// The tuning run failed (message preserved).
    Failed(String),
    /// The tuning run failed on *transient* backend faults that outlasted
    /// the retry budget: the job itself is fine, its backend is sick. A
    /// re-submit (or monitor-triggered re-tune) retries from scratch;
    /// meanwhile the job stays visible instead of masquerading as broken.
    Degraded(String),
    /// Cancelled before it ran.
    Cancelled,
}

impl JobState {
    /// Short state name for `status` lines.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
            JobState::Degraded(_) => "degraded",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// One admitted job.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// The submitted spec (re-tunes replace the multiplier in place).
    pub spec: JobSpec,
    /// Cluster assigned at admission ([`Pretrained::assign`]).
    pub cluster: usize,
    /// Current lifecycle state.
    pub state: JobState,
    /// Times the job has been automatically re-tuned (monitor-triggered
    /// [`JobManager::resubmit`]s).
    pub retunes: u32,
    /// What the job's retry loops absorbed or gave up on, accumulated
    /// over every run (initial tune plus re-tunes).
    pub retry: RetryStats,
}

/// A job as persisted in the store's ledger (`jobs.json`). Queued jobs
/// never appear: a snapshot drains first, so every persisted state is
/// terminal.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PersistedJob {
    /// The submitted spec.
    pub spec: JobSpec,
    /// Cluster assigned at admission.
    pub cluster: usize,
    /// Terminal state.
    pub state: JobState,
    /// Automatic re-tunes applied over the job's lifetime.
    pub retunes: u32,
    /// Accumulated retry counters over the job's lifetime.
    pub retry: RetryStats,
}

// Hand-written so ledgers written before re-tunes (no `retunes` field) or
// before the fault-tolerance layer (no `retry` field) still restore — a
// daemon upgrade must never strand an operator's store. Missing fields
// default to their zero values.
impl serde::Deserialize for PersistedJob {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(PersistedJob {
            spec: JobSpec::deserialize(v.field("spec")?)?,
            cluster: usize::deserialize(v.field("cluster")?)?,
            state: JobState::deserialize(v.field("state")?)?,
            retunes: match v.field("retunes") {
                Ok(f) => u32::deserialize(f)?,
                Err(_) => 0,
            },
            retry: match v.field("retry") {
                Ok(f) => RetryStats::deserialize(f)?,
                Err(_) => RetryStats::default(),
            },
        })
    }
}

/// What one run of a job produced: its new terminal state plus what the
/// retry loop absorbed along the way.
struct RunReport {
    state: JobState,
    retry: RetryStats,
}

/// Best-effort text of a panic payload (panics carry `&str` or `String`
/// in practice).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// The per-job seeded simulated cluster a spec runs on.
fn sim_for(spec: &JobSpec) -> SimCluster {
    match spec.engine {
        Engine::Flink => SimCluster::flink_defaults(spec.seed),
        Engine::Timely => SimCluster::timely_defaults(spec.seed),
    }
}

/// Run one job to completion — a pure function of `(pretrained, spec,
/// retry)`. `cluster` is the admission-time assignment (computed once in
/// [`JobManager::submit`]; `StreamTune` re-derives the same value
/// internally, so there is no second GED pass to pay here).
///
/// Never panics: a panicking backend (e.g. a [`ChaosBackend`] crash
/// epoch) is caught *here*, inside the worker closure, and becomes a
/// `Failed` state — it must not unwind through [`parallel_map`], which
/// would take the whole drain (and the server lock) down with it.
fn run_job(
    pretrained: &Pretrained,
    spec: &JobSpec,
    cluster: usize,
    retry: RetryPolicy,
    chaos: Option<u64>,
) -> RunReport {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_job_inner(pretrained, spec, cluster, retry, chaos)
    })) {
        Ok(report) => report,
        Err(payload) => RunReport {
            state: JobState::Failed(format!(
                "tuning run panicked: {}",
                panic_message(payload.as_ref())
            )),
            retry: RetryStats::default(),
        },
    }
}

fn run_job_inner(
    pretrained: &Pretrained,
    spec: &JobSpec,
    cluster: usize,
    retry: RetryPolicy,
    chaos: Option<u64>,
) -> RunReport {
    let failed = |message: String| RunReport {
        state: JobState::Failed(message),
        retry: RetryStats::default(),
    };
    let degraded = |message: String| RunReport {
        state: JobState::Degraded(message),
        retry: RetryStats::default(),
    };
    let Some(workload) = find_workload(&spec.query, spec.engine) else {
        return failed(format!("unknown workload `{}`", spec.query));
    };
    let flow = workload.at(spec.multiplier);
    let mut backend: Box<dyn ExecutionBackend> = match &spec.backend {
        // The daemon-wide chaos seed (a fault drill) wraps simulator-backed
        // jobs in transient fault injection; the storms sit inside the
        // default retry budget, so outcomes are unchanged.
        BackendSpec::Sim => match chaos {
            Some(seed) => Box::new(ChaosBackend::new(
                sim_for(spec),
                FaultPlan::transient(seed ^ spec.seed),
            )),
            None => Box::new(sim_for(spec)),
        },
        BackendSpec::Replay(path) => match streamtune_backend::ReplayBackend::from_file(path) {
            Ok(replay) => Box::new(replay),
            Err(e) => return failed(e.to_string()),
        },
        BackendSpec::Chaos(plan) => Box::new(ChaosBackend::new(sim_for(spec), *plan)),
        // A cluster that cannot be reached right now is sick, not wrong:
        // degrade so a re-submit retries once it is back.
        BackendSpec::Flink(url) => match FlinkBackend::connect(url) {
            Ok(backend) => Box::new(backend),
            Err(e) if e.is_transient() => return degraded(format!("flink backend: {e}")),
            Err(e) => return failed(format!("flink backend: {e}")),
        },
        // An ingested dump is a record of a deployment that already ran:
        // there is nothing to tune, so the job *admits* that deployment —
        // its recommendation is the recorded assignment — and `watch`
        // replays the dump's windows through the drift monitor.
        BackendSpec::Ingest(path) => {
            return match ingest_file(path, &IngestConfig::default()) {
                Ok(report) => ingested_report(&flow, cluster, &report),
                Err(e) if e.is_transient() => degraded(format!("ingest {path}: {e}")),
                Err(e) => failed(format!("ingest {path}: {e}")),
            };
        }
    };
    let mut tuner = StreamTune::new(pretrained, TuneConfig::default());
    let mut session = TuningSession::new(backend.as_mut(), &flow).with_retry(retry);
    let result = tuner.tune(&mut session);
    let retry = session.retry_stats();
    let state = match result {
        Ok(outcome) => {
            let op_names = outcome
                .final_assignment
                .iter()
                .map(|(op, _)| flow.op_name(op).to_string())
                .collect();
            JobState::Done(JobResult {
                cluster,
                outcome,
                op_names,
            })
        }
        // Transient faults that outlasted the retry budget mean the
        // *backend* is sick, not the job: degrade instead of failing so
        // operators (and the monitor) can tell the two apart.
        Err(TuneError::Backend(e)) if e.is_transient() => JobState::Degraded(e.to_string()),
        Err(e) => JobState::Failed(e.to_string()),
    };
    RunReport { state, retry }
}

/// The terminal state of an ingest-backed job: the dump's recorded
/// deployment, presented as a finished "tuning" with zero
/// reconfigurations. The workload named by the spec must match the dump's
/// shape — the monitor later polls the replayed windows through that
/// workload's flow, and a silent mismatch there would hand one job's
/// metrics to another's detector.
fn ingested_report(
    flow: &streamtune_dataflow::Dataflow,
    cluster: usize,
    report: &streamtune_connect::IngestReport,
) -> RunReport {
    let entries = &report.log.deploys;
    let last = entries.last().expect("ingest yields at least one window");
    if last.assignment.len() != flow.num_ops() {
        return RunReport {
            state: JobState::Failed(format!(
                "ingested dump has {} operators but the job's workload has {}",
                last.assignment.len(),
                flow.num_ops()
            )),
            retry: RetryStats::default(),
        };
    }
    let backpressure_events = entries
        .iter()
        .filter(|e| e.report.observation.job_backpressure)
        .count() as u32;
    let outcome = TuneOutcome {
        final_assignment: last.assignment.clone(),
        reconfigurations: 0,
        backpressure_events,
        elapsed_minutes: 0.0,
        iterations: entries.len() as u32,
        converged: true,
    };
    RunReport {
        state: JobState::Done(JobResult {
            cluster,
            outcome,
            op_names: report.operators.clone(),
        }),
        retry: RetryStats::default(),
    }
}

/// Admits named jobs against one shared pre-trained corpus and drains
/// them in deterministic parallel batches.
#[derive(Debug)]
pub struct JobManager {
    pretrained: Pretrained,
    parallelism: Parallelism,
    retry: RetryPolicy,
    chaos: Option<u64>,
    jobs: Vec<Job>,
    index: HashMap<String, usize>,
}

impl JobManager {
    /// A manager over `pretrained`, draining on `parallelism` workers.
    pub fn new(pretrained: Pretrained, parallelism: Parallelism) -> Self {
        JobManager {
            pretrained,
            parallelism,
            retry: RetryPolicy::default(),
            chaos: None,
            jobs: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Replace the retry policy every drained job runs under
    /// (builder-style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Run drains in fault-drill mode: every simulator-backed job is
    /// wrapped in deterministic transient fault injection seeded by
    /// `chaos ^ job seed` (builder-style; `None` disables).
    pub fn with_chaos(mut self, chaos: Option<u64>) -> Self {
        self.chaos = chaos;
        self
    }

    /// The shared pre-trained corpus.
    pub fn pretrained(&self) -> &Pretrained {
        &self.pretrained
    }

    /// All admitted jobs, in admission order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Look up a job by name.
    pub fn job(&self, name: &str) -> Option<&Job> {
        self.index.get(name).map(|&i| &self.jobs[i])
    }

    /// Number of jobs still queued.
    pub fn queued(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.state == JobState::Queued)
            .count()
    }

    /// Admit a job: validate its workload, assign it to its cluster, and
    /// queue it. Returns the assigned cluster.
    pub fn submit(&mut self, spec: JobSpec) -> Result<usize, ServeError> {
        if self.index.contains_key(&spec.name) {
            return Err(ServeError::DuplicateJob { name: spec.name });
        }
        let workload =
            find_workload(&spec.query, spec.engine).ok_or_else(|| ServeError::UnknownWorkload {
                query: spec.query.clone(),
            })?;
        let flow = workload.at(spec.multiplier);
        let (cluster, _) = self.pretrained.assign(&flow);
        self.index.insert(spec.name.clone(), self.jobs.len());
        self.jobs.push(Job {
            spec,
            cluster,
            state: JobState::Queued,
            retunes: 0,
            retry: RetryStats::default(),
        });
        Ok(cluster)
    }

    /// Re-tune an existing job in place: replace its spec (typically the
    /// same job at a shifted multiplier), re-assign its cluster, and queue
    /// it again. The next drain runs it exactly like a fresh submission —
    /// a pure function of `(pretrained, spec)` — so an automatic re-tune
    /// is bit-identical to manually re-submitting at the new rate.
    pub fn resubmit(&mut self, spec: JobSpec) -> Result<usize, ServeError> {
        let &i = self
            .index
            .get(&spec.name)
            .ok_or_else(|| ServeError::UnknownJob {
                name: spec.name.clone(),
            })?;
        let workload =
            find_workload(&spec.query, spec.engine).ok_or_else(|| ServeError::UnknownWorkload {
                query: spec.query.clone(),
            })?;
        let flow = workload.at(spec.multiplier);
        let (cluster, _) = self.pretrained.assign(&flow);
        let job = &mut self.jobs[i];
        job.spec = spec;
        job.cluster = cluster;
        job.state = JobState::Queued;
        job.retunes += 1;
        Ok(cluster)
    }

    /// Swap in a new pre-trained corpus (e.g. after an incremental warm
    /// re-pretrain on a grown corpus) and re-assign every job to its
    /// nearest cluster under the new model. Completed results are kept —
    /// they were computed under the model of their epoch — but their
    /// cluster labels now reflect the live model. Returns how many jobs
    /// changed cluster.
    pub fn swap_pretrained(&mut self, pretrained: Pretrained) -> usize {
        self.pretrained = pretrained;
        let mut changed = 0;
        for job in &mut self.jobs {
            let Some(workload) = find_workload(&job.spec.query, job.spec.engine) else {
                continue;
            };
            let flow = workload.at(job.spec.multiplier);
            let (cluster, _) = self.pretrained.assign(&flow);
            if cluster != job.cluster {
                job.cluster = cluster;
                changed += 1;
            }
        }
        changed
    }

    /// Ledger rotation for long-lived daemons: keep at most `cap` jobs in
    /// *terminal* states, dropping the oldest first (queued jobs are never
    /// touched). Dropped names become reusable. Returns how many jobs were
    /// dropped.
    pub fn compact(&mut self, cap: usize) -> usize {
        let terminal = self
            .jobs
            .iter()
            .filter(|j| j.state != JobState::Queued)
            .count();
        if terminal <= cap {
            return 0;
        }
        let mut to_drop = terminal - cap;
        let mut kept = Vec::with_capacity(self.jobs.len() - to_drop);
        for job in self.jobs.drain(..) {
            if to_drop > 0 && job.state != JobState::Queued {
                to_drop -= 1;
            } else {
                kept.push(job);
            }
        }
        self.jobs = kept;
        self.index = self
            .jobs
            .iter()
            .enumerate()
            .map(|(i, j)| (j.spec.name.clone(), i))
            .collect();
        terminal - cap
    }

    /// Cancel a still-queued job.
    pub fn cancel(&mut self, name: &str) -> Result<(), ServeError> {
        let &i = self.index.get(name).ok_or_else(|| ServeError::UnknownJob {
            name: name.to_string(),
        })?;
        match self.jobs[i].state {
            JobState::Queued => {
                self.jobs[i].state = JobState::Cancelled;
                Ok(())
            }
            ref other => Err(ServeError::NotQueued {
                name: name.to_string(),
                state: other.name().to_string(),
            }),
        }
    }

    /// Run every queued job on the worker pool. One batch, results
    /// stitched back in admission order; each job is a pure function of
    /// the shared corpus and its own spec, so any [`Parallelism`] and any
    /// prior submission interleaving yield identical per-job states.
    pub fn drain(&mut self) {
        let pending: Vec<(usize, JobSpec, usize)> = self
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.state == JobState::Queued)
            .map(|(i, j)| (i, j.spec.clone(), j.cluster))
            .collect();
        if pending.is_empty() {
            return;
        }
        let pretrained = &self.pretrained;
        let retry = self.retry;
        let chaos = self.chaos;
        let results = parallel_map(self.parallelism, &pending, |(_, spec, cluster)| {
            run_job(pretrained, spec, *cluster, retry, chaos)
        });
        for ((i, _, _), report) in pending.into_iter().zip(results) {
            self.jobs[i].state = report.state;
            self.jobs[i].retry.absorb(&report.retry);
        }
    }

    /// One `status` line per job, in admission order.
    pub fn status_lines(&self) -> Vec<JobStatusLine> {
        self.jobs
            .iter()
            .map(|j| JobStatusLine {
                name: j.spec.name.clone(),
                query: j.spec.query.clone(),
                state: j.state.name().to_string(),
                cluster: j.cluster,
                retunes: j.retunes,
                detail: match &j.state {
                    JobState::Failed(message) | JobState::Degraded(message) => {
                        Some(message.clone())
                    }
                    _ => None,
                },
            })
            .collect()
    }

    /// The ledger to persist: every job in a terminal state (callers
    /// drain first, so normally all of them).
    pub fn persistable(&self) -> Vec<PersistedJob> {
        self.jobs
            .iter()
            .filter(|j| j.state != JobState::Queued)
            .map(|j| PersistedJob {
                spec: j.spec.clone(),
                cluster: j.cluster,
                state: j.state.clone(),
                retunes: j.retunes,
                retry: j.retry,
            })
            .collect()
    }

    /// Re-admit a persisted ledger (server restart). Duplicate names in
    /// the ledger are rejected the same way `submit` rejects them.
    pub fn restore(&mut self, jobs: Vec<PersistedJob>) -> Result<(), ServeError> {
        for p in jobs {
            if self.index.contains_key(&p.spec.name) {
                return Err(ServeError::DuplicateJob { name: p.spec.name });
            }
            self.index.insert(p.spec.name.clone(), self.jobs.len());
            self.jobs.push(Job {
                spec: p.spec,
                cluster: p.cluster,
                state: p.state,
                retunes: p.retunes,
                retry: p.retry,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamtune_core::{PretrainConfig, Pretrainer};
    use streamtune_workloads::history::HistoryGenerator;

    fn small_pretrained(seed: u64) -> Pretrained {
        let cluster = SimCluster::flink_defaults(seed);
        let corpus = HistoryGenerator::new(seed).with_jobs(12).generate(&cluster);
        Pretrainer::new(PretrainConfig::fast()).run(&corpus)
    }

    fn spec(name: &str, query: &str, seed: u64) -> JobSpec {
        JobSpec {
            name: name.to_string(),
            query: query.to_string(),
            multiplier: 8.0,
            seed,
            engine: Engine::Flink,
            backend: BackendSpec::Sim,
        }
    }

    #[test]
    fn submit_validates_and_assigns_clusters() {
        let mut mgr = JobManager::new(small_pretrained(3), Parallelism::Serial);
        let cluster = mgr.submit(spec("a", "nexmark-q1", 1)).unwrap();
        assert!(cluster < mgr.pretrained().clusters.len());
        assert!(matches!(
            mgr.submit(spec("a", "nexmark-q2", 1)),
            Err(ServeError::DuplicateJob { .. })
        ));
        assert!(matches!(
            mgr.submit(spec("b", "no-such-query", 1)),
            Err(ServeError::UnknownWorkload { .. })
        ));
        assert_eq!(mgr.queued(), 1);
    }

    #[test]
    fn cancel_only_hits_queued_jobs() {
        let mut mgr = JobManager::new(small_pretrained(5), Parallelism::Serial);
        mgr.submit(spec("a", "nexmark-q1", 1)).unwrap();
        mgr.submit(spec("b", "nexmark-q2", 2)).unwrap();
        mgr.cancel("a").unwrap();
        assert!(matches!(mgr.cancel("a"), Err(ServeError::NotQueued { .. })));
        mgr.drain();
        assert!(matches!(mgr.cancel("b"), Err(ServeError::NotQueued { .. })));
        assert!(matches!(
            mgr.cancel("zz"),
            Err(ServeError::UnknownJob { .. })
        ));
        assert_eq!(mgr.job("a").unwrap().state, JobState::Cancelled);
        assert!(matches!(mgr.job("b").unwrap().state, JobState::Done(_)));
    }

    #[test]
    fn resubmit_requeues_in_place_and_matches_fresh_submission() {
        let pre = small_pretrained(9);
        let mut mgr = JobManager::new(pre.clone(), Parallelism::Serial);
        mgr.submit(spec("a", "nexmark-q1", 1)).unwrap();
        mgr.drain();
        let first = match &mgr.job("a").unwrap().state {
            JobState::Done(r) => r.clone(),
            other => panic!("expected Done, got {other:?}"),
        };

        // Re-tune at a shifted multiplier.
        let mut shifted = spec("a", "nexmark-q1", 1);
        shifted.multiplier = 12.0;
        mgr.resubmit(shifted.clone()).unwrap();
        assert_eq!(mgr.job("a").unwrap().state, JobState::Queued);
        assert_eq!(mgr.job("a").unwrap().retunes, 1);
        mgr.drain();
        let retuned = match &mgr.job("a").unwrap().state {
            JobState::Done(r) => r.clone(),
            other => panic!("expected Done, got {other:?}"),
        };
        assert_ne!(first.outcome, retuned.outcome, "the rate shift must matter");

        // Bit-identical to a manual fresh submission at the shifted rate.
        let mut manual = JobManager::new(pre, Parallelism::Serial);
        let mut fresh = shifted;
        fresh.name = "manual".to_string();
        manual.submit(fresh).unwrap();
        manual.drain();
        match &manual.job("manual").unwrap().state {
            JobState::Done(r) => assert_eq!(r.outcome, retuned.outcome),
            other => panic!("expected Done, got {other:?}"),
        }

        // Resubmitting an unknown name is an error.
        assert!(matches!(
            mgr.resubmit(spec("ghost", "nexmark-q1", 1)),
            Err(ServeError::UnknownJob { .. })
        ));
    }

    #[test]
    fn compact_drops_oldest_terminal_jobs_and_frees_names() {
        let mut mgr = JobManager::new(small_pretrained(11), Parallelism::Serial);
        for (i, q) in ["nexmark-q1", "nexmark-q2", "nexmark-q5"]
            .iter()
            .enumerate()
        {
            mgr.submit(spec(&format!("j{i}"), q, i as u64)).unwrap();
        }
        mgr.drain();
        mgr.submit(spec("queued", "nexmark-q1", 9)).unwrap();
        assert_eq!(mgr.compact(2), 1, "three terminal, cap two");
        assert!(mgr.job("j0").is_none(), "oldest terminal job dropped");
        assert!(mgr.job("j1").is_some());
        assert!(mgr.job("queued").is_some(), "queued jobs are untouched");
        assert_eq!(mgr.compact(2), 0, "already within cap");
        // The dropped name is reusable.
        mgr.submit(spec("j0", "nexmark-q2", 3)).unwrap();
        // The index stayed consistent through the rebuild.
        assert_eq!(mgr.job("j1").unwrap().spec.name, "j1");
    }

    #[test]
    fn pre_retune_ledgers_still_restore() {
        use serde::{Deserialize, Serialize, Value};
        let job = PersistedJob {
            spec: spec("old", "nexmark-q1", 1),
            cluster: 2,
            state: JobState::Cancelled,
            retunes: 3,
            retry: RetryStats {
                transient_faults: 2,
                retries: 2,
                ..RetryStats::default()
            },
        };
        // A ledger written by a build that predates re-tunes and retry
        // accounting has neither field; it must load with zero defaults,
        // not error.
        let Value::Object(fields) = job.serialize() else {
            panic!("jobs serialize to objects")
        };
        let legacy = Value::Object(
            fields
                .into_iter()
                .filter(|(k, _)| k != "retunes" && k != "retry")
                .collect(),
        );
        let restored = PersistedJob::deserialize(&legacy).expect("legacy ledger loads");
        assert_eq!(restored.retunes, 0);
        assert_eq!(restored.retry, RetryStats::default());
        assert_eq!(restored.spec, job.spec);
        assert_eq!(restored.state, job.state);
        // The current format round-trips exactly.
        let back = PersistedJob::deserialize(&job.serialize()).expect("current format loads");
        assert_eq!(back, job);
    }

    #[test]
    fn chaos_jobs_with_transient_faults_match_clean_runs_bitwise() {
        use streamtune_backend::FaultPlan;
        let pre = small_pretrained(13);
        let mut clean = JobManager::new(pre.clone(), Parallelism::Serial);
        clean.submit(spec("j", "nexmark-q2", 4)).unwrap();
        clean.drain();
        let clean_result = match &clean.job("j").unwrap().state {
            JobState::Done(r) => r.clone(),
            other => panic!("expected Done, got {other:?}"),
        };

        let mut chaotic = JobManager::new(pre, Parallelism::Serial);
        let mut chaos_spec = spec("j", "nexmark-q2", 4);
        // Near-certain per-call faults, but the burst cap (2) sits below
        // the default retry budget (4 attempts): every deploy reaches a
        // clean call, so the fault storm must be fully absorbed.
        let mut plan = FaultPlan::transient(23);
        plan.io_rate = 0.9;
        chaos_spec.backend = BackendSpec::Chaos(plan);
        chaotic.submit(chaos_spec).unwrap();
        chaotic.drain();
        let job = chaotic.job("j").unwrap();
        match &job.state {
            JobState::Done(r) => assert_eq!(
                r, &clean_result,
                "absorbed transient faults must not perturb the outcome"
            ),
            other => panic!("expected Done, got {other:?}"),
        }
        assert!(
            job.retry.transient_faults > 0,
            "the transient plan must have fired during the run"
        );
        assert_eq!(job.retry.exhausted, 0);
    }

    #[test]
    fn exhausted_transient_faults_degrade_not_fail() {
        use streamtune_backend::FaultPlan;
        let mut mgr = JobManager::new(small_pretrained(13), Parallelism::Serial)
            .with_retry(RetryPolicy::none());
        // Every call faults and the burst never closes: with retries
        // disabled the very first deploy surfaces a transient error.
        let mut plan = FaultPlan::quiet(1).with_max_burst(u32::MAX);
        plan.io_rate = 1.0;
        let mut sick = spec("sick", "nexmark-q1", 2);
        sick.backend = BackendSpec::Chaos(plan);
        mgr.submit(sick).unwrap();
        mgr.drain();
        let job = mgr.job("sick").unwrap();
        match &job.state {
            JobState::Degraded(message) => {
                assert!(message.contains("I/O"), "degraded detail names the fault")
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        assert_eq!(job.state.name(), "degraded");
        assert!(job.retry.exhausted > 0);
        // Degraded is terminal: status carries the detail, cancel refuses.
        let line = &mgr.status_lines()[0];
        assert_eq!(line.state, "degraded");
        assert!(line.detail.is_some());
        assert!(matches!(
            mgr.cancel("sick"),
            Err(ServeError::NotQueued { .. })
        ));
    }

    #[test]
    fn injected_crash_fails_the_job_not_the_drain() {
        use streamtune_backend::FaultPlan;
        let mut mgr = JobManager::new(small_pretrained(13), Parallelism::Fixed(2));
        // Crash epoch 1 fires on the first deploy of the tuning session
        // (the session advances its epoch to 1 before deploying).
        let mut crasher = spec("crasher", "nexmark-q1", 2);
        crasher.backend = BackendSpec::Chaos(FaultPlan::quiet(1).with_crash_at(1));
        mgr.submit(crasher).unwrap();
        mgr.submit(spec("bystander", "nexmark-q2", 3)).unwrap();
        mgr.drain();
        match &mgr.job("crasher").unwrap().state {
            JobState::Failed(message) => assert!(
                message.contains("panicked") && message.contains("injected crash"),
                "panic payload must reach the failure detail: {message}"
            ),
            other => panic!("expected Failed, got {other:?}"),
        }
        assert!(
            matches!(mgr.job("bystander").unwrap().state, JobState::Done(_)),
            "a crashing job must not take the batch down"
        );
    }

    #[test]
    fn swap_pretrained_reassigns_jobs() {
        let mut mgr = JobManager::new(small_pretrained(3), Parallelism::Serial);
        mgr.submit(spec("a", "nexmark-q1", 1)).unwrap();
        mgr.drain();
        let swapped = small_pretrained(4);
        let expected = {
            let w = find_workload("nexmark-q1", Engine::Flink).unwrap();
            swapped.assign(&w.at(8.0)).0
        };
        mgr.swap_pretrained(swapped);
        assert_eq!(mgr.job("a").unwrap().cluster, expected);
        assert!(matches!(mgr.job("a").unwrap().state, JobState::Done(_)));
    }

    #[test]
    fn drain_failures_are_recorded_not_fatal() {
        let mut mgr = JobManager::new(small_pretrained(7), Parallelism::Serial);
        mgr.submit(spec("good", "nexmark-q1", 1)).unwrap();
        // A replay job whose trace file does not exist fails cleanly.
        let mut bad = spec("bad", "nexmark-q2", 1);
        bad.backend = BackendSpec::Replay("/nonexistent/trace.json".to_string());
        mgr.submit(bad).unwrap();
        mgr.drain();
        assert!(matches!(mgr.job("good").unwrap().state, JobState::Done(_)));
        match &mgr.job("bad").unwrap().state {
            JobState::Failed(message) => assert!(message.contains("trace")),
            other => panic!("expected Failed, got {other:?}"),
        }
        // The ledger round-trips both terminal states.
        let mut fresh = JobManager::new(small_pretrained(7), Parallelism::Serial);
        fresh.restore(mgr.persistable()).unwrap();
        assert_eq!(fresh.status_lines(), mgr.status_lines());
    }
}
