//! The job manager: admission, deterministic batch execution, ledger.
//!
//! Jobs are *independent by construction*: every job owns its backend
//! (a per-job seeded `SimCluster` or a replayed trace) and its own
//! `StreamTune` fine-tuning state, while the admission-time [`Pretrained`]
//! corpus is shared read-only. Running a job is therefore a pure function
//! of `(pretrained, spec)`, which is what makes the worker-pool fan-out
//! deterministic: any thread count ([`Parallelism`]) and any submission
//! interleaving produce bit-identical per-job outcomes.
//!
//! Execution is batched, not streamed: `submit` only admits (and assigns
//! the job to its cluster); the first verb that needs results (`status`,
//! `recommend`, `snapshot`) drains every queued job in one deterministic
//! [`parallel_map`] batch. `cancel` removes a job that has not been
//! drained yet.

use crate::decision::{self, DecisionRecord};
use crate::error::ServeError;
use crate::journal::{journal_file_name, JournaledBackend};
use crate::protocol::{BackendSpec, JobSpec, JobStatusLine};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::PathBuf;
use streamtune_backend::{
    ChaosBackend, ExecutionBackend, FaultPlan, RetryPolicy, RetryStats, TraceEntry, TuneError,
    TuneOutcome, Tuner, TuningSession,
};
use streamtune_connect::{ingest_file, FlinkBackend, IngestConfig};
use streamtune_core::{Pretrained, StreamTune, TuneConfig};
use streamtune_ged::{parallel_map, GedCacheStats, Parallelism};
use streamtune_sim::SimCluster;
use streamtune_workloads::{find_workload, rates::Engine};

/// A finished job's tuning result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// Cluster whose model served the job.
    pub cluster: usize,
    /// The tuning outcome.
    pub outcome: TuneOutcome,
    /// Operator names, aligned with the outcome's assignment.
    pub op_names: Vec<String>,
}

/// Lifecycle state of an admitted job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobState {
    /// Admitted, not yet drained onto the worker pool.
    Queued,
    /// Ran to completion.
    Done(JobResult),
    /// The tuning run failed (message preserved).
    Failed(String),
    /// The tuning run failed on *transient* backend faults that outlasted
    /// the retry budget: the job itself is fine, its backend is sick. A
    /// re-submit (or monitor-triggered re-tune) retries from scratch;
    /// meanwhile the job stays visible instead of masquerading as broken.
    Degraded(String),
    /// Cancelled before it ran.
    Cancelled,
}

impl JobState {
    /// Short state name for `status` lines.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
            JobState::Degraded(_) => "degraded",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// One admitted job.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// The submitted spec (re-tunes replace the multiplier in place).
    pub spec: JobSpec,
    /// Cluster assigned at admission ([`Pretrained::assign`]).
    pub cluster: usize,
    /// Current lifecycle state.
    pub state: JobState,
    /// Times the job has been automatically re-tuned (monitor-triggered
    /// [`JobManager::resubmit`]s).
    pub retunes: u32,
    /// What the job's retry loops absorbed or gave up on, accumulated
    /// over every run (initial tune plus re-tunes).
    pub retry: RetryStats,
    /// Why the *next* run of the job will happen (`"submit"`, `"retune"`
    /// or `"resume"`) — copied into the run's [`DecisionRecord`]. Not
    /// persisted: terminal jobs do not run again.
    pub trigger: String,
}

/// A job as persisted in the store's ledger (`jobs.json`). Queued jobs
/// never appear: a snapshot drains first, so every persisted state is
/// terminal.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PersistedJob {
    /// The submitted spec.
    pub spec: JobSpec,
    /// Cluster assigned at admission.
    pub cluster: usize,
    /// Terminal state.
    pub state: JobState,
    /// Automatic re-tunes applied over the job's lifetime.
    pub retunes: u32,
    /// Accumulated retry counters over the job's lifetime.
    pub retry: RetryStats,
}

// Hand-written so ledgers written before re-tunes (no `retunes` field) or
// before the fault-tolerance layer (no `retry` field) still restore — a
// daemon upgrade must never strand an operator's store. Missing fields
// default to their zero values.
impl serde::Deserialize for PersistedJob {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(PersistedJob {
            spec: JobSpec::deserialize(v.field("spec")?)?,
            cluster: usize::deserialize(v.field("cluster")?)?,
            state: JobState::deserialize(v.field("state")?)?,
            retunes: match v.field("retunes") {
                Ok(f) => u32::deserialize(f)?,
                Err(_) => 0,
            },
            retry: match v.field("retry") {
                Ok(f) => RetryStats::deserialize(f)?,
                Err(_) => RetryStats::default(),
            },
        })
    }
}

/// What one run of a job produced: its new terminal state, what the
/// retry loop absorbed along the way, and (for completed tuning runs)
/// the decision audit record explaining the recommendation.
struct RunReport {
    state: JobState,
    retry: RetryStats,
    decision: Option<DecisionRecord>,
}

/// Audit inputs one run carries into its [`DecisionRecord`]: why the run
/// happened and which model generation is serving it.
struct AuditCtx {
    trigger: String,
    generation: u64,
}

/// The lowercase backend-family name stored in decision records.
fn backend_name(backend: &BackendSpec) -> &'static str {
    match backend {
        BackendSpec::Sim => "sim",
        BackendSpec::Replay(_) => "replay",
        BackendSpec::Chaos(_) => "chaos",
        BackendSpec::Flink(_) => "flink",
        BackendSpec::Ingest(_) => "ingest",
    }
}

/// Best-effort text of a panic payload (panics carry `&str` or `String`
/// in practice).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// Journal context one run carries: where to append, and the recorded
/// prefix (non-empty only on the first run after a crash-resume).
struct JournalCtx {
    path: PathBuf,
    prefix: Vec<TraceEntry>,
}

/// Whether a spec's backend is journal/resume-capable: deterministic
/// in-process backends only. Replay and ingest jobs re-run from their
/// own recordings; a live Flink tune cannot be replayed into the past.
fn journalable(spec: &JobSpec) -> bool {
    matches!(spec.backend, BackendSpec::Sim | BackendSpec::Chaos(_))
}

/// The per-job seeded simulated cluster a spec runs on.
fn sim_for(spec: &JobSpec) -> SimCluster {
    match spec.engine {
        Engine::Flink => SimCluster::flink_defaults(spec.seed),
        Engine::Timely => SimCluster::timely_defaults(spec.seed),
    }
}

/// Run one job to completion — a pure function of `(pretrained, spec,
/// retry)`. `cluster` is the admission-time assignment (computed once in
/// [`JobManager::submit`]; `StreamTune` re-derives the same value
/// internally, so there is no second GED pass to pay here).
///
/// Never panics: a panicking backend (e.g. a [`ChaosBackend`] crash
/// epoch) is caught *here*, inside the worker closure, and becomes a
/// `Failed` state — it must not unwind through [`parallel_map`], which
/// would take the whole drain (and the server lock) down with it.
fn run_job(
    pretrained: &Pretrained,
    spec: &JobSpec,
    cluster: usize,
    retry: RetryPolicy,
    chaos: Option<u64>,
    journal: Option<JournalCtx>,
    audit: AuditCtx,
) -> RunReport {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_job_inner(pretrained, spec, cluster, retry, chaos, journal, audit)
    })) {
        Ok(report) => report,
        Err(payload) => RunReport {
            state: JobState::Failed(format!(
                "tuning run panicked: {}",
                panic_message(payload.as_ref())
            )),
            retry: RetryStats::default(),
            decision: None,
        },
    }
}

fn run_job_inner(
    pretrained: &Pretrained,
    spec: &JobSpec,
    cluster: usize,
    retry: RetryPolicy,
    chaos: Option<u64>,
    journal: Option<JournalCtx>,
    audit: AuditCtx,
) -> RunReport {
    let failed = |message: String| RunReport {
        state: JobState::Failed(message),
        retry: RetryStats::default(),
        decision: None,
    };
    let degraded = |message: String| RunReport {
        state: JobState::Degraded(message),
        retry: RetryStats::default(),
        decision: None,
    };
    let Some(workload) = find_workload(&spec.query, spec.engine) else {
        return failed(format!("unknown workload `{}`", spec.query));
    };
    let flow = workload.at(spec.multiplier);
    let mut backend: Box<dyn ExecutionBackend> = match &spec.backend {
        // The daemon-wide chaos seed (a fault drill) wraps simulator-backed
        // jobs in transient fault injection; the storms sit inside the
        // default retry budget, so outcomes are unchanged.
        BackendSpec::Sim => match chaos {
            Some(seed) => Box::new(ChaosBackend::new(
                sim_for(spec),
                FaultPlan::transient(seed ^ spec.seed),
            )),
            None => Box::new(sim_for(spec)),
        },
        BackendSpec::Replay(path) => match streamtune_backend::ReplayBackend::from_file(path) {
            Ok(replay) => Box::new(replay),
            Err(e) => return failed(e.to_string()),
        },
        BackendSpec::Chaos(plan) => Box::new(ChaosBackend::new(sim_for(spec), *plan)),
        // A cluster that cannot be reached right now is sick, not wrong:
        // degrade so a re-submit retries once it is back.
        BackendSpec::Flink(url) => match FlinkBackend::connect(url) {
            Ok(backend) => Box::new(backend),
            Err(e) if e.is_transient() => return degraded(format!("flink backend: {e}")),
            Err(e) => return failed(format!("flink backend: {e}")),
        },
        // An ingested dump is a record of a deployment that already ran:
        // there is nothing to tune, so the job *admits* that deployment —
        // its recommendation is the recorded assignment — and `watch`
        // replays the dump's windows through the drift monitor.
        BackendSpec::Ingest(path) => {
            return match ingest_file(path, &IngestConfig::default()) {
                Ok(report) => ingested_report(&flow, cluster, &report),
                Err(e) if e.is_transient() => degraded(format!("ingest {path}: {e}")),
                Err(e) => failed(format!("ingest {path}: {e}")),
            };
        }
    };
    let mut tuner = StreamTune::new(pretrained, TuneConfig::default());
    // The journal layer sits between the session and the (possibly
    // chaos-wrapped) backend: journaled epochs replay without touching
    // the live stack; fresh epochs are recorded and fsync'd before the
    // tuner acts on them, so a `kill -9` resumes from the last epoch.
    let mut journaled;
    let backend: &mut dyn ExecutionBackend = match &journal {
        Some(ctx) if journalable(spec) => {
            journaled = JournaledBackend::resume(
                backend.as_mut(),
                spec,
                ctx.path.clone(),
                ctx.prefix.clone(),
            );
            &mut journaled
        }
        _ => backend.as_mut(),
    };
    let mut session = TuningSession::new(backend, &flow).with_retry(retry);
    let result = {
        let _span = streamtune_telemetry::child_span("serve.job", "tune");
        tuner.tune(&mut session)
    };
    let retry = session.retry_stats();
    // Every total the session deployed, in order; all but the last are
    // the decision record's rejected candidates.
    let trace_totals = session.parallelism_trace().to_vec();
    let (state, decision) = match result {
        Ok(outcome) => {
            let op_names: Vec<String> = outcome
                .final_assignment
                .iter()
                .map(|(op, _)| flow.op_name(op).to_string())
                .collect();
            let view = streamtune_ged::GraphView::of(&flow);
            let decision = DecisionRecord {
                job: spec.name.clone(),
                trigger: audit.trigger,
                query: spec.query.clone(),
                multiplier: spec.multiplier,
                seed: spec.seed,
                backend: backend_name(&spec.backend).to_string(),
                dag_ops: flow.num_ops() as u64,
                dag_edges: view.edges.len() as u64,
                dag_signature: decision::signature_hash(&streamtune_dataflow::GraphSignature::of(
                    &flow,
                )),
                cluster: cluster as u64,
                clusters: pretrained.clusters.len() as u64,
                global_fallback: pretrained.global_fallback,
                center_distances: pretrained
                    .center_distances(&flow)
                    .into_iter()
                    .map(|d| d as u64)
                    .collect(),
                model_generation: audit.generation,
                // Cache provenance is daemon-wide, not per-run: the server
                // fills these in post-drain via `annotate_cache`.
                cache_lookups: 0,
                cache_searches: 0,
                cache_filtered: 0,
                cache_structures: 0,
                op_names: op_names.clone(),
                degrees: outcome.final_assignment.as_slice().to_vec(),
                total: outcome.final_assignment.total(),
                rejected: trace_totals[..trace_totals.len().saturating_sub(1)].to_vec(),
                iterations: outcome.iterations,
                converged: outcome.converged,
                retries: retry.retries,
                ts_millis: decision::unix_millis(),
            };
            (
                JobState::Done(JobResult {
                    cluster,
                    outcome,
                    op_names,
                }),
                Some(decision),
            )
        }
        // Transient faults that outlasted the retry budget mean the
        // *backend* is sick, not the job: degrade instead of failing so
        // operators (and the monitor) can tell the two apart.
        Err(TuneError::Backend(e)) if e.is_transient() => (JobState::Degraded(e.to_string()), None),
        Err(e) => (JobState::Failed(e.to_string()), None),
    };
    RunReport {
        state,
        retry,
        decision,
    }
}

/// The terminal state of an ingest-backed job: the dump's recorded
/// deployment, presented as a finished "tuning" with zero
/// reconfigurations. The workload named by the spec must match the dump's
/// shape — the monitor later polls the replayed windows through that
/// workload's flow, and a silent mismatch there would hand one job's
/// metrics to another's detector.
fn ingested_report(
    flow: &streamtune_dataflow::Dataflow,
    cluster: usize,
    report: &streamtune_connect::IngestReport,
) -> RunReport {
    let entries = &report.log.deploys;
    let last = entries.last().expect("ingest yields at least one window");
    if last.assignment.len() != flow.num_ops() {
        return RunReport {
            state: JobState::Failed(format!(
                "ingested dump has {} operators but the job's workload has {}",
                last.assignment.len(),
                flow.num_ops()
            )),
            retry: RetryStats::default(),
            decision: None,
        };
    }
    let backpressure_events = entries
        .iter()
        .filter(|e| e.report.observation.job_backpressure)
        .count() as u32;
    let outcome = TuneOutcome {
        final_assignment: last.assignment.clone(),
        reconfigurations: 0,
        backpressure_events,
        elapsed_minutes: 0.0,
        iterations: entries.len() as u32,
        converged: true,
    };
    RunReport {
        state: JobState::Done(JobResult {
            cluster,
            outcome,
            op_names: report.operators.clone(),
        }),
        retry: RetryStats::default(),
        // Ingested deployments are admissions of a past run, not tuning
        // decisions the daemon made — there is nothing to explain.
        decision: None,
    }
}

/// Admits named jobs against one shared pre-trained corpus and drains
/// them in deterministic parallel batches.
#[derive(Debug)]
pub struct JobManager {
    pretrained: Pretrained,
    parallelism: Parallelism,
    retry: RetryPolicy,
    chaos: Option<u64>,
    jobs: Vec<Job>,
    index: HashMap<String, usize>,
    /// Where per-job epoch journals live (`None` disables journaling —
    /// in-memory daemons and unit tests).
    journal_dir: Option<PathBuf>,
    /// Journaled prefixes recovered at bootstrap, consumed by the next
    /// drain of the matching job so it replays instead of re-tuning.
    resume: HashMap<String, Vec<TraceEntry>>,
    /// Model-store generation: 0 for the bootstrap model, bumped on every
    /// [`JobManager::swap_pretrained`]. Stamped into decision records so
    /// `explain` can tell which model served a recommendation.
    generation: u64,
    /// The decision audit trail, in completion order (restored records
    /// first, then one per completed run).
    decisions: Vec<DecisionRecord>,
    /// Records below this index already carry their GED-cache provenance
    /// ([`JobManager::annotate_cache`] high-water mark).
    annotated: usize,
}

impl JobManager {
    /// A manager over `pretrained`, draining on `parallelism` workers.
    pub fn new(pretrained: Pretrained, parallelism: Parallelism) -> Self {
        JobManager {
            pretrained,
            parallelism,
            retry: RetryPolicy::default(),
            chaos: None,
            jobs: Vec::new(),
            index: HashMap::new(),
            journal_dir: None,
            resume: HashMap::new(),
            generation: 0,
            decisions: Vec::new(),
            annotated: 0,
        }
    }

    /// Replace the retry policy every drained job runs under
    /// (builder-style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Run drains in fault-drill mode: every simulator-backed job is
    /// wrapped in deterministic transient fault injection seeded by
    /// `chaos ^ job seed` (builder-style; `None` disables).
    pub fn with_chaos(mut self, chaos: Option<u64>) -> Self {
        self.chaos = chaos;
        self
    }

    /// Enable epoch journaling under `dir` (builder-style). Journalable
    /// jobs drained afterwards append every observed epoch to a fsync'd
    /// per-job journal, and [`JobManager::recover_journals`] can re-admit
    /// jobs a dead process left mid-tune.
    pub fn with_journal_dir(mut self, dir: Option<PathBuf>) -> Self {
        self.journal_dir = dir;
        self
    }

    /// The journal file for `spec`, if journaling is enabled and the
    /// spec's backend supports resumption.
    fn journal_path(&self, spec: &JobSpec) -> Option<PathBuf> {
        match &self.journal_dir {
            Some(dir) if journalable(spec) => Some(dir.join(journal_file_name(&spec.name))),
            _ => None,
        }
    }

    /// Start (or restart) `spec`'s journal: a fresh header, no entries.
    /// Best-effort — a journal that cannot be written must never block
    /// admission; the job simply runs unjournaled.
    fn start_journal(&mut self, spec: &JobSpec) {
        self.resume.remove(&spec.name);
        if let Some(path) = self.journal_path(spec) {
            let _ = crate::journal::create_journal(&path, spec);
        }
    }

    /// The shared pre-trained corpus.
    pub fn pretrained(&self) -> &Pretrained {
        &self.pretrained
    }

    /// All admitted jobs, in admission order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Look up a job by name.
    pub fn job(&self, name: &str) -> Option<&Job> {
        self.index.get(name).map(|&i| &self.jobs[i])
    }

    /// Number of jobs still queued.
    pub fn queued(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.state == JobState::Queued)
            .count()
    }

    /// Admit a job: validate its workload, assign it to its cluster, and
    /// queue it. Returns the assigned cluster.
    pub fn submit(&mut self, spec: JobSpec) -> Result<usize, ServeError> {
        if self.index.contains_key(&spec.name) {
            return Err(ServeError::DuplicateJob { name: spec.name });
        }
        let workload =
            find_workload(&spec.query, spec.engine).ok_or_else(|| ServeError::UnknownWorkload {
                query: spec.query.clone(),
            })?;
        let flow = workload.at(spec.multiplier);
        let (cluster, _) = self.pretrained.assign(&flow);
        self.start_journal(&spec);
        self.index.insert(spec.name.clone(), self.jobs.len());
        self.jobs.push(Job {
            spec,
            cluster,
            state: JobState::Queued,
            retunes: 0,
            retry: RetryStats::default(),
            trigger: decision::trigger::SUBMIT.to_string(),
        });
        Ok(cluster)
    }

    /// Re-tune an existing job in place: replace its spec (typically the
    /// same job at a shifted multiplier), re-assign its cluster, and queue
    /// it again. The next drain runs it exactly like a fresh submission —
    /// a pure function of `(pretrained, spec)` — so an automatic re-tune
    /// is bit-identical to manually re-submitting at the new rate.
    pub fn resubmit(&mut self, spec: JobSpec) -> Result<usize, ServeError> {
        let &i = self
            .index
            .get(&spec.name)
            .ok_or_else(|| ServeError::UnknownJob {
                name: spec.name.clone(),
            })?;
        let workload =
            find_workload(&spec.query, spec.engine).ok_or_else(|| ServeError::UnknownWorkload {
                query: spec.query.clone(),
            })?;
        let flow = workload.at(spec.multiplier);
        let (cluster, _) = self.pretrained.assign(&flow);
        // A re-tune is a fresh run under a new spec: any journal (and any
        // recovered prefix) from the previous run is stale by definition.
        self.start_journal(&spec);
        let job = &mut self.jobs[i];
        job.spec = spec;
        job.cluster = cluster;
        job.state = JobState::Queued;
        job.retunes += 1;
        job.trigger = decision::trigger::RETUNE.to_string();
        Ok(cluster)
    }

    /// Swap in a new pre-trained corpus (e.g. after an incremental warm
    /// re-pretrain on a grown corpus) and re-assign every job to its
    /// nearest cluster under the new model. Completed results are kept —
    /// they were computed under the model of their epoch — but their
    /// cluster labels now reflect the live model. Returns how many jobs
    /// changed cluster.
    pub fn swap_pretrained(&mut self, pretrained: Pretrained) -> usize {
        self.pretrained = pretrained;
        self.generation += 1;
        let mut changed = 0;
        for job in &mut self.jobs {
            let Some(workload) = find_workload(&job.spec.query, job.spec.engine) else {
                continue;
            };
            let flow = workload.at(job.spec.multiplier);
            let (cluster, _) = self.pretrained.assign(&flow);
            if cluster != job.cluster {
                job.cluster = cluster;
                changed += 1;
            }
        }
        changed
    }

    /// Ledger rotation for long-lived daemons: keep at most `cap` jobs in
    /// *terminal* states, dropping the oldest first (queued jobs are never
    /// touched). Dropped names become reusable. Returns how many jobs were
    /// dropped.
    pub fn compact(&mut self, cap: usize) -> usize {
        // The audit trail rotates with the ledger: keep the newest `cap`
        // decision records.
        if self.decisions.len() > cap {
            let drop = self.decisions.len() - cap;
            self.decisions.drain(..drop);
            self.annotated = self.annotated.saturating_sub(drop);
        }
        let terminal = self
            .jobs
            .iter()
            .filter(|j| j.state != JobState::Queued)
            .count();
        if terminal <= cap {
            return 0;
        }
        let mut to_drop = terminal - cap;
        let mut kept = Vec::with_capacity(self.jobs.len() - to_drop);
        for job in self.jobs.drain(..) {
            if to_drop > 0 && job.state != JobState::Queued {
                to_drop -= 1;
            } else {
                kept.push(job);
            }
        }
        self.jobs = kept;
        self.index = self
            .jobs
            .iter()
            .enumerate()
            .map(|(i, j)| (j.spec.name.clone(), i))
            .collect();
        terminal - cap
    }

    /// Cancel a still-queued job.
    pub fn cancel(&mut self, name: &str) -> Result<(), ServeError> {
        let &i = self.index.get(name).ok_or_else(|| ServeError::UnknownJob {
            name: name.to_string(),
        })?;
        match self.jobs[i].state {
            JobState::Queued => {
                self.jobs[i].state = JobState::Cancelled;
                Ok(())
            }
            ref other => Err(ServeError::NotQueued {
                name: name.to_string(),
                state: other.name().to_string(),
            }),
        }
    }

    /// Run every queued job on the worker pool. One batch, results
    /// stitched back in admission order; each job is a pure function of
    /// the shared corpus and its own spec, so any [`Parallelism`] and any
    /// prior submission interleaving yield identical per-job states.
    pub fn drain(&mut self) {
        let queued: Vec<(usize, JobSpec, usize, String)> = self
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.state == JobState::Queued)
            .map(|(i, j)| (i, j.spec.clone(), j.cluster, j.trigger.clone()))
            .collect();
        if queued.is_empty() {
            return;
        }
        // Attach each job's journal context up front: the path (if
        // journaling is on) plus any crash-recovered prefix, consumed
        // exactly once. `JournalCtx` is not `Clone`, so the worker closure
        // takes it by interior move via a per-item `Option` slot.
        type Pending = (
            usize,
            JobSpec,
            usize,
            String,
            std::sync::Mutex<Option<JournalCtx>>,
        );
        let pending: Vec<Pending> = queued
            .into_iter()
            .map(|(i, spec, cluster, trigger)| {
                let ctx = self.journal_path(&spec).map(|path| JournalCtx {
                    path,
                    prefix: self.resume.remove(&spec.name).unwrap_or_default(),
                });
                (i, spec, cluster, trigger, std::sync::Mutex::new(ctx))
            })
            .collect();
        let pretrained = &self.pretrained;
        let retry = self.retry;
        let chaos = self.chaos;
        let generation = self.generation;
        // One span covers the whole batch; its context is re-attached
        // inside every worker so per-job spans nest under it even when
        // they run on pool threads.
        let mut drain_span = streamtune_telemetry::child_span("serve.job", "drain");
        drain_span.add_field("queued", pending.len());
        let drain_ctx = drain_span.ctx();
        let results = parallel_map(
            self.parallelism,
            &pending,
            |(_, spec, cluster, trigger, journal)| {
                let _attached = streamtune_telemetry::trace::attach(drain_ctx);
                let mut job_span =
                    streamtune_telemetry::child_span("serve.job", format!("run_job:{}", spec.name));
                job_span.add_field("query", &spec.query);
                let journal = journal.lock().map(|mut slot| slot.take()).unwrap_or(None);
                let audit = AuditCtx {
                    trigger: trigger.clone(),
                    generation,
                };
                run_job(pretrained, spec, *cluster, retry, chaos, journal, audit)
            },
        );
        for ((i, _, _, _, _), report) in pending.into_iter().zip(results) {
            self.jobs[i].state = report.state;
            self.jobs[i].retry.absorb(&report.retry);
            if let Some(decision) = report.decision {
                self.decisions.push(decision);
            }
        }
    }

    /// The decision audit trail, oldest first (restored records, then one
    /// per completed run).
    pub fn decisions(&self) -> &[DecisionRecord] {
        &self.decisions
    }

    /// The most recent decision recorded for `name`, if any run of that
    /// job ever completed.
    pub fn decision_for(&self, name: &str) -> Option<&DecisionRecord> {
        self.decisions.iter().rev().find(|d| d.job == name)
    }

    /// Prepend a persisted audit trail (server restart). Restored records
    /// already carry their cache provenance, so the annotation watermark
    /// skips them.
    pub fn restore_decisions(&mut self, decisions: Vec<DecisionRecord>) {
        self.decisions = decisions;
        self.annotated = self.decisions.len();
    }

    /// Fill the daemon-wide GED-cache provenance into every decision
    /// recorded since the last call. Run workers cannot see the server's
    /// cache (it lives outside the manager), so the server calls this
    /// right after each drain — the counters are the cache's state at
    /// decision-publication time.
    pub fn annotate_cache(&mut self, stats: GedCacheStats, structures: u64) {
        for d in &mut self.decisions[self.annotated..] {
            d.cache_lookups = stats.lookups;
            d.cache_searches = stats.searches;
            d.cache_filtered = stats.filtered;
            d.cache_structures = structures;
        }
        self.annotated = self.decisions.len();
    }

    /// One `status` line per job, in admission order.
    pub fn status_lines(&self) -> Vec<JobStatusLine> {
        self.jobs
            .iter()
            .map(|j| JobStatusLine {
                name: j.spec.name.clone(),
                query: j.spec.query.clone(),
                state: j.state.name().to_string(),
                cluster: j.cluster,
                retunes: j.retunes,
                detail: match &j.state {
                    JobState::Failed(message) | JobState::Degraded(message) => {
                        Some(message.clone())
                    }
                    _ => None,
                },
            })
            .collect()
    }

    /// The ledger to persist: every job in a terminal state (callers
    /// drain first, so normally all of them).
    pub fn persistable(&self) -> Vec<PersistedJob> {
        self.jobs
            .iter()
            .filter(|j| j.state != JobState::Queued)
            .map(|j| PersistedJob {
                spec: j.spec.clone(),
                cluster: j.cluster,
                state: j.state.clone(),
                retunes: j.retunes,
                retry: j.retry,
            })
            .collect()
    }

    /// Re-admit a persisted ledger (server restart). Duplicate names in
    /// the ledger are rejected the same way `submit` rejects them.
    pub fn restore(&mut self, jobs: Vec<PersistedJob>) -> Result<(), ServeError> {
        for p in jobs {
            if self.index.contains_key(&p.spec.name) {
                return Err(ServeError::DuplicateJob { name: p.spec.name });
            }
            self.index.insert(p.spec.name.clone(), self.jobs.len());
            self.jobs.push(Job {
                spec: p.spec,
                cluster: p.cluster,
                state: p.state,
                retunes: p.retunes,
                retry: p.retry,
                // Restored jobs are terminal and never run again; if one
                // is later re-tuned, `resubmit` overwrites this.
                trigger: decision::trigger::SUBMIT.to_string(),
            });
        }
        Ok(())
    }

    /// Scan the journal directory for epoch journals a dead process left
    /// behind and decide, per journal, whether it is resumable work or a
    /// leftover:
    ///
    /// * journal spec matches a *terminal* ledger entry → the result the
    ///   journal was building already landed in `jobs.json`; delete it;
    /// * journal spec matches a queued job → attach the prefix so the
    ///   next drain replays instead of re-tuning;
    /// * job unknown, or its ledger spec differs → the process died
    ///   between admission (or re-submit) and snapshot: re-admit under
    ///   the journaled spec with the prefix attached;
    /// * unreadable or corrupt journal → delete; nothing resumable.
    ///
    /// Deterministic: journals are processed in sorted file-name order.
    /// Returns how many jobs were queued for resumption.
    pub fn recover_journals(&mut self) -> usize {
        let Some(dir) = self.journal_dir.clone() else {
            return 0;
        };
        let Ok(entries) = std::fs::read_dir(&dir) else {
            return 0;
        };
        let mut paths: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.extension()
                    .is_some_and(|e| e == crate::journal::JOURNAL_EXT)
            })
            .collect();
        paths.sort();
        let mut resumed = 0;
        for path in paths {
            let Ok(Some(loaded)) = crate::journal::load_journal(&path) else {
                let _ = std::fs::remove_file(&path);
                continue;
            };
            match self.index.get(&loaded.spec.name).copied() {
                Some(i) if self.jobs[i].spec == loaded.spec => {
                    if self.jobs[i].state == JobState::Queued {
                        self.resume.insert(loaded.spec.name.clone(), loaded.entries);
                        resumed += 1;
                    } else {
                        // The run this journal recorded finished and its
                        // result is in the ledger; the journal is stale.
                        let _ = std::fs::remove_file(&path);
                    }
                }
                at => {
                    // The ledger never saw this (version of the) job: the
                    // process died after admitting it but before any
                    // snapshot. Re-admit under the journaled spec.
                    if self.readmit(loaded.spec.clone(), at).is_ok() {
                        self.resume.insert(loaded.spec.name, loaded.entries);
                        resumed += 1;
                    } else {
                        let _ = std::fs::remove_file(&path);
                    }
                }
            }
        }
        resumed
    }

    /// Queue `spec` without touching its journal (recovery path): a fresh
    /// admission when `at` is `None`, an in-place spec replacement (the
    /// interrupted run was a re-submit) otherwise.
    fn readmit(&mut self, spec: JobSpec, at: Option<usize>) -> Result<(), ServeError> {
        let workload =
            find_workload(&spec.query, spec.engine).ok_or_else(|| ServeError::UnknownWorkload {
                query: spec.query.clone(),
            })?;
        let flow = workload.at(spec.multiplier);
        let (cluster, _) = self.pretrained.assign(&flow);
        match at {
            Some(i) => {
                let job = &mut self.jobs[i];
                job.spec = spec;
                job.cluster = cluster;
                job.state = JobState::Queued;
                job.retunes += 1;
                job.trigger = decision::trigger::RESUME.to_string();
            }
            None => {
                self.index.insert(spec.name.clone(), self.jobs.len());
                self.jobs.push(Job {
                    spec,
                    cluster,
                    state: JobState::Queued,
                    retunes: 0,
                    retry: RetryStats::default(),
                    trigger: decision::trigger::RESUME.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Delete journals that no longer back a queued job. Called after a
    /// snapshot persists the ledger — at that point every terminal job's
    /// result lives in `jobs.json` and its journal is dead weight.
    /// Best-effort: a sweep that cannot delete changes nothing.
    pub fn sweep_journals(&self) {
        let Some(dir) = &self.journal_dir else {
            return;
        };
        let live: std::collections::HashSet<String> = self
            .jobs
            .iter()
            .filter(|j| j.state == JobState::Queued && journalable(&j.spec))
            .map(|j| journal_file_name(&j.spec.name))
            .collect();
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let keep = path
                .extension()
                .is_none_or(|e| e != crate::journal::JOURNAL_EXT)
                || path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| live.contains(n));
            if !keep {
                let _ = std::fs::remove_file(&path);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamtune_core::{PretrainConfig, Pretrainer};
    use streamtune_workloads::history::HistoryGenerator;

    fn small_pretrained(seed: u64) -> Pretrained {
        let cluster = SimCluster::flink_defaults(seed);
        let corpus = HistoryGenerator::new(seed).with_jobs(12).generate(&cluster);
        Pretrainer::new(PretrainConfig::fast()).run(&corpus)
    }

    fn spec(name: &str, query: &str, seed: u64) -> JobSpec {
        JobSpec {
            name: name.to_string(),
            query: query.to_string(),
            multiplier: 8.0,
            seed,
            engine: Engine::Flink,
            backend: BackendSpec::Sim,
        }
    }

    #[test]
    fn submit_validates_and_assigns_clusters() {
        let mut mgr = JobManager::new(small_pretrained(3), Parallelism::Serial);
        let cluster = mgr.submit(spec("a", "nexmark-q1", 1)).unwrap();
        assert!(cluster < mgr.pretrained().clusters.len());
        assert!(matches!(
            mgr.submit(spec("a", "nexmark-q2", 1)),
            Err(ServeError::DuplicateJob { .. })
        ));
        assert!(matches!(
            mgr.submit(spec("b", "no-such-query", 1)),
            Err(ServeError::UnknownWorkload { .. })
        ));
        assert_eq!(mgr.queued(), 1);
    }

    #[test]
    fn cancel_only_hits_queued_jobs() {
        let mut mgr = JobManager::new(small_pretrained(5), Parallelism::Serial);
        mgr.submit(spec("a", "nexmark-q1", 1)).unwrap();
        mgr.submit(spec("b", "nexmark-q2", 2)).unwrap();
        mgr.cancel("a").unwrap();
        assert!(matches!(mgr.cancel("a"), Err(ServeError::NotQueued { .. })));
        mgr.drain();
        assert!(matches!(mgr.cancel("b"), Err(ServeError::NotQueued { .. })));
        assert!(matches!(
            mgr.cancel("zz"),
            Err(ServeError::UnknownJob { .. })
        ));
        assert_eq!(mgr.job("a").unwrap().state, JobState::Cancelled);
        assert!(matches!(mgr.job("b").unwrap().state, JobState::Done(_)));
    }

    #[test]
    fn resubmit_requeues_in_place_and_matches_fresh_submission() {
        let pre = small_pretrained(9);
        let mut mgr = JobManager::new(pre.clone(), Parallelism::Serial);
        mgr.submit(spec("a", "nexmark-q1", 1)).unwrap();
        mgr.drain();
        let first = match &mgr.job("a").unwrap().state {
            JobState::Done(r) => r.clone(),
            other => panic!("expected Done, got {other:?}"),
        };

        // Re-tune at a shifted multiplier.
        let mut shifted = spec("a", "nexmark-q1", 1);
        shifted.multiplier = 12.0;
        mgr.resubmit(shifted.clone()).unwrap();
        assert_eq!(mgr.job("a").unwrap().state, JobState::Queued);
        assert_eq!(mgr.job("a").unwrap().retunes, 1);
        mgr.drain();
        let retuned = match &mgr.job("a").unwrap().state {
            JobState::Done(r) => r.clone(),
            other => panic!("expected Done, got {other:?}"),
        };
        assert_ne!(first.outcome, retuned.outcome, "the rate shift must matter");

        // Bit-identical to a manual fresh submission at the shifted rate.
        let mut manual = JobManager::new(pre, Parallelism::Serial);
        let mut fresh = shifted;
        fresh.name = "manual".to_string();
        manual.submit(fresh).unwrap();
        manual.drain();
        match &manual.job("manual").unwrap().state {
            JobState::Done(r) => assert_eq!(r.outcome, retuned.outcome),
            other => panic!("expected Done, got {other:?}"),
        }

        // Resubmitting an unknown name is an error.
        assert!(matches!(
            mgr.resubmit(spec("ghost", "nexmark-q1", 1)),
            Err(ServeError::UnknownJob { .. })
        ));
    }

    #[test]
    fn compact_drops_oldest_terminal_jobs_and_frees_names() {
        let mut mgr = JobManager::new(small_pretrained(11), Parallelism::Serial);
        for (i, q) in ["nexmark-q1", "nexmark-q2", "nexmark-q5"]
            .iter()
            .enumerate()
        {
            mgr.submit(spec(&format!("j{i}"), q, i as u64)).unwrap();
        }
        mgr.drain();
        mgr.submit(spec("queued", "nexmark-q1", 9)).unwrap();
        assert_eq!(mgr.compact(2), 1, "three terminal, cap two");
        assert!(mgr.job("j0").is_none(), "oldest terminal job dropped");
        assert!(mgr.job("j1").is_some());
        assert!(mgr.job("queued").is_some(), "queued jobs are untouched");
        assert_eq!(mgr.compact(2), 0, "already within cap");
        // The dropped name is reusable.
        mgr.submit(spec("j0", "nexmark-q2", 3)).unwrap();
        // The index stayed consistent through the rebuild.
        assert_eq!(mgr.job("j1").unwrap().spec.name, "j1");
    }

    #[test]
    fn pre_retune_ledgers_still_restore() {
        use serde::{Deserialize, Serialize, Value};
        let job = PersistedJob {
            spec: spec("old", "nexmark-q1", 1),
            cluster: 2,
            state: JobState::Cancelled,
            retunes: 3,
            retry: RetryStats {
                transient_faults: 2,
                retries: 2,
                ..RetryStats::default()
            },
        };
        // A ledger written by a build that predates re-tunes and retry
        // accounting has neither field; it must load with zero defaults,
        // not error.
        let Value::Object(fields) = job.serialize() else {
            panic!("jobs serialize to objects")
        };
        let legacy = Value::Object(
            fields
                .into_iter()
                .filter(|(k, _)| k != "retunes" && k != "retry")
                .collect(),
        );
        let restored = PersistedJob::deserialize(&legacy).expect("legacy ledger loads");
        assert_eq!(restored.retunes, 0);
        assert_eq!(restored.retry, RetryStats::default());
        assert_eq!(restored.spec, job.spec);
        assert_eq!(restored.state, job.state);
        // The current format round-trips exactly.
        let back = PersistedJob::deserialize(&job.serialize()).expect("current format loads");
        assert_eq!(back, job);
    }

    #[test]
    fn chaos_jobs_with_transient_faults_match_clean_runs_bitwise() {
        use streamtune_backend::FaultPlan;
        let pre = small_pretrained(13);
        let mut clean = JobManager::new(pre.clone(), Parallelism::Serial);
        clean.submit(spec("j", "nexmark-q2", 4)).unwrap();
        clean.drain();
        let clean_result = match &clean.job("j").unwrap().state {
            JobState::Done(r) => r.clone(),
            other => panic!("expected Done, got {other:?}"),
        };

        let mut chaotic = JobManager::new(pre, Parallelism::Serial);
        let mut chaos_spec = spec("j", "nexmark-q2", 4);
        // Near-certain per-call faults, but the burst cap (2) sits below
        // the default retry budget (4 attempts): every deploy reaches a
        // clean call, so the fault storm must be fully absorbed.
        let mut plan = FaultPlan::transient(23);
        plan.io_rate = 0.9;
        chaos_spec.backend = BackendSpec::Chaos(plan);
        chaotic.submit(chaos_spec).unwrap();
        chaotic.drain();
        let job = chaotic.job("j").unwrap();
        match &job.state {
            JobState::Done(r) => assert_eq!(
                r, &clean_result,
                "absorbed transient faults must not perturb the outcome"
            ),
            other => panic!("expected Done, got {other:?}"),
        }
        assert!(
            job.retry.transient_faults > 0,
            "the transient plan must have fired during the run"
        );
        assert_eq!(job.retry.exhausted, 0);
    }

    #[test]
    fn exhausted_transient_faults_degrade_not_fail() {
        use streamtune_backend::FaultPlan;
        let mut mgr = JobManager::new(small_pretrained(13), Parallelism::Serial)
            .with_retry(RetryPolicy::none());
        // Every call faults and the burst never closes: with retries
        // disabled the very first deploy surfaces a transient error.
        let mut plan = FaultPlan::quiet(1).with_max_burst(u32::MAX);
        plan.io_rate = 1.0;
        let mut sick = spec("sick", "nexmark-q1", 2);
        sick.backend = BackendSpec::Chaos(plan);
        mgr.submit(sick).unwrap();
        mgr.drain();
        let job = mgr.job("sick").unwrap();
        match &job.state {
            JobState::Degraded(message) => {
                assert!(message.contains("I/O"), "degraded detail names the fault")
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        assert_eq!(job.state.name(), "degraded");
        assert!(job.retry.exhausted > 0);
        // Degraded is terminal: status carries the detail, cancel refuses.
        let line = &mgr.status_lines()[0];
        assert_eq!(line.state, "degraded");
        assert!(line.detail.is_some());
        assert!(matches!(
            mgr.cancel("sick"),
            Err(ServeError::NotQueued { .. })
        ));
    }

    #[test]
    fn injected_crash_fails_the_job_not_the_drain() {
        use streamtune_backend::FaultPlan;
        let mut mgr = JobManager::new(small_pretrained(13), Parallelism::Fixed(2));
        // Crash epoch 1 fires on the first deploy of the tuning session
        // (the session advances its epoch to 1 before deploying).
        let mut crasher = spec("crasher", "nexmark-q1", 2);
        crasher.backend = BackendSpec::Chaos(FaultPlan::quiet(1).with_crash_at(1));
        mgr.submit(crasher).unwrap();
        mgr.submit(spec("bystander", "nexmark-q2", 3)).unwrap();
        mgr.drain();
        match &mgr.job("crasher").unwrap().state {
            JobState::Failed(message) => assert!(
                message.contains("panicked") && message.contains("injected crash"),
                "panic payload must reach the failure detail: {message}"
            ),
            other => panic!("expected Failed, got {other:?}"),
        }
        assert!(
            matches!(mgr.job("bystander").unwrap().state, JobState::Done(_)),
            "a crashing job must not take the batch down"
        );
    }

    #[test]
    fn swap_pretrained_reassigns_jobs() {
        let mut mgr = JobManager::new(small_pretrained(3), Parallelism::Serial);
        mgr.submit(spec("a", "nexmark-q1", 1)).unwrap();
        mgr.drain();
        let swapped = small_pretrained(4);
        let expected = {
            let w = find_workload("nexmark-q1", Engine::Flink).unwrap();
            swapped.assign(&w.at(8.0)).0
        };
        mgr.swap_pretrained(swapped);
        assert_eq!(mgr.job("a").unwrap().cluster, expected);
        assert!(matches!(mgr.job("a").unwrap().state, JobState::Done(_)));
    }

    fn temp_journal_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "streamtune-job-journal-{}-{name}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn interrupted_jobs_resume_bit_identical_from_the_journal() {
        let pre = small_pretrained(17);
        let dir = temp_journal_dir("resume");

        // Uninterrupted run, fully journaled.
        let mut full =
            JobManager::new(pre.clone(), Parallelism::Serial).with_journal_dir(Some(dir.clone()));
        full.submit(spec("j", "nexmark-q2", 6)).unwrap();
        full.drain();
        let uninterrupted = match &full.job("j").unwrap().state {
            JobState::Done(r) => r.clone(),
            other => panic!("expected Done, got {other:?}"),
        };
        let path = dir.join(journal_file_name("j"));
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            lines.len() >= 3,
            "a multi-epoch tune journals several entries, got {}",
            lines.len()
        );

        // "Kill" the process after the first journaled epoch: keep header
        // plus one entry, exactly the bytes an interrupted run leaves.
        for cut in [1, lines.len() / 2, lines.len() - 1] {
            let mut torn = lines[..=cut].join("\n");
            torn.push('\n');
            std::fs::write(&path, &torn).unwrap();

            // A fresh manager (restart): nothing in the ledger, so the
            // journal alone must re-admit and resume the job.
            let mut resumed = JobManager::new(pre.clone(), Parallelism::Serial)
                .with_journal_dir(Some(dir.clone()));
            assert_eq!(resumed.recover_journals(), 1);
            assert_eq!(resumed.job("j").unwrap().state, JobState::Queued);
            resumed.drain();
            match &resumed.job("j").unwrap().state {
                JobState::Done(r) => assert_eq!(
                    r, &uninterrupted,
                    "resume from a {cut}-line prefix must be bit-identical"
                ),
                other => panic!("expected Done, got {other:?}"),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_journals_skips_terminal_jobs_and_readmits_changed_specs() {
        let pre = small_pretrained(19);
        let dir = temp_journal_dir("recover");
        let mut mgr =
            JobManager::new(pre.clone(), Parallelism::Serial).with_journal_dir(Some(dir.clone()));
        mgr.submit(spec("done", "nexmark-q1", 1)).unwrap();
        mgr.drain();
        let ledger = mgr.persistable();
        let done_journal = dir.join(journal_file_name("done"));
        assert!(done_journal.is_file(), "drained job left its journal");

        // A second journal whose spec the ledger never saw (the process
        // died after a re-submit at a shifted multiplier).
        let mut shifted = spec("done", "nexmark-q1", 1);
        shifted.multiplier = 12.0;
        let shifted_path = dir.join("shifted.journal");
        crate::journal::create_journal(&shifted_path, &shifted).unwrap();

        // And one unreadable journal.
        let junk = dir.join("junk.journal");
        std::fs::write(&junk, "garbage\n").unwrap();

        let mut restarted =
            JobManager::new(pre, Parallelism::Serial).with_journal_dir(Some(dir.clone()));
        restarted.restore(ledger).unwrap();
        // The shifted-spec journal wins: "done" re-queues under the new
        // spec; the junk journal is deleted; nothing else resumes.
        assert_eq!(restarted.recover_journals(), 1);
        let job = restarted.job("done").unwrap();
        assert_eq!(job.state, JobState::Queued);
        assert_eq!(job.spec.multiplier, 12.0);
        assert_eq!(job.retunes, 1, "an interrupted re-submit counts");
        assert!(!junk.is_file(), "unreadable journals are deleted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_journals_deletes_stale_terminal_journals() {
        let pre = small_pretrained(19);
        let dir = temp_journal_dir("stale");
        let mut mgr =
            JobManager::new(pre.clone(), Parallelism::Serial).with_journal_dir(Some(dir.clone()));
        mgr.submit(spec("done", "nexmark-q1", 1)).unwrap();
        mgr.drain();
        let ledger = mgr.persistable();
        let path = dir.join(journal_file_name("done"));
        assert!(path.is_file());

        // Restart with the *same* spec terminal in the ledger: the journal
        // protected a result that already landed, so it is swept.
        let mut restarted =
            JobManager::new(pre, Parallelism::Serial).with_journal_dir(Some(dir.clone()));
        restarted.restore(ledger).unwrap();
        assert_eq!(restarted.recover_journals(), 0);
        assert!(!path.is_file(), "stale journal deleted at recovery");
        assert!(matches!(
            restarted.job("done").unwrap().state,
            JobState::Done(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_journals_keeps_only_queued_jobs() {
        let dir = temp_journal_dir("sweep");
        let mut mgr = JobManager::new(small_pretrained(21), Parallelism::Serial)
            .with_journal_dir(Some(dir.clone()));
        mgr.submit(spec("ran", "nexmark-q1", 1)).unwrap();
        mgr.drain();
        mgr.submit(spec("pending", "nexmark-q2", 2)).unwrap();
        mgr.sweep_journals();
        assert!(
            !dir.join(journal_file_name("ran")).is_file(),
            "terminal job's journal swept"
        );
        assert!(
            dir.join(journal_file_name("pending")).is_file(),
            "queued job's journal kept"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drain_failures_are_recorded_not_fatal() {
        let mut mgr = JobManager::new(small_pretrained(7), Parallelism::Serial);
        mgr.submit(spec("good", "nexmark-q1", 1)).unwrap();
        // A replay job whose trace file does not exist fails cleanly.
        let mut bad = spec("bad", "nexmark-q2", 1);
        bad.backend = BackendSpec::Replay("/nonexistent/trace.json".to_string());
        mgr.submit(bad).unwrap();
        mgr.drain();
        assert!(matches!(mgr.job("good").unwrap().state, JobState::Done(_)));
        match &mgr.job("bad").unwrap().state {
            JobState::Failed(message) => assert!(message.contains("trace")),
            other => panic!("expected Failed, got {other:?}"),
        }
        // The ledger round-trips both terminal states.
        let mut fresh = JobManager::new(small_pretrained(7), Parallelism::Serial);
        fresh.restore(mgr.persistable()).unwrap();
        assert_eq!(fresh.status_lines(), mgr.status_lines());
    }
}
