//! The job manager: admission, deterministic batch execution, ledger.
//!
//! Jobs are *independent by construction*: every job owns its backend
//! (a per-job seeded `SimCluster` or a replayed trace) and its own
//! `StreamTune` fine-tuning state, while the admission-time [`Pretrained`]
//! corpus is shared read-only. Running a job is therefore a pure function
//! of `(pretrained, spec)`, which is what makes the worker-pool fan-out
//! deterministic: any thread count ([`Parallelism`]) and any submission
//! interleaving produce bit-identical per-job outcomes.
//!
//! Execution is batched, not streamed: `submit` only admits (and assigns
//! the job to its cluster); the first verb that needs results (`status`,
//! `recommend`, `snapshot`) drains every queued job in one deterministic
//! [`parallel_map`] batch. `cancel` removes a job that has not been
//! drained yet.

use crate::error::ServeError;
use crate::protocol::{BackendSpec, JobSpec, JobStatusLine};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use streamtune_backend::{ExecutionBackend, TuneOutcome, Tuner, TuningSession};
use streamtune_core::{Pretrained, StreamTune, TuneConfig};
use streamtune_ged::{parallel_map, Parallelism};
use streamtune_sim::SimCluster;
use streamtune_workloads::{find_workload, rates::Engine};

/// A finished job's tuning result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// Cluster whose model served the job.
    pub cluster: usize,
    /// The tuning outcome.
    pub outcome: TuneOutcome,
    /// Operator names, aligned with the outcome's assignment.
    pub op_names: Vec<String>,
}

/// Lifecycle state of an admitted job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobState {
    /// Admitted, not yet drained onto the worker pool.
    Queued,
    /// Ran to completion.
    Done(JobResult),
    /// The tuning run failed (message preserved).
    Failed(String),
    /// Cancelled before it ran.
    Cancelled,
}

impl JobState {
    /// Short state name for `status` lines.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// One admitted job.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// The submitted spec.
    pub spec: JobSpec,
    /// Cluster assigned at admission ([`Pretrained::assign`]).
    pub cluster: usize,
    /// Current lifecycle state.
    pub state: JobState,
}

/// A job as persisted in the store's ledger (`jobs.json`). Queued jobs
/// never appear: a snapshot drains first, so every persisted state is
/// terminal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersistedJob {
    /// The submitted spec.
    pub spec: JobSpec,
    /// Cluster assigned at admission.
    pub cluster: usize,
    /// Terminal state.
    pub state: JobState,
}

/// Run one job to completion — a pure function of `(pretrained, spec)`.
/// `cluster` is the admission-time assignment (computed once in
/// [`JobManager::submit`]; `StreamTune` re-derives the same value
/// internally, so there is no second GED pass to pay here).
fn run_job(pretrained: &Pretrained, spec: &JobSpec, cluster: usize) -> Result<JobResult, String> {
    let workload = find_workload(&spec.query, spec.engine)
        .ok_or_else(|| format!("unknown workload `{}`", spec.query))?;
    let flow = workload.at(spec.multiplier);
    let mut backend: Box<dyn ExecutionBackend> = match &spec.backend {
        BackendSpec::Sim => Box::new(match spec.engine {
            Engine::Flink => SimCluster::flink_defaults(spec.seed),
            Engine::Timely => SimCluster::timely_defaults(spec.seed),
        }),
        BackendSpec::Replay(path) => {
            Box::new(streamtune_backend::ReplayBackend::from_file(path).map_err(|e| e.to_string())?)
        }
    };
    let mut tuner = StreamTune::new(pretrained, TuneConfig::default());
    let mut session = TuningSession::new(backend.as_mut(), &flow);
    let outcome = tuner.tune(&mut session).map_err(|e| e.to_string())?;
    let op_names = outcome
        .final_assignment
        .iter()
        .map(|(op, _)| flow.op_name(op).to_string())
        .collect();
    Ok(JobResult {
        cluster,
        outcome,
        op_names,
    })
}

/// Admits named jobs against one shared pre-trained corpus and drains
/// them in deterministic parallel batches.
#[derive(Debug)]
pub struct JobManager {
    pretrained: Pretrained,
    parallelism: Parallelism,
    jobs: Vec<Job>,
    index: HashMap<String, usize>,
}

impl JobManager {
    /// A manager over `pretrained`, draining on `parallelism` workers.
    pub fn new(pretrained: Pretrained, parallelism: Parallelism) -> Self {
        JobManager {
            pretrained,
            parallelism,
            jobs: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// The shared pre-trained corpus.
    pub fn pretrained(&self) -> &Pretrained {
        &self.pretrained
    }

    /// All admitted jobs, in admission order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Look up a job by name.
    pub fn job(&self, name: &str) -> Option<&Job> {
        self.index.get(name).map(|&i| &self.jobs[i])
    }

    /// Number of jobs still queued.
    pub fn queued(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.state == JobState::Queued)
            .count()
    }

    /// Admit a job: validate its workload, assign it to its cluster, and
    /// queue it. Returns the assigned cluster.
    pub fn submit(&mut self, spec: JobSpec) -> Result<usize, ServeError> {
        if self.index.contains_key(&spec.name) {
            return Err(ServeError::DuplicateJob { name: spec.name });
        }
        let workload =
            find_workload(&spec.query, spec.engine).ok_or_else(|| ServeError::UnknownWorkload {
                query: spec.query.clone(),
            })?;
        let flow = workload.at(spec.multiplier);
        let (cluster, _) = self.pretrained.assign(&flow);
        self.index.insert(spec.name.clone(), self.jobs.len());
        self.jobs.push(Job {
            spec,
            cluster,
            state: JobState::Queued,
        });
        Ok(cluster)
    }

    /// Cancel a still-queued job.
    pub fn cancel(&mut self, name: &str) -> Result<(), ServeError> {
        let &i = self.index.get(name).ok_or_else(|| ServeError::UnknownJob {
            name: name.to_string(),
        })?;
        match self.jobs[i].state {
            JobState::Queued => {
                self.jobs[i].state = JobState::Cancelled;
                Ok(())
            }
            ref other => Err(ServeError::NotQueued {
                name: name.to_string(),
                state: other.name().to_string(),
            }),
        }
    }

    /// Run every queued job on the worker pool. One batch, results
    /// stitched back in admission order; each job is a pure function of
    /// the shared corpus and its own spec, so any [`Parallelism`] and any
    /// prior submission interleaving yield identical per-job states.
    pub fn drain(&mut self) {
        let pending: Vec<(usize, JobSpec, usize)> = self
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.state == JobState::Queued)
            .map(|(i, j)| (i, j.spec.clone(), j.cluster))
            .collect();
        if pending.is_empty() {
            return;
        }
        let pretrained = &self.pretrained;
        let results = parallel_map(self.parallelism, &pending, |(_, spec, cluster)| {
            run_job(pretrained, spec, *cluster)
        });
        for ((i, _, _), result) in pending.into_iter().zip(results) {
            self.jobs[i].state = match result {
                Ok(r) => JobState::Done(r),
                Err(message) => JobState::Failed(message),
            };
        }
    }

    /// One `status` line per job, in admission order.
    pub fn status_lines(&self) -> Vec<JobStatusLine> {
        self.jobs
            .iter()
            .map(|j| JobStatusLine {
                name: j.spec.name.clone(),
                query: j.spec.query.clone(),
                state: j.state.name().to_string(),
                cluster: j.cluster,
                detail: match &j.state {
                    JobState::Failed(message) => Some(message.clone()),
                    _ => None,
                },
            })
            .collect()
    }

    /// The ledger to persist: every job in a terminal state (callers
    /// drain first, so normally all of them).
    pub fn persistable(&self) -> Vec<PersistedJob> {
        self.jobs
            .iter()
            .filter(|j| j.state != JobState::Queued)
            .map(|j| PersistedJob {
                spec: j.spec.clone(),
                cluster: j.cluster,
                state: j.state.clone(),
            })
            .collect()
    }

    /// Re-admit a persisted ledger (server restart). Duplicate names in
    /// the ledger are rejected the same way `submit` rejects them.
    pub fn restore(&mut self, jobs: Vec<PersistedJob>) -> Result<(), ServeError> {
        for p in jobs {
            if self.index.contains_key(&p.spec.name) {
                return Err(ServeError::DuplicateJob { name: p.spec.name });
            }
            self.index.insert(p.spec.name.clone(), self.jobs.len());
            self.jobs.push(Job {
                spec: p.spec,
                cluster: p.cluster,
                state: p.state,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamtune_core::{PretrainConfig, Pretrainer};
    use streamtune_workloads::history::HistoryGenerator;

    fn small_pretrained(seed: u64) -> Pretrained {
        let cluster = SimCluster::flink_defaults(seed);
        let corpus = HistoryGenerator::new(seed).with_jobs(12).generate(&cluster);
        Pretrainer::new(PretrainConfig::fast()).run(&corpus)
    }

    fn spec(name: &str, query: &str, seed: u64) -> JobSpec {
        JobSpec {
            name: name.to_string(),
            query: query.to_string(),
            multiplier: 8.0,
            seed,
            engine: Engine::Flink,
            backend: BackendSpec::Sim,
        }
    }

    #[test]
    fn submit_validates_and_assigns_clusters() {
        let mut mgr = JobManager::new(small_pretrained(3), Parallelism::Serial);
        let cluster = mgr.submit(spec("a", "nexmark-q1", 1)).unwrap();
        assert!(cluster < mgr.pretrained().clusters.len());
        assert!(matches!(
            mgr.submit(spec("a", "nexmark-q2", 1)),
            Err(ServeError::DuplicateJob { .. })
        ));
        assert!(matches!(
            mgr.submit(spec("b", "no-such-query", 1)),
            Err(ServeError::UnknownWorkload { .. })
        ));
        assert_eq!(mgr.queued(), 1);
    }

    #[test]
    fn cancel_only_hits_queued_jobs() {
        let mut mgr = JobManager::new(small_pretrained(5), Parallelism::Serial);
        mgr.submit(spec("a", "nexmark-q1", 1)).unwrap();
        mgr.submit(spec("b", "nexmark-q2", 2)).unwrap();
        mgr.cancel("a").unwrap();
        assert!(matches!(mgr.cancel("a"), Err(ServeError::NotQueued { .. })));
        mgr.drain();
        assert!(matches!(mgr.cancel("b"), Err(ServeError::NotQueued { .. })));
        assert!(matches!(
            mgr.cancel("zz"),
            Err(ServeError::UnknownJob { .. })
        ));
        assert_eq!(mgr.job("a").unwrap().state, JobState::Cancelled);
        assert!(matches!(mgr.job("b").unwrap().state, JobState::Done(_)));
    }

    #[test]
    fn drain_failures_are_recorded_not_fatal() {
        let mut mgr = JobManager::new(small_pretrained(7), Parallelism::Serial);
        mgr.submit(spec("good", "nexmark-q1", 1)).unwrap();
        // A replay job whose trace file does not exist fails cleanly.
        let mut bad = spec("bad", "nexmark-q2", 1);
        bad.backend = BackendSpec::Replay("/nonexistent/trace.json".to_string());
        mgr.submit(bad).unwrap();
        mgr.drain();
        assert!(matches!(mgr.job("good").unwrap().state, JobState::Done(_)));
        match &mgr.job("bad").unwrap().state {
            JobState::Failed(message) => assert!(message.contains("trace")),
            other => panic!("expected Failed, got {other:?}"),
        }
        // The ledger round-trips both terminal states.
        let mut fresh = JobManager::new(small_pretrained(7), Parallelism::Serial);
        fresh.restore(mgr.persistable()).unwrap();
        assert_eq!(fresh.status_lines(), mgr.status_lines());
    }
}
