//! The line-delimited JSON control protocol.
//!
//! One request per line in, one response per line out — over stdin/stdout
//! or a TCP connection, the framing is identical. Verbs are lowercase on
//! the wire (the `Serialize`/`Deserialize` impls are written by hand so
//! the protocol, not Rust naming, owns the encoding):
//!
//! | request | wire form |
//! |---|---|
//! | submit | `{"submit": {"name": "j1", "query": "nexmark-q5", "multiplier": 10.0, "seed": 42, "engine": "flink", "backend": "sim"}}` |
//! | status | `"status"` |
//! | recommend | `{"recommend": {"job": "j1"}}` |
//! | cancel | `{"cancel": {"job": "j1"}}` |
//! | watch | `{"watch": {"job": "j1", "schedule": [10.0, 10.0, 14.0]}}` (`schedule` optional) |
//! | unwatch | `{"unwatch": {"job": "j1"}}` |
//! | drift_status | `"drift_status"` |
//! | health | `"health"` |
//! | metrics | `"metrics"` |
//! | tick | `{"tick": {"steps": 5}}` |
//! | snapshot | `"snapshot"` |
//! | drain | `"drain"` |
//! | trace | `"trace"` or `{"trace": {"label": "recommend"}}` (`label` optional) |
//! | explain | `{"explain": {"job": "j1"}}` |
//! | metrics_history | `"metrics_history"` |
//! | shutdown | `"shutdown"` |
//!
//! Responses mirror the shape: `{"submitted": {...}}`,
//! `{"status": {"jobs": [...], "store": {...}|null}}`,
//! `{"recommendation": {...}}`, `{"cancelled": {...}}`,
//! `{"watching": {...}}`, `{"unwatched": {...}}`,
//! `{"drift": {"watches": [...], "alarms": [...]}}`,
//! `{"health": {...}}`, `{"metrics": {...}}`, `{"ticked": {...}}`,
//! `{"snapshotted": {...}}`, `{"draining": {...}}`, `{"trace": {...}}`,
//! `{"explained": {...}}`, `{"metrics_history": {...}}`,
//! `"shutting-down"`, `{"error": {...}}`. The flight-recorder payloads
//! (`trace`, `explained`, `metrics_history`) are raw JSON values like
//! `metrics`: their schemas grow release to release and clients should
//! not need a protocol bump to read new fields. Unknown
//! verbs and malformed lines produce an `error` response, never a dropped
//! connection — including request lines past the server's size cap, which
//! are answered with an `error` (and counted in `health`) before the
//! connection closes.
//!
//! Two responses exist only on the server's initiative:
//!
//! * `{"overloaded": {"retry_after_ms": ..., "reason": ...}}` — admission
//!   control shed the connection (session cap) or the request (per-request
//!   deadline); the client should back off and retry;
//! * `{"draining": {"jobs": ..., "dir": ...|null}}` — the reply to `drain`
//!   (and the effect of SIGTERM): in-flight jobs were finished and
//!   journaled, the store flushed, and the server stops accepting work.

use serde::{Deserialize, Error, Serialize, Value};
use streamtune_backend::FaultPlan;
use streamtune_monitor::DriftStatusLine;
use streamtune_workloads::rates::Engine;

use crate::store::StoreStats;

/// Which execution backend a job tunes against.
//
// `Chaos` carries a full `FaultPlan` (phase windows included) inline: one
// spec exists per admitted job, so the variant size gap is irrelevant and
// boxing would only complicate the hand-written serde impls.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum BackendSpec {
    /// The deterministic simulated cluster (seeded per job).
    Sim,
    /// Replay of a recorded trace file (canned production metrics).
    Replay(String),
    /// The simulated cluster wrapped in deterministic fault injection —
    /// the same job, plus the failures of the carried [`FaultPlan`].
    Chaos(FaultPlan),
    /// A live Flink REST endpoint (`http://host:port`): the job tunes the
    /// cluster's RUNNING job through the connector.
    Flink(String),
    /// A JSONL metric dump ingested into a replayable trace. The job's
    /// "tuning" admits the deployment the dump ran at — its
    /// recommendation is the recorded assignment — and a `watch` replays
    /// the dump's windows through the drift monitor.
    Ingest(String),
}

impl Serialize for BackendSpec {
    fn serialize(&self) -> Value {
        match self {
            BackendSpec::Sim => Value::String("sim".to_string()),
            BackendSpec::Replay(path) => {
                Value::Object(vec![("replay".to_string(), Value::String(path.clone()))])
            }
            BackendSpec::Chaos(plan) => {
                Value::Object(vec![("chaos".to_string(), plan.serialize())])
            }
            BackendSpec::Flink(url) => {
                Value::Object(vec![("flink".to_string(), Value::String(url.clone()))])
            }
            BackendSpec::Ingest(path) => {
                Value::Object(vec![("ingest".to_string(), Value::String(path.clone()))])
            }
        }
    }
}

impl Deserialize for BackendSpec {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let (name, payload) = v.variant()?;
        match (name, payload) {
            ("sim", None) => Ok(BackendSpec::Sim),
            ("replay", Some(p)) => Ok(BackendSpec::Replay(String::deserialize(p)?)),
            ("chaos", Some(p)) => Ok(BackendSpec::Chaos(FaultPlan::deserialize(p)?)),
            ("flink", Some(p)) => Ok(BackendSpec::Flink(String::deserialize(p)?)),
            ("ingest", Some(p)) => Ok(BackendSpec::Ingest(String::deserialize(p)?)),
            _ => Err(Error::custom(format!(
                "backend must be \"sim\", {{\"replay\": \"<trace.json>\"}}, \
                 {{\"chaos\": {{<fault plan>}}}}, {{\"flink\": \"<url>\"}} or \
                 {{\"ingest\": \"<dump.jsonl>\"}}, got `{name}`"
            ))),
        }
    }
}

/// Everything needed to admit and run one named tuning job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique job name (the handle for `status`/`recommend`/`cancel`).
    pub name: String,
    /// Named workload to tune (see `streamtune workloads`).
    pub query: String,
    /// Source-rate multiplier (`m × Wu`).
    pub multiplier: f64,
    /// Seed of the job's own backend.
    pub seed: u64,
    /// Engine dialect of the job's backend.
    pub engine: Engine,
    /// Which backend the job tunes against.
    pub backend: BackendSpec,
}

/// The payload a tagged verb must carry, or a descriptive error.
fn need_payload<'a>(
    kind: &str,
    verb: &str,
    payload: Option<&'a Value>,
) -> Result<&'a Value, Error> {
    payload.ok_or_else(|| Error::custom(format!("{kind} `{verb}` expects a payload")))
}

/// One protocol request.
//
// `Submit` inherits `BackendSpec`'s inline `FaultPlan`; requests are
// parsed one per protocol line, so the size gap does not matter.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Admit a new named job.
    Submit(JobSpec),
    /// Report every admitted job's state (runs pending jobs first).
    Status,
    /// Report one job's recommendation (runs pending jobs first).
    Recommend {
        /// The job's name.
        job: String,
    },
    /// Cancel a still-queued job.
    Cancel {
        /// The job's name.
        job: String,
    },
    /// Start live drift monitoring of a finished job.
    Watch {
        /// The job's name.
        job: String,
        /// Environment rate script: one multiplier per monitor tick, the
        /// last entry holding; `None` keeps the submitted rate.
        schedule: Option<Vec<f64>>,
    },
    /// Stop monitoring a job.
    Unwatch {
        /// The job's name.
        job: String,
    },
    /// Report every watched job's drift classification.
    DriftStatus,
    /// Report fault-tolerance health: per-job retry counters, degraded
    /// flags, store recovery events and daemon-level panic/lock counters.
    Health,
    /// Dump the telemetry registry (counters, gauges, latency histograms)
    /// as a JSON object — the same series the Prometheus scrape endpoint
    /// exposes, over the control protocol instead of HTTP.
    Metrics,
    /// Advance the monitor by `steps` observe→detect→adapt ticks.
    Tick {
        /// Ticks to take.
        steps: u64,
    },
    /// Persist the model store (model, GED cache, corpus, job ledger).
    Snapshot,
    /// Graceful shutdown: finish and persist in-flight work, then stop —
    /// what SIGTERM triggers from the outside.
    Drain,
    /// Report the newest complete span tree the flight recorder holds —
    /// optionally filtered to traces whose root was labeled `label`
    /// (a wire verb such as `"recommend"`).
    Trace {
        /// Root-span label filter; `None` returns the newest trace.
        label: Option<String>,
    },
    /// Report one finished job's decision audit record: the model inputs,
    /// cluster assignment, cache provenance and rejected candidates
    /// behind its recommendation.
    Explain {
        /// The job's name.
        job: String,
    },
    /// Dump the metrics time-series history ring: per-interval counter
    /// deltas, gauge values and histogram quantiles (the same frames the
    /// `/metrics/history.json` endpoint serves).
    MetricsHistory,
    /// Stop the server after responding.
    Shutdown,
}

impl Serialize for Request {
    fn serialize(&self) -> Value {
        let tagged = |verb: &str, payload: Value| Value::Object(vec![(verb.to_string(), payload)]);
        let job_ref =
            |job: &String| Value::Object(vec![("job".to_string(), Value::String(job.clone()))]);
        match self {
            Request::Submit(spec) => tagged("submit", spec.serialize()),
            Request::Status => Value::String("status".to_string()),
            Request::Recommend { job } => tagged("recommend", job_ref(job)),
            Request::Cancel { job } => tagged("cancel", job_ref(job)),
            Request::Watch { job, schedule } => {
                let mut fields = vec![("job".to_string(), Value::String(job.clone()))];
                if let Some(s) = schedule {
                    fields.push(("schedule".to_string(), s.serialize()));
                }
                tagged("watch", Value::Object(fields))
            }
            Request::Unwatch { job } => tagged("unwatch", job_ref(job)),
            Request::DriftStatus => Value::String("drift_status".to_string()),
            Request::Health => Value::String("health".to_string()),
            Request::Metrics => Value::String("metrics".to_string()),
            Request::Tick { steps } => tagged(
                "tick",
                Value::Object(vec![("steps".to_string(), Value::U64(*steps))]),
            ),
            Request::Snapshot => Value::String("snapshot".to_string()),
            Request::Drain => Value::String("drain".to_string()),
            Request::Trace { label } => match label {
                None => Value::String("trace".to_string()),
                Some(l) => tagged(
                    "trace",
                    Value::Object(vec![("label".to_string(), Value::String(l.clone()))]),
                ),
            },
            Request::Explain { job } => tagged("explain", job_ref(job)),
            Request::MetricsHistory => Value::String("metrics_history".to_string()),
            Request::Shutdown => Value::String("shutdown".to_string()),
        }
    }
}

impl Deserialize for Request {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let (verb, payload) = v.variant()?;
        let need = |payload| need_payload("verb", verb, payload);
        let job_of = |payload: &Value| String::deserialize(payload.field("job")?);
        match verb {
            "submit" => Ok(Request::Submit(JobSpec::deserialize(need(payload)?)?)),
            "status" => Ok(Request::Status),
            "recommend" => Ok(Request::Recommend {
                job: job_of(need(payload)?)?,
            }),
            "cancel" => Ok(Request::Cancel {
                job: job_of(need(payload)?)?,
            }),
            "watch" => {
                let p = need(payload)?;
                let schedule = match p.field("schedule") {
                    Ok(v) => Some(Vec::<f64>::deserialize(v)?),
                    Err(_) => None,
                };
                Ok(Request::Watch {
                    job: job_of(p)?,
                    schedule,
                })
            }
            "unwatch" => Ok(Request::Unwatch {
                job: job_of(need(payload)?)?,
            }),
            "drift_status" => Ok(Request::DriftStatus),
            "health" => Ok(Request::Health),
            "metrics" => Ok(Request::Metrics),
            "tick" => Ok(Request::Tick {
                steps: u64::deserialize(need(payload)?.field("steps")?)?,
            }),
            "snapshot" => Ok(Request::Snapshot),
            "drain" => Ok(Request::Drain),
            "trace" => {
                let label = match payload {
                    Some(p) => match p.field("label") {
                        Ok(v) => Some(String::deserialize(v)?),
                        Err(_) => None,
                    },
                    None => None,
                };
                Ok(Request::Trace { label })
            }
            "explain" => Ok(Request::Explain {
                job: job_of(need(payload)?)?,
            }),
            "metrics_history" => Ok(Request::MetricsHistory),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(Error::custom(format!(
                "unknown verb `{other}` (want submit/status/recommend/cancel/watch/unwatch/\
                 drift_status/health/metrics/tick/snapshot/drain/trace/explain/\
                 metrics_history/shutdown)"
            ))),
        }
    }
}

impl Request {
    /// The lowercase wire verb, e.g. for labeling per-verb metrics.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Submit(_) => "submit",
            Request::Status => "status",
            Request::Recommend { .. } => "recommend",
            Request::Cancel { .. } => "cancel",
            Request::Watch { .. } => "watch",
            Request::Unwatch { .. } => "unwatch",
            Request::DriftStatus => "drift_status",
            Request::Health => "health",
            Request::Metrics => "metrics",
            Request::Tick { .. } => "tick",
            Request::Snapshot => "snapshot",
            Request::Drain => "drain",
            Request::Trace { .. } => "trace",
            Request::Explain { .. } => "explain",
            Request::MetricsHistory => "metrics_history",
            Request::Shutdown => "shutdown",
        }
    }
}

/// One job's line in a `status` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatusLine {
    /// Job name.
    pub name: String,
    /// Workload it tunes.
    pub query: String,
    /// `"queued"`, `"done"`, `"failed"`, `"degraded"` or `"cancelled"`.
    pub state: String,
    /// Cluster the job was assigned to at admission.
    pub cluster: usize,
    /// Automatic re-tunes applied to the job so far.
    pub retunes: u32,
    /// Failure message when `state == "failed"`.
    pub detail: Option<String>,
}

/// The payload of a `status` response: the job table plus store health.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatusReport {
    /// One line per admitted job, in admission order.
    pub jobs: Vec<JobStatusLine>,
    /// Store artifact sizes (absent without a configured store).
    pub store: Option<StoreStats>,
}

/// One applied adaptation in a `ticked` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftEventLine {
    /// The affected job.
    pub job: String,
    /// `"rate-drift"`, `"structure-drift"`, `"poll-failed"`,
    /// `"degraded"`, `"recovered"`, `"alarm-raised"` or
    /// `"alarm-cleared"`.
    pub kind: String,
    /// What the adaptation did (or why it could not).
    pub detail: String,
}

/// The payload of a `ticked` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TickReport {
    /// Ticks taken.
    pub steps: u64,
    /// Jobs currently watched.
    pub watched: u64,
    /// Adaptations applied during these ticks, in detection order.
    pub events: Vec<DriftEventLine>,
}

/// One job's line in a `health` response: what its retry loops absorbed
/// or gave up on across every run (initial tune plus re-tunes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobHealthLine {
    /// Job name.
    pub job: String,
    /// Current lifecycle state (`"degraded"` ⇔ transient faults outlasted
    /// the retry budget on the last run).
    pub state: String,
    /// Transient backend faults seen (including the retried-away ones).
    pub transient_faults: u64,
    /// Retries taken in response.
    pub retries: u64,
    /// Times the retry budget ran out and the fault surfaced.
    pub exhausted: u64,
    /// Non-retryable backend failures.
    pub permanent_failures: u64,
    /// Virtual backoff minutes accumulated (never billed to outcomes).
    pub backoff_minutes: f64,
}

/// One raised SLO alarm in a `health` or `drift` response: a watched
/// fault counter crossed its configured threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlarmLine {
    /// Which SLO fired: `"retry-rate"`, `"degraded-watches"`,
    /// `"poll-failures"` or `"handler-panics"`.
    pub alarm: String,
    /// The observed value that crossed the threshold.
    pub value: f64,
    /// The configured threshold.
    pub threshold: f64,
    /// Human-readable context (what to look at).
    pub detail: String,
}

/// The payload of a `health` response: the daemon's fault-tolerance
/// ledger. Everything here is *observability only* — none of it feeds
/// back into tuning decisions, so reading it never perturbs outcomes.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HealthReport {
    /// Daemon crate version (`CARGO_PKG_VERSION` at build time).
    pub version: String,
    /// Whole seconds since the daemon's telemetry clock started.
    pub uptime_seconds: u64,
    /// Configured worker-pool parallelism (`"auto"`, `"serial"` or a
    /// fixed width) — the knob that never changes answers, only wall
    /// clock.
    pub parallelism: String,
    /// One line per admitted job, in admission order.
    pub jobs: Vec<JobHealthLine>,
    /// Jobs currently watched by the drift monitor.
    pub watched: u64,
    /// Watched jobs currently degraded (backend persistently failing).
    pub degraded_watches: u64,
    /// Monitor polls that failed even after retries, across all watches.
    pub poll_failures: u64,
    /// Corrupt store artifacts quarantined and recovered at bootstrap.
    pub store_recoveries: u64,
    /// Poisoned server locks recovered (a handler panicked mid-request).
    pub lock_recoveries: u64,
    /// Request handlers that panicked and were converted to `error`
    /// responses instead of killing the connection or daemon.
    pub handler_panics: u64,
    /// TCP sessions shed by admission control (session cap reached).
    pub sessions_shed: u64,
    /// Requests shed because the per-request deadline expired while the
    /// server was busy.
    pub deadlines_expired: u64,
    /// Request lines refused for exceeding the line-size cap.
    pub oversized_lines: u64,
    /// SLO alarms currently raised, in policy order.
    pub alarms: Vec<AlarmLine>,
}

// Hand-written so `health` payloads from daemons that predate admission
// control and SLO alarms still parse (a newer `streamtune client` against
// an older daemon): the counters default to zero, the alarm list to empty.
impl Deserialize for HealthReport {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let u64_or_zero = |name: &str| match v.field(name) {
            Ok(f) => u64::deserialize(f),
            Err(_) => Ok(0),
        };
        Ok(HealthReport {
            version: match v.field("version") {
                Ok(f) => String::deserialize(f)?,
                Err(_) => String::new(),
            },
            uptime_seconds: u64_or_zero("uptime_seconds")?,
            parallelism: match v.field("parallelism") {
                Ok(f) => String::deserialize(f)?,
                Err(_) => String::new(),
            },
            jobs: Vec::deserialize(v.field("jobs")?)?,
            watched: u64::deserialize(v.field("watched")?)?,
            degraded_watches: u64::deserialize(v.field("degraded_watches")?)?,
            poll_failures: u64::deserialize(v.field("poll_failures")?)?,
            store_recoveries: u64::deserialize(v.field("store_recoveries")?)?,
            lock_recoveries: u64::deserialize(v.field("lock_recoveries")?)?,
            handler_panics: u64::deserialize(v.field("handler_panics")?)?,
            sessions_shed: u64_or_zero("sessions_shed")?,
            deadlines_expired: u64_or_zero("deadlines_expired")?,
            oversized_lines: u64_or_zero("oversized_lines")?,
            alarms: match v.field("alarms") {
                Ok(f) => Vec::deserialize(f)?,
                Err(_) => Vec::new(),
            },
        })
    }
}

/// The payload of a `recommendation` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Job name.
    pub job: String,
    /// Workload it tuned.
    pub query: String,
    /// Cluster whose model served the job.
    pub cluster: usize,
    /// Operator names, in [`degrees`](Self::degrees) order.
    pub op_names: Vec<String>,
    /// Recommended per-operator parallelism.
    pub degrees: Vec<u32>,
    /// Total parallelism.
    pub total: u64,
    /// Reconfigurations the tuning run performed.
    pub reconfigurations: u32,
    /// Deployments that exhibited job-level backpressure.
    pub backpressure_events: u32,
    /// Simulated minutes the tuning run took.
    pub elapsed_minutes: f64,
    /// Tuning iterations executed.
    pub iterations: u32,
    /// Whether the tuner reached its own convergence criterion.
    pub converged: bool,
}

/// One protocol response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A job was admitted.
    Submitted {
        /// The job's name.
        job: String,
        /// Cluster the job was assigned to.
        cluster: usize,
    },
    /// All admitted jobs plus store health.
    Status(StatusReport),
    /// One job's tuning result.
    Recommendation(Recommendation),
    /// A queued job was cancelled.
    Cancelled {
        /// The job's name.
        job: String,
    },
    /// A job is now being monitored for drift.
    Watching {
        /// The job's name.
        job: String,
        /// Whether its DAG structure is covered by the pre-trained corpus
        /// (`false` ⇒ the first tick will grow the corpus).
        covered: bool,
    },
    /// A job is no longer monitored.
    Unwatched {
        /// The job's name.
        job: String,
    },
    /// Drift classification of every watched job, plus raised SLO alarms.
    Drift {
        /// One line per watched job.
        watches: Vec<DriftStatusLine>,
        /// SLO alarms currently raised.
        alarms: Vec<AlarmLine>,
    },
    /// The daemon's fault-tolerance ledger.
    Health(HealthReport),
    /// The telemetry registry as a JSON object (see the `metrics` verb).
    /// Kept as a raw [`Value`]: the series set grows release to release,
    /// and clients should not need a protocol bump to read new ones.
    Metrics(Value),
    /// The monitor advanced.
    Ticked(TickReport),
    /// The model store was persisted.
    Snapshotted {
        /// Directory the store was written to.
        dir: String,
    },
    /// The server finished a graceful drain: in-flight jobs ran (and were
    /// journaled), the store was flushed, no further work is accepted.
    Draining {
        /// Jobs in a terminal state after the drain.
        jobs: u64,
        /// Store directory flushed to (`None` without a configured store).
        dir: Option<String>,
    },
    /// One recorded span tree (or `{"found": false, ...}` when the flight
    /// recorder holds no matching complete trace). Raw [`Value`] for the
    /// same forward-compatibility reason as `Metrics`.
    Trace(Value),
    /// One job's decision audit record. Raw [`Value`]: the record schema
    /// (see `decision.rs`) gains fields release to release.
    Explained(Value),
    /// The metrics history ring as ordered frames. Raw [`Value`].
    MetricsHistory(Value),
    /// Admission control shed this connection or request; back off for
    /// `retry_after_ms` and retry.
    Overloaded {
        /// Suggested client backoff before retrying.
        retry_after_ms: u64,
        /// `"session-cap"` or `"deadline"`.
        reason: String,
    },
    /// The server acknowledges shutdown.
    ShuttingDown,
    /// The request could not be served.
    Error {
        /// Why.
        message: String,
    },
}

impl Serialize for Response {
    fn serialize(&self) -> Value {
        let tagged = |verb: &str, payload: Value| Value::Object(vec![(verb.to_string(), payload)]);
        match self {
            Response::Submitted { job, cluster } => tagged(
                "submitted",
                Value::Object(vec![
                    ("job".to_string(), Value::String(job.clone())),
                    ("cluster".to_string(), Value::U64(*cluster as u64)),
                ]),
            ),
            Response::Status(report) => tagged("status", report.serialize()),
            Response::Recommendation(r) => tagged("recommendation", r.serialize()),
            Response::Cancelled { job } => tagged(
                "cancelled",
                Value::Object(vec![("job".to_string(), Value::String(job.clone()))]),
            ),
            Response::Watching { job, covered } => tagged(
                "watching",
                Value::Object(vec![
                    ("job".to_string(), Value::String(job.clone())),
                    ("covered".to_string(), Value::Bool(*covered)),
                ]),
            ),
            Response::Unwatched { job } => tagged(
                "unwatched",
                Value::Object(vec![("job".to_string(), Value::String(job.clone()))]),
            ),
            Response::Drift { watches, alarms } => tagged(
                "drift",
                Value::Object(vec![
                    ("watches".to_string(), watches.serialize()),
                    ("alarms".to_string(), alarms.serialize()),
                ]),
            ),
            Response::Health(report) => tagged("health", report.serialize()),
            Response::Metrics(value) => tagged("metrics", value.clone()),
            Response::Ticked(report) => tagged("ticked", report.serialize()),
            Response::Snapshotted { dir } => tagged(
                "snapshotted",
                Value::Object(vec![("dir".to_string(), Value::String(dir.clone()))]),
            ),
            Response::Draining { jobs, dir } => tagged(
                "draining",
                Value::Object(vec![
                    ("jobs".to_string(), Value::U64(*jobs)),
                    ("dir".to_string(), dir.serialize()),
                ]),
            ),
            Response::Trace(value) => tagged("trace", value.clone()),
            Response::Explained(value) => tagged("explained", value.clone()),
            Response::MetricsHistory(value) => tagged("metrics_history", value.clone()),
            Response::Overloaded {
                retry_after_ms,
                reason,
            } => tagged(
                "overloaded",
                Value::Object(vec![
                    ("retry_after_ms".to_string(), Value::U64(*retry_after_ms)),
                    ("reason".to_string(), Value::String(reason.clone())),
                ]),
            ),
            Response::ShuttingDown => Value::String("shutting-down".to_string()),
            Response::Error { message } => tagged(
                "error",
                Value::Object(vec![(
                    "message".to_string(),
                    Value::String(message.clone()),
                )]),
            ),
        }
    }
}

impl Deserialize for Response {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let (verb, payload) = v.variant()?;
        let need = |payload| need_payload("response", verb, payload);
        match verb {
            "submitted" => {
                let p = need(payload)?;
                Ok(Response::Submitted {
                    job: String::deserialize(p.field("job")?)?,
                    cluster: usize::deserialize(p.field("cluster")?)?,
                })
            }
            "status" => Ok(Response::Status(StatusReport::deserialize(need(payload)?)?)),
            "recommendation" => Ok(Response::Recommendation(Recommendation::deserialize(
                need(payload)?,
            )?)),
            "cancelled" => Ok(Response::Cancelled {
                job: String::deserialize(need(payload)?.field("job")?)?,
            }),
            "watching" => {
                let p = need(payload)?;
                Ok(Response::Watching {
                    job: String::deserialize(p.field("job")?)?,
                    covered: bool::deserialize(p.field("covered")?)?,
                })
            }
            "unwatched" => Ok(Response::Unwatched {
                job: String::deserialize(need(payload)?.field("job")?)?,
            }),
            "drift" => {
                let p = need(payload)?;
                // Daemons that predate SLO alarms sent a bare array of
                // watch lines; accept both shapes.
                if matches!(p, Value::Array(_)) {
                    return Ok(Response::Drift {
                        watches: Vec::deserialize(p)?,
                        alarms: Vec::new(),
                    });
                }
                Ok(Response::Drift {
                    watches: Vec::deserialize(p.field("watches")?)?,
                    alarms: Vec::deserialize(p.field("alarms")?)?,
                })
            }
            "health" => Ok(Response::Health(HealthReport::deserialize(need(payload)?)?)),
            "metrics" => Ok(Response::Metrics(need(payload)?.clone())),
            "ticked" => Ok(Response::Ticked(TickReport::deserialize(need(payload)?)?)),
            "snapshotted" => Ok(Response::Snapshotted {
                dir: String::deserialize(need(payload)?.field("dir")?)?,
            }),
            "draining" => {
                let p = need(payload)?;
                Ok(Response::Draining {
                    jobs: u64::deserialize(p.field("jobs")?)?,
                    dir: Option::deserialize(p.field("dir")?)?,
                })
            }
            "trace" => Ok(Response::Trace(need(payload)?.clone())),
            "explained" => Ok(Response::Explained(need(payload)?.clone())),
            "metrics_history" => Ok(Response::MetricsHistory(need(payload)?.clone())),
            "overloaded" => {
                let p = need(payload)?;
                Ok(Response::Overloaded {
                    retry_after_ms: u64::deserialize(p.field("retry_after_ms")?)?,
                    reason: String::deserialize(p.field("reason")?)?,
                })
            }
            "shutting-down" => Ok(Response::ShuttingDown),
            "error" => Ok(Response::Error {
                message: String::deserialize(need(payload)?.field("message")?)?,
            }),
            other => Err(Error::custom(format!("unknown response `{other}`"))),
        }
    }
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, Error> {
    serde_json::from_str(line)
}

/// Render one response line (no trailing newline).
pub fn render_response(response: &Response) -> String {
    serde_json::to_string(response).expect("responses always serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> JobSpec {
        JobSpec {
            name: "j1".to_string(),
            query: "nexmark-q5".to_string(),
            multiplier: 10.0,
            seed: 42,
            engine: Engine::Flink,
            backend: BackendSpec::Sim,
        }
    }

    #[test]
    fn requests_roundtrip_through_the_wire_format() {
        let chaos_spec = JobSpec {
            backend: BackendSpec::Chaos(FaultPlan::transient(9).with_crash_at(4)),
            ..spec()
        };
        let flink_spec = JobSpec {
            backend: BackendSpec::Flink("http://127.0.0.1:8081".to_string()),
            ..spec()
        };
        let ingest_spec = JobSpec {
            backend: BackendSpec::Ingest("dumps/metrics.jsonl".to_string()),
            ..spec()
        };
        let requests = [
            Request::Submit(spec()),
            Request::Submit(chaos_spec),
            Request::Submit(flink_spec),
            Request::Submit(ingest_spec),
            Request::Status,
            Request::Recommend {
                job: "j1".to_string(),
            },
            Request::Cancel {
                job: "j1".to_string(),
            },
            Request::Watch {
                job: "j1".to_string(),
                schedule: Some(vec![10.0, 10.0, 14.0]),
            },
            Request::Watch {
                job: "j1".to_string(),
                schedule: None,
            },
            Request::Unwatch {
                job: "j1".to_string(),
            },
            Request::DriftStatus,
            Request::Health,
            Request::Metrics,
            Request::Tick { steps: 25 },
            Request::Snapshot,
            Request::Drain,
            Request::Trace { label: None },
            Request::Trace {
                label: Some("recommend".to_string()),
            },
            Request::Explain {
                job: "j1".to_string(),
            },
            Request::MetricsHistory,
            Request::Shutdown,
        ];
        for r in requests {
            let line = serde_json::to_string(&r).unwrap();
            assert_eq!(parse_request(&line).unwrap(), r, "{line}");
        }
    }

    #[test]
    fn connector_backends_use_single_key_wire_forms() {
        let flink = BackendSpec::Flink("http://127.0.0.1:8081".to_string());
        let ingest = BackendSpec::Ingest("dumps/metrics.jsonl".to_string());
        assert_eq!(
            serde_json::to_string(&flink).unwrap(),
            "{\"flink\":\"http://127.0.0.1:8081\"}"
        );
        assert_eq!(
            serde_json::to_string(&ingest).unwrap(),
            "{\"ingest\":\"dumps/metrics.jsonl\"}"
        );
    }

    #[test]
    fn wire_verbs_are_lowercase() {
        let line = serde_json::to_string(&Request::Submit(spec())).unwrap();
        assert!(line.starts_with("{\"submit\":"), "{line}");
        assert!(
            line.contains("\"engine\":\"flink\""),
            "engines are lowercase on the wire like every other token: {line}"
        );
        assert_eq!(
            serde_json::to_string(&Request::Status).unwrap(),
            "\"status\""
        );
        assert_eq!(
            serde_json::to_string(&Request::Shutdown).unwrap(),
            "\"shutdown\""
        );
        let line = render_response(&Response::ShuttingDown);
        assert_eq!(line, "\"shutting-down\"");
    }

    #[test]
    fn handwritten_requests_parse() {
        let r = parse_request(
            "{\"submit\": {\"name\": \"a\", \"query\": \"nexmark-q1\", \"multiplier\": 5.0, \
             \"seed\": 7, \"engine\": \"timely\", \"backend\": {\"replay\": \"t.json\"}}}",
        )
        .unwrap();
        match r {
            Request::Submit(s) => {
                assert_eq!(s.engine, Engine::Timely);
                assert_eq!(s.backend, BackendSpec::Replay("t.json".to_string()));
            }
            other => panic!("expected submit, got {other:?}"),
        }
        assert!(parse_request("\"reboot\"").is_err());
        assert!(parse_request("{\"recommend\": {}}").is_err());
        assert!(parse_request("not json").is_err());
        // Monitor verbs: schedule optional, steps required.
        match parse_request("{\"watch\": {\"job\": \"a\"}}").unwrap() {
            Request::Watch { job, schedule } => {
                assert_eq!(job, "a");
                assert_eq!(schedule, None);
            }
            other => panic!("expected watch, got {other:?}"),
        }
        assert_eq!(
            parse_request("\"drift_status\"").unwrap(),
            Request::DriftStatus
        );
        assert_eq!(parse_request("\"health\"").unwrap(), Request::Health);
        assert_eq!(parse_request("\"metrics\"").unwrap(), Request::Metrics);
        assert!(parse_request("{\"tick\": {}}").is_err());
        // Flight-recorder verbs: trace takes an optional label filter and
        // accepts both the bare and the tagged wire forms.
        assert_eq!(
            parse_request("\"trace\"").unwrap(),
            Request::Trace { label: None }
        );
        assert_eq!(
            parse_request("{\"trace\": {\"label\": \"recommend\"}}").unwrap(),
            Request::Trace {
                label: Some("recommend".to_string())
            }
        );
        assert_eq!(
            parse_request("{\"trace\": {}}").unwrap(),
            Request::Trace { label: None }
        );
        assert_eq!(
            parse_request("{\"explain\": {\"job\": \"a\"}}").unwrap(),
            Request::Explain {
                job: "a".to_string()
            }
        );
        assert!(parse_request("{\"explain\": {}}").is_err());
        assert_eq!(
            parse_request("\"metrics_history\"").unwrap(),
            Request::MetricsHistory
        );
        // A hand-written chaos backend spec parses into a full fault plan.
        let r = parse_request(
            "{\"submit\": {\"name\": \"c\", \"query\": \"nexmark-q1\", \"multiplier\": 5.0, \
             \"seed\": 7, \"engine\": \"flink\", \"backend\": {\"chaos\": {\"seed\": 3, \
             \"io_rate\": 0.2, \"deploy_fail_rate\": 0.1, \"nan_rate\": 0.0, \
             \"stale_rate\": 0.0, \"max_burst\": 2, \"crash_epoch\": null}}}}",
        )
        .unwrap();
        match r {
            Request::Submit(s) => match s.backend {
                BackendSpec::Chaos(plan) => {
                    assert_eq!(plan.seed, 3);
                    assert_eq!(plan.io_rate, 0.2);
                    assert_eq!(plan.crash_epoch, None);
                }
                other => panic!("expected chaos backend, got {other:?}"),
            },
            other => panic!("expected submit, got {other:?}"),
        }
    }

    #[test]
    fn responses_roundtrip() {
        let responses = [
            Response::Submitted {
                job: "j".to_string(),
                cluster: 2,
            },
            Response::Status(StatusReport {
                jobs: vec![JobStatusLine {
                    name: "j".to_string(),
                    query: "nexmark-q2".to_string(),
                    state: "done".to_string(),
                    cluster: 0,
                    retunes: 3,
                    detail: None,
                }],
                store: Some(StoreStats {
                    model_bytes: 1024,
                    model_backup_bytes: 0,
                    ged_cache_bytes: 99,
                    corpus_bytes: 12_345,
                    jobs_bytes: 7,
                }),
            }),
            Response::Status(StatusReport {
                jobs: Vec::new(),
                store: None,
            }),
            Response::Cancelled {
                job: "j".to_string(),
            },
            Response::Watching {
                job: "j".to_string(),
                covered: false,
            },
            Response::Unwatched {
                job: "j".to_string(),
            },
            Response::Drift {
                watches: vec![streamtune_monitor::DriftStatusLine {
                    job: "j".to_string(),
                    class: "rate-drift".to_string(),
                    ticks: 40,
                    multiplier: 10.0,
                    baseline: 700e3,
                    triggers: 1,
                    retunes: 1,
                    degraded: false,
                    poll_failures: 2,
                }],
                alarms: vec![AlarmLine {
                    alarm: "degraded-watches".to_string(),
                    value: 1.0,
                    threshold: 1.0,
                    detail: "1 watched job degraded".to_string(),
                }],
            },
            Response::Health(HealthReport {
                version: "0.5.0".to_string(),
                uptime_seconds: 12,
                parallelism: "fixed(4)".to_string(),
                jobs: vec![JobHealthLine {
                    job: "j".to_string(),
                    state: "degraded".to_string(),
                    transient_faults: 9,
                    retries: 6,
                    exhausted: 1,
                    permanent_failures: 0,
                    backoff_minutes: 3.5,
                }],
                watched: 1,
                degraded_watches: 1,
                poll_failures: 4,
                store_recoveries: 1,
                lock_recoveries: 0,
                handler_panics: 2,
                sessions_shed: 3,
                deadlines_expired: 1,
                oversized_lines: 2,
                alarms: vec![AlarmLine {
                    alarm: "retry-rate".to_string(),
                    value: 0.75,
                    threshold: 0.5,
                    detail: "6 retries over 8 deploys".to_string(),
                }],
            }),
            Response::Ticked(TickReport {
                steps: 5,
                watched: 2,
                events: vec![DriftEventLine {
                    job: "j".to_string(),
                    kind: "rate-drift".to_string(),
                    detail: "re-tuned 10 → 14".to_string(),
                }],
            }),
            Response::Metrics(Value::Object(vec![(
                "streamtune_requests_total".to_string(),
                Value::U64(7),
            )])),
            Response::Snapshotted {
                dir: "/tmp/store".to_string(),
            },
            Response::Draining {
                jobs: 4,
                dir: Some("/tmp/store".to_string()),
            },
            Response::Draining { jobs: 0, dir: None },
            Response::Trace(Value::Object(vec![
                ("found".to_string(), Value::Bool(true)),
                ("label".to_string(), Value::String("recommend".to_string())),
                ("spans".to_string(), Value::Array(Vec::new())),
            ])),
            Response::Explained(Value::Object(vec![(
                "job".to_string(),
                Value::String("j".to_string()),
            )])),
            Response::MetricsHistory(Value::Object(vec![(
                "frames".to_string(),
                Value::Array(Vec::new()),
            )])),
            Response::Overloaded {
                retry_after_ms: 250,
                reason: "session-cap".to_string(),
            },
            Response::ShuttingDown,
            Response::Error {
                message: "nope".to_string(),
            },
        ];
        for r in responses {
            let line = render_response(&r);
            let back: Response = serde_json::from_str(&line).unwrap();
            assert_eq!(back, r, "{line}");
        }
    }

    #[test]
    fn legacy_payloads_from_older_daemons_still_parse() {
        // Pre-alarm daemons sent `drift` as a bare array of watch lines.
        let legacy = "{\"drift\": []}";
        assert_eq!(
            serde_json::from_str::<Response>(legacy).unwrap(),
            Response::Drift {
                watches: Vec::new(),
                alarms: Vec::new(),
            }
        );
        // And `health` without admission-control counters or alarms.
        let legacy = "{\"health\": {\"jobs\": [], \"watched\": 0, \
             \"degraded_watches\": 0, \"poll_failures\": 0, \
             \"store_recoveries\": 0, \"lock_recoveries\": 0, \
             \"handler_panics\": 0}}";
        match serde_json::from_str::<Response>(legacy).unwrap() {
            Response::Health(report) => {
                assert_eq!(report.sessions_shed, 0);
                assert_eq!(report.deadlines_expired, 0);
                assert_eq!(report.oversized_lines, 0);
                assert!(report.alarms.is_empty());
                // Build/runtime info arrived after admission control;
                // pre-telemetry daemons send none of it.
                assert_eq!(report.version, "");
                assert_eq!(report.uptime_seconds, 0);
                assert_eq!(report.parallelism, "");
            }
            other => panic!("expected health, got {other:?}"),
        }
    }
}
