//! The tuning daemon: bootstrap, protocol dispatch, transports.
//!
//! A [`Server`] owns the shared model corpus ([`Pretrained`] + live
//! [`GedCache`]), the [`JobManager`], and (optionally) a [`ModelStore`].
//! It speaks the line-delimited protocol over any `BufRead`/`Write` pair
//! — stdin/stdout, an in-process byte buffer (tests, examples), or TCP
//! connections served sequentially — with identical semantics.

use crate::error::ServeError;
use crate::job::{JobManager, JobState};
use crate::protocol::{parse_request, render_response, Recommendation, Request, Response};
use crate::store::ModelStore;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use streamtune_core::{PretrainConfig, Pretrained, Pretrainer};
use streamtune_ged::{Bound, GedCache, Parallelism};
use streamtune_workloads::history::ExecutionRecord;

/// How a [`Server`] came to own its model (for operator logging).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootstrapReport {
    /// The model was loaded from the store — no retraining happened.
    pub loaded_from_store: bool,
    /// Pre-training ran warm-started from a persisted GED-cache snapshot.
    pub warm_started: bool,
    /// Jobs restored from the persisted ledger.
    pub restored_jobs: usize,
}

/// The long-running tuning daemon.
#[derive(Debug)]
pub struct Server {
    manager: JobManager,
    cache: GedCache,
    store: Option<ModelStore>,
}

impl Server {
    /// A server over an already-built model. `cache` is the GED cache the
    /// model was trained through (snapshotted on the `snapshot` verb);
    /// `store` enables `snapshot` and restart-resume.
    pub fn new(
        pretrained: Pretrained,
        cache: GedCache,
        store: Option<ModelStore>,
        parallelism: Parallelism,
    ) -> Self {
        Server {
            manager: JobManager::new(pretrained, parallelism),
            cache,
            store,
        }
    }

    /// Build a server from the store when possible, pre-training only on
    /// a store miss.
    ///
    /// * Store has a model → load it (plus cache snapshot and job
    ///   ledger); **no retraining**.
    /// * Store has only a GED-cache snapshot (e.g. a prior run was
    ///   interrupted after clustering) → pre-train warm-started from it.
    /// * Otherwise → cold pre-train. With a store configured, the fresh
    ///   model and cache are persisted immediately.
    ///
    /// `recipe` supplies the pre-training inputs and is only invoked on a
    /// store miss, so a warm start never pays corpus generation.
    pub fn bootstrap(
        store: Option<ModelStore>,
        recipe: impl FnOnce() -> (PretrainConfig, Vec<ExecutionRecord>),
        parallelism: Parallelism,
    ) -> Result<(Self, BootstrapReport), ServeError> {
        if let Some(store) = &store {
            if store.has_model() {
                let pretrained = store.load_model()?;
                let cache = if store.has_ged_cache() {
                    GedCache::from_snapshot(store.load_ged_cache()?)?
                } else {
                    GedCache::new(Bound::LabelSet, pretrained.ged_cap)
                };
                let ledger = if store.has_jobs() {
                    store.load_jobs()?
                } else {
                    Vec::new()
                };
                let restored_jobs = ledger.len();
                let mut server = Server::new(pretrained, cache, Some(store.clone()), parallelism);
                server.manager.restore(ledger)?;
                return Ok((
                    server,
                    BootstrapReport {
                        loaded_from_store: true,
                        warm_started: false,
                        restored_jobs,
                    },
                ));
            }
        }
        let (config, corpus) = recipe();
        let warm_started = matches!(&store, Some(store) if store.has_ged_cache());
        let mut cache = if warm_started {
            let store = store.as_ref().expect("warm start implies a store");
            GedCache::from_snapshot(store.load_ged_cache()?)?
        } else {
            GedCache::new(Bound::LabelSet, config.cluster.ged_cap)
        };
        let pretrained = Pretrainer::new(config).run_with_cache(&corpus, &mut cache);
        if let Some(store) = &store {
            store.save_model(&pretrained)?;
            store.save_ged_cache(&cache.snapshot())?;
            // A fresh model invalidates any ledger left by a previous
            // model epoch (e.g. the operator deleted model.json to force
            // a retrain): without this, the next restart would resurrect
            // results computed under the old model as if they were new.
            store.save_jobs(&[])?;
        }
        let server = Server::new(pretrained, cache, store, parallelism);
        Ok((
            server,
            BootstrapReport {
                loaded_from_store: false,
                warm_started,
                restored_jobs: 0,
            },
        ))
    }

    /// The shared model corpus.
    pub fn pretrained(&self) -> &Pretrained {
        self.manager.pretrained()
    }

    /// The job manager (for in-process drivers and tests).
    pub fn manager(&self) -> &JobManager {
        &self.manager
    }

    /// Persist model, GED cache and job ledger to the store.
    fn snapshot(&mut self) -> Result<String, ServeError> {
        // Drain first so the ledger only holds terminal states.
        self.manager.drain();
        let store = self.store.as_ref().ok_or(ServeError::NoStore)?;
        store.save_model(self.manager.pretrained())?;
        store.save_ged_cache(&self.cache.snapshot())?;
        store.save_jobs(&self.manager.persistable())?;
        Ok(store.dir().display().to_string())
    }

    /// Serve one request. Returns the response and whether the server
    /// should stop after sending it.
    pub fn handle(&mut self, request: &Request) -> (Response, bool) {
        let response = match request {
            Request::Submit(spec) => {
                let job = spec.name.clone();
                match self.manager.submit(spec.clone()) {
                    Ok(cluster) => Response::Submitted { job, cluster },
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                }
            }
            Request::Status => {
                self.manager.drain();
                Response::Status(self.manager.status_lines())
            }
            Request::Recommend { job } => {
                self.manager.drain();
                match self.manager.job(job) {
                    None => Response::Error {
                        message: ServeError::UnknownJob { name: job.clone() }.to_string(),
                    },
                    Some(j) => match &j.state {
                        JobState::Done(result) => Response::Recommendation(Recommendation {
                            job: job.clone(),
                            query: j.spec.query.clone(),
                            cluster: result.cluster,
                            op_names: result.op_names.clone(),
                            degrees: result.outcome.final_assignment.as_slice().to_vec(),
                            total: result.outcome.final_assignment.total(),
                            reconfigurations: result.outcome.reconfigurations,
                            backpressure_events: result.outcome.backpressure_events,
                            elapsed_minutes: result.outcome.elapsed_minutes,
                            iterations: result.outcome.iterations,
                            converged: result.outcome.converged,
                        }),
                        other => Response::Error {
                            message: ServeError::NoResult {
                                name: job.clone(),
                                state: other.name().to_string(),
                            }
                            .to_string(),
                        },
                    },
                }
            }
            Request::Cancel { job } => match self.manager.cancel(job) {
                Ok(()) => Response::Cancelled { job: job.clone() },
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            },
            Request::Snapshot => match self.snapshot() {
                Ok(dir) => Response::Snapshotted { dir },
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            },
            Request::Shutdown => Response::ShuttingDown,
        };
        (response, matches!(request, Request::Shutdown))
    }

    /// Serve line-delimited requests from `input`, writing one response
    /// line each to `output`, until `shutdown`, end of input, or an I/O
    /// failure. Blank lines and `#` comment lines are skipped (so scripts
    /// can be annotated). Returns whether `shutdown` was received.
    pub fn serve(
        &mut self,
        input: impl BufRead,
        mut output: impl Write,
    ) -> Result<bool, ServeError> {
        let io_err = |context: &str, e: std::io::Error| ServeError::Io {
            context: context.to_string(),
            message: e.to_string(),
        };
        for line in input.lines() {
            let line = line.map_err(|e| io_err("read request", e))?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let (response, stop) = match parse_request(trimmed) {
                Ok(request) => self.handle(&request),
                Err(e) => (
                    Response::Error {
                        message: format!("bad request: {e}"),
                    },
                    false,
                ),
            };
            writeln!(output, "{}", render_response(&response))
                .map_err(|e| io_err("write response", e))?;
            output.flush().map_err(|e| io_err("flush response", e))?;
            if stop {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Serve TCP connections sequentially until a client sends
    /// `shutdown`. One connection at a time keeps request handling
    /// single-threaded (the parallelism lives in the worker pool under
    /// `drain`, where it is deterministic). A connection-level failure —
    /// a client resetting the socket mid-session, a broken pipe on the
    /// response — ends only that connection (logged to stderr); the
    /// daemon keeps accepting. Only a broken *listener* is fatal.
    pub fn serve_tcp(&mut self, listener: &TcpListener) -> Result<(), ServeError> {
        loop {
            let (stream, peer) = listener.accept().map_err(|e| ServeError::Io {
                context: "accept connection".to_string(),
                message: e.to_string(),
            })?;
            let reader = match stream.try_clone() {
                Ok(clone) => BufReader::new(clone),
                Err(e) => {
                    eprintln!("dropping connection from {peer}: {e}");
                    continue;
                }
            };
            match self.serve(reader, stream) {
                Ok(true) => return Ok(()),
                Ok(false) => {}
                Err(e) => eprintln!("connection from {peer} failed: {e}"),
            }
        }
    }
}
