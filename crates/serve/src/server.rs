//! The tuning daemon: bootstrap, protocol dispatch, monitoring, transports.
//!
//! A [`Server`] owns the shared model corpus ([`Pretrained`] + live
//! [`GedCache`] + the execution-history corpus it was trained on), the
//! [`JobManager`], the drift [`Monitor`] and (optionally) a
//! [`ModelStore`]. It speaks the line-delimited protocol over any
//! `BufRead`/`Write` pair — stdin/stdout, an in-process byte buffer
//! (tests, examples) — and over TCP with **one session per client**: each
//! connection gets its own thread over the shared server state, so a slow
//! or crashing client never blocks (let alone kills) the daemon.
//!
//! The observe→detect→adapt loop runs through [`Server::tick_monitor`]:
//! each tick polls every watched job (deterministic
//! [`Parallelism`](streamtune_ged::Parallelism) fan-out), classifies
//! drift, and applies the adaptation policy — a rate drift re-tunes the
//! affected job through the job manager (bit-identical to a manual
//! re-submit at the shifted rate); a structure drift appends the unseen
//! DAG to the corpus, re-pretrains *warm* over the GED cache (cached
//! pairs never search again), atomically swaps the model and re-assigns
//! every live job. Ticks are driven by the `tick` protocol verb
//! (scripted, deterministic) or by the TCP transport's background
//! monitor interval (wall-clock cadence; the decisions stay
//! deterministic, only *when* they happen varies).

use crate::error::ServeError;
use crate::job::{panic_message, JobManager, JobState};
use crate::protocol::{
    parse_request, render_response, AlarmLine, BackendSpec, DriftEventLine, HealthReport,
    JobHealthLine, Recommendation, Request, Response, StatusReport, TickReport,
};
use crate::store::ModelStore;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, TryLockError};
use std::time::{Duration, Instant};
use streamtune_backend::{ChaosBackend, ExecutionBackend, RetryPolicy};
use streamtune_core::{PretrainConfig, Pretrained, Pretrainer};
use streamtune_ged::{Bound, GedCache, Parallelism};
use streamtune_monitor::{
    grow_and_pretrain, grow_records, structure_distance, DriftEvent, Monitor, MonitorConfig,
    WatchSpec,
};
use streamtune_sim::SimCluster;
use streamtune_telemetry::{emit, Level};
use streamtune_workloads::history::ExecutionRecord;
use streamtune_workloads::{find_workload, rates::Engine};

use crate::expose::ServeMetrics;

/// Server settings beyond the model itself.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Pre-training configuration — used for the bootstrap cold path *and*
    /// for every incremental re-pretrain on a grown corpus.
    pub pretrain: PretrainConfig,
    /// Worker pool width for job drains and monitor ticks (any value is
    /// bit-identical; only wall-clock changes).
    pub parallelism: Parallelism,
    /// Ledger rotation: at most this many terminal jobs are kept (oldest
    /// dropped first) when snapshotting, so `jobs.json` stays bounded on
    /// long-lived daemons.
    pub ledger_cap: usize,
    /// Drift-monitor settings.
    pub monitor: MonitorConfig,
    /// Execution records synthesized per structure-drifted DAG before the
    /// incremental re-pretrain.
    pub grow_runs: usize,
    /// Retry policy every drained job's tuning session runs under
    /// (transient backend faults are absorbed deterministically before
    /// they can fail a job).
    pub retry: RetryPolicy,
    /// Fault-drill mode: when set, every simulator-backed job is wrapped
    /// in deterministic transient fault injection seeded by
    /// `chaos ^ job seed`. The storms sit inside the retry budget, so
    /// recommendations are bit-identical to a drill-free daemon — the knob
    /// exercises the fault path, it does not change answers.
    pub chaos: Option<u64>,
    /// SLO thresholds over the daemon's fault counters; crossing one
    /// raises an alarm line in `health` and `drift_status`.
    pub slo: SloPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            pretrain: PretrainConfig::default(),
            parallelism: Parallelism::Auto,
            ledger_cap: 256,
            monitor: MonitorConfig::default(),
            grow_runs: 2,
            retry: RetryPolicy::default(),
            chaos: None,
            slo: SloPolicy::default(),
        }
    }
}

/// SLO thresholds over [`HealthReport`] counters. Each threshold is
/// inclusive — the alarm raises once the observed value reaches it — and
/// `None` disables that alarm. Alarms are *stateless* projections of the
/// counters: `health` and `drift_status` recompute them on every read, and
/// [`Server::tick_monitor`] reports transitions (`alarm-raised` /
/// `alarm-cleared`) as drift events, so scripted drills observe them
/// deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct SloPolicy {
    /// Alarm when the mean retries-per-job across all admitted jobs (and
    /// their monitor streams) reaches this.
    pub max_retry_rate: Option<f64>,
    /// Alarm when this many watched jobs are simultaneously degraded.
    pub max_degraded_watches: Option<u64>,
    /// Alarm when cumulative monitor poll failures reach this.
    pub max_poll_failures: Option<u64>,
    /// Alarm when cumulative contained handler panics reach this.
    pub max_handler_panics: Option<u64>,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            max_retry_rate: None,
            max_degraded_watches: Some(1),
            max_poll_failures: None,
            max_handler_panics: Some(1),
        }
    }
}

impl SloPolicy {
    /// Evaluate every configured threshold against the current counters,
    /// in fixed policy order (deterministic output).
    fn alarms(
        &self,
        jobs: &[JobHealthLine],
        degraded_watches: u64,
        poll_failures: u64,
        handler_panics: u64,
    ) -> Vec<AlarmLine> {
        let mut alarms = Vec::new();
        if let Some(threshold) = self.max_retry_rate {
            let retries: u64 = jobs.iter().map(|j| j.retries).sum();
            let value = retries as f64 / jobs.len().max(1) as f64;
            if !jobs.is_empty() && value >= threshold {
                alarms.push(AlarmLine {
                    alarm: "retry-rate".to_string(),
                    value,
                    threshold,
                    detail: format!("{retries} retries across {} job(s)", jobs.len()),
                });
            }
        }
        if let Some(threshold) = self.max_degraded_watches {
            if degraded_watches >= threshold {
                alarms.push(AlarmLine {
                    alarm: "degraded-watches".to_string(),
                    value: degraded_watches as f64,
                    threshold: threshold as f64,
                    detail: format!("{degraded_watches} watched job(s) degraded"),
                });
            }
        }
        if let Some(threshold) = self.max_poll_failures {
            if poll_failures >= threshold {
                alarms.push(AlarmLine {
                    alarm: "poll-failures".to_string(),
                    value: poll_failures as f64,
                    threshold: threshold as f64,
                    detail: format!("{poll_failures} monitor poll(s) failed past retries"),
                });
            }
        }
        if let Some(threshold) = self.max_handler_panics {
            if handler_panics >= threshold {
                alarms.push(AlarmLine {
                    alarm: "handler-panics".to_string(),
                    value: handler_panics as f64,
                    threshold: threshold as f64,
                    detail: format!("{handler_panics} request handler panic(s) contained"),
                });
            }
        }
        alarms
    }
}

/// TCP front-end counters, updated *outside* the server lock: admission
/// control must keep counting (and shedding) even while a slow request
/// holds the lock — that contention is exactly the overload it measures.
#[derive(Debug, Default)]
pub struct TcpCounters {
    /// Connections refused at the session cap.
    pub sessions_shed: AtomicU64,
    /// Requests shed because the per-request deadline expired.
    pub deadlines_expired: AtomicU64,
    /// Request lines refused for exceeding [`MAX_LINE_BYTES`].
    pub oversized_lines: AtomicU64,
}

/// TCP transport settings: admission control, deadlines, drain budget and
/// the background monitor cadence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpConfig {
    /// Concurrent client sessions admitted; connections past the cap get
    /// one `overloaded` response and are closed.
    pub session_cap: usize,
    /// How long one request may wait for the shared server before it is
    /// shed with an `overloaded` response (the session stays open).
    pub request_deadline: Duration,
    /// Backoff hint carried in `overloaded` responses.
    pub retry_after_ms: u64,
    /// How long a SIGTERM-triggered drain may wait for the server lock
    /// before the daemon exits without draining (the epoch journal still
    /// covers in-flight work).
    pub drain_timeout: Duration,
    /// Background monitor tick cadence (`None` disables).
    pub monitor_interval: Option<Duration>,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            session_cap: 64,
            request_deadline: Duration::from_secs(30),
            retry_after_ms: 250,
            drain_timeout: Duration::from_secs(30),
            monitor_interval: None,
        }
    }
}

impl ServerConfig {
    /// A reduced-cost configuration for tests and examples.
    pub fn fast() -> Self {
        ServerConfig {
            pretrain: PretrainConfig::fast(),
            ..ServerConfig::default()
        }
    }

    /// Same config with `parallelism` (worker pool + monitor fan-out).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self.monitor.parallelism = parallelism;
        self
    }
}

/// Largest `steps` one `tick` request may take (bounds how long a single
/// request can hold the shared server state).
pub const MAX_TICK_STEPS: u64 = 100_000;

/// How a [`Server`] came to own its model (for operator logging).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootstrapReport {
    /// The model was loaded from the store — no retraining happened.
    pub loaded_from_store: bool,
    /// Pre-training ran warm-started from a persisted GED-cache snapshot.
    pub warm_started: bool,
    /// Jobs restored from the persisted ledger.
    pub restored_jobs: usize,
    /// Jobs re-queued from epoch journals a dead process left mid-tune
    /// (they resume from their last journaled epoch on the next drain).
    pub resumed_jobs: usize,
    /// Corrupt store artifacts quarantined (and, where possible, replaced
    /// from backups) during bootstrap instead of refusing to boot.
    pub store_recoveries: usize,
}

/// Daemon-level fault counters surfaced by the `health` verb.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthCounters {
    /// Corrupt store artifacts quarantined/recovered at bootstrap.
    pub store_recoveries: u64,
    /// Poisoned server locks recovered instead of propagating the panic.
    pub lock_recoveries: u64,
    /// Request handlers (or background monitor ticks) that panicked and
    /// were contained.
    pub handler_panics: u64,
}

/// The long-running tuning daemon.
#[derive(Debug)]
pub struct Server {
    manager: JobManager,
    cache: GedCache,
    store: Option<ModelStore>,
    corpus: Vec<ExecutionRecord>,
    monitor: Monitor,
    config: ServerConfig,
    health: HealthCounters,
    /// Shared with the TCP front end (cloned out before the accept loop)
    /// so shed/deadline/oversized counting never needs the server lock.
    tcp: Arc<TcpCounters>,
    /// Alarm names raised as of the last monitor tick, for
    /// `alarm-raised`/`alarm-cleared` transition events.
    active_alarms: Vec<String>,
}

impl Server {
    /// A server over an already-built model. `cache` is the GED cache the
    /// model was trained through (snapshotted on the `snapshot` verb);
    /// `corpus` is the history it was trained on (grown on structure
    /// drift); `store` enables `snapshot` and restart-resume.
    pub fn new(
        pretrained: Pretrained,
        cache: GedCache,
        store: Option<ModelStore>,
        corpus: Vec<ExecutionRecord>,
        config: ServerConfig,
    ) -> Self {
        crate::expose::register_build_info(config.parallelism);
        Server {
            manager: JobManager::new(pretrained, config.parallelism)
                .with_retry(config.retry)
                .with_chaos(config.chaos)
                .with_journal_dir(store.as_ref().map(|s| s.journal_dir())),
            cache,
            store,
            corpus,
            monitor: Monitor::new(config.monitor.clone()),
            config,
            health: HealthCounters::default(),
            tcp: Arc::new(TcpCounters::default()),
            active_alarms: Vec::new(),
        }
    }

    /// Build a server from the store when possible, pre-training only on
    /// a store miss.
    ///
    /// * Store has a model → load it (plus cache snapshot, corpus and job
    ///   ledger); **no retraining**.
    /// * Store has only a GED-cache snapshot (e.g. a prior run was
    ///   interrupted after clustering) → pre-train warm-started from it.
    /// * Otherwise → cold pre-train. With a store configured, the fresh
    ///   model, cache and corpus are persisted immediately.
    ///
    /// **Corrupt artifacts never block the boot**: a damaged `model.json`
    /// is quarantined and the rotated `model.json.bak` promoted in its
    /// place (falling through to a cold pre-train only when both are
    /// gone); damaged cache/corpus/ledger files are quarantined and
    /// treated as absent. Every recovery is logged to stderr and counted
    /// in [`BootstrapReport::store_recoveries`] and the `health` verb.
    ///
    /// `corpus_recipe` supplies the pre-training history and is only
    /// invoked on a store miss, so a warm start never pays corpus
    /// generation; `config.pretrain` governs both the cold path and every
    /// later incremental re-pretrain.
    pub fn bootstrap(
        store: Option<ModelStore>,
        config: ServerConfig,
        corpus_recipe: impl FnOnce() -> Vec<ExecutionRecord>,
    ) -> Result<(Self, BootstrapReport), ServeError> {
        let mut recoveries: Vec<String> = Vec::new();
        let mut recovered_model = None;
        if let Some(store) = &store {
            let recovery = store.recover_model()?;
            recoveries.extend(recovery.events);
            recovered_model = recovery.model;
        }
        if let Some(pretrained) = recovered_model {
            let store = store.as_ref().expect("a recovered model implies a store");
            let (snapshot, event) = store.read_or_quarantine(&store.ged_cache_path())?;
            recoveries.extend(event);
            let cache = match snapshot {
                Some(snapshot) => GedCache::from_snapshot(snapshot)?,
                None => GedCache::new(Bound::LabelSet, pretrained.ged_cap),
            };
            let (corpus, event) = store.read_or_quarantine(&store.corpus_path())?;
            recoveries.extend(event);
            let (ledger, event) =
                store.read_or_quarantine::<Vec<crate::job::PersistedJob>>(&store.jobs_path())?;
            recoveries.extend(event);
            let ledger = ledger.unwrap_or_default();
            let restored_jobs = ledger.len();
            let (decisions, event) =
                store.read_or_quarantine::<Vec<crate::DecisionRecord>>(&store.decisions_path())?;
            recoveries.extend(event);
            for event in &recoveries {
                emit(
                    Level::Warn,
                    "serve.store",
                    format!("store recovery: {event}"),
                );
            }
            let store_recoveries = recoveries.len();
            let mut server = Server::new(
                pretrained,
                cache,
                Some(store.clone()),
                corpus.unwrap_or_default(),
                config,
            );
            server.manager.restore(ledger)?;
            server
                .manager
                .restore_decisions(decisions.unwrap_or_default());
            // Epoch journals left by a process that died mid-tune (or
            // between admission and snapshot) re-queue their jobs with the
            // journaled prefix attached — the next drain replays it.
            let resumed_jobs = server.manager.recover_journals();
            server.health.store_recoveries = store_recoveries as u64;
            return Ok((
                server,
                BootstrapReport {
                    loaded_from_store: true,
                    warm_started: false,
                    restored_jobs,
                    resumed_jobs,
                    store_recoveries,
                },
            ));
        }
        let corpus = corpus_recipe();
        let snapshot = if let Some(store) = &store {
            let (snapshot, event) = store.read_or_quarantine(&store.ged_cache_path())?;
            recoveries.extend(event);
            snapshot
        } else {
            None
        };
        let warm_started = snapshot.is_some();
        let mut cache = match snapshot {
            Some(snapshot) => GedCache::from_snapshot(snapshot)?,
            None => GedCache::new(Bound::LabelSet, config.pretrain.cluster.ged_cap),
        };
        let pretrained =
            Pretrainer::new(config.pretrain.clone()).run_with_cache(&corpus, &mut cache);
        if let Some(store) = &store {
            store.save_model(&pretrained)?;
            store.save_ged_cache(&cache.snapshot())?;
            store.save_corpus(&corpus)?;
            // A fresh model invalidates any ledger left by a previous
            // model epoch (e.g. the operator deleted model.json to force
            // a retrain): without this, the next restart would resurrect
            // results computed under the old model as if they were new.
            store.save_jobs(&[])?;
            // The same goes for epoch journals: they recorded runs under
            // the previous model and would only replay-diverge.
            let _ = std::fs::remove_dir_all(store.journal_dir());
        }
        for event in &recoveries {
            emit(
                Level::Warn,
                "serve.store",
                format!("store recovery: {event}"),
            );
        }
        let store_recoveries = recoveries.len();
        let mut server = Server::new(pretrained, cache, store, corpus, config);
        server.health.store_recoveries = store_recoveries as u64;
        Ok((
            server,
            BootstrapReport {
                loaded_from_store: false,
                warm_started,
                restored_jobs: 0,
                resumed_jobs: 0,
                store_recoveries,
            },
        ))
    }

    /// The shared model corpus.
    pub fn pretrained(&self) -> &Pretrained {
        self.manager.pretrained()
    }

    /// The job manager (for in-process drivers and tests).
    pub fn manager(&self) -> &JobManager {
        &self.manager
    }

    /// The drift monitor (for in-process drivers and tests).
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// The execution-history corpus the live model was trained on.
    pub fn corpus(&self) -> &[ExecutionRecord] {
        &self.corpus
    }

    /// Drain every queued job, then stamp the daemon cache's provenance
    /// counters into the decisions that run produced. The annotation is
    /// post-hoc by design: run workers share the corpus read-only and
    /// never see the server's [`GedCache`], so the counters describe the
    /// cache at decision-publication time — deterministic inputs only,
    /// nothing fed back into tuning.
    fn drain_jobs(&mut self) {
        self.manager.drain();
        self.manager
            .annotate_cache(self.cache.stats(), self.cache.len() as u64);
    }

    /// Persist model, GED cache, corpus, (rotated) job ledger and the
    /// decision audit trail.
    fn snapshot(&mut self) -> Result<String, ServeError> {
        // Drain first so the ledger only holds terminal states; compact so
        // it stays bounded on long-lived daemons.
        self.drain_jobs();
        self.manager.compact(self.config.ledger_cap);
        let store = self.store.as_ref().ok_or(ServeError::NoStore)?;
        store.save_model(self.manager.pretrained())?;
        store.save_ged_cache(&self.cache.snapshot())?;
        store.save_corpus(&self.corpus)?;
        store.save_jobs(&self.manager.persistable())?;
        store.save_decisions(self.manager.decisions())?;
        // Every result the journals were protecting is now in the ledger;
        // journals for terminal jobs are dead weight.
        self.manager.sweep_journals();
        Ok(store.dir().display().to_string())
    }

    /// Register a finished job with the drift monitor. Returns whether its
    /// DAG structure is covered by the pre-trained corpus.
    fn watch_job(&mut self, name: &str, schedule: Option<Vec<f64>>) -> Result<bool, ServeError> {
        self.drain_jobs();
        let job = self
            .manager
            .job(name)
            .ok_or_else(|| ServeError::UnknownJob {
                name: name.to_string(),
            })?;
        let JobState::Done(result) = &job.state else {
            return Err(ServeError::NoResult {
                name: name.to_string(),
                state: job.state.name().to_string(),
            });
        };
        if matches!(job.spec.backend, BackendSpec::Replay(_)) {
            return Err(ServeError::NotWatchable {
                name: name.to_string(),
            });
        }
        let spec = job.spec.clone();
        let assignment = result.outcome.final_assignment.clone();
        let workload =
            find_workload(&spec.query, spec.engine).ok_or_else(|| ServeError::UnknownWorkload {
                query: spec.query.clone(),
            })?;
        let flow = workload.at(spec.multiplier);
        let distance = structure_distance(&mut self.cache, &flow, self.manager.pretrained());
        let covered = distance <= self.config.monitor.detector.structure_tau;
        // The monitor polls the same ground-truth cluster the job runs on
        // (same per-spec seed); monitor epochs are disjoint from tuning
        // epochs, so the readings are fresh, not replays. A chaos job
        // keeps its fault plan on the monitoring path too — the stream's
        // retry loop and the monitor's degrade policy are what make that
        // survivable.
        let sim = match spec.engine {
            Engine::Flink => SimCluster::flink_defaults(spec.seed),
            Engine::Timely => SimCluster::timely_defaults(spec.seed),
        };
        let backend: Box<dyn ExecutionBackend + Send> = match &spec.backend {
            BackendSpec::Chaos(plan) => Box::new(ChaosBackend::new(sim, *plan)),
            // A live job is re-connected fresh for the watch: monitor
            // polls must not share connection state with the tuning run.
            BackendSpec::Flink(url) => {
                Box::new(streamtune_connect::FlinkBackend::connect(url).map_err(|e| {
                    ServeError::Io {
                        context: format!("connect flink backend to watch `{}`", spec.name),
                        message: e.to_string(),
                    }
                })?)
            }
            // An ingested dump replays from its first window for the
            // watch, so the monitor walks the dump's whole timeline.
            BackendSpec::Ingest(path) => {
                let report = streamtune_connect::ingest_file(
                    path,
                    &streamtune_connect::IngestConfig::default(),
                )
                .map_err(|e| ServeError::Io {
                    context: format!("ingest `{path}` to watch `{}`", spec.name),
                    message: e.to_string(),
                })?;
                Box::new(streamtune_backend::ReplayBackend::new(report.log))
            }
            _ => Box::new(sim),
        };
        self.monitor.watch(
            WatchSpec {
                name: spec.name,
                workload,
                multiplier: spec.multiplier,
                schedule,
                assignment,
                structure_covered: covered,
            },
            backend,
        )?;
        Ok(covered)
    }

    /// Re-tune `job` at `multiplier` through the job manager and tell the
    /// monitor about the new deployment. The re-tune re-runs the job as a
    /// pure function of `(pretrained, spec)`, so it is bit-identical to a
    /// manual re-submit at the same rate.
    fn retune(&mut self, job: &str, multiplier: f64) -> Result<(), ServeError> {
        let mut spec = self
            .manager
            .job(job)
            .ok_or_else(|| ServeError::UnknownJob {
                name: job.to_string(),
            })?
            .spec
            .clone();
        spec.multiplier = multiplier;
        self.manager.resubmit(spec)?;
        self.drain_jobs();
        match &self.manager.job(job).expect("job still admitted").state {
            JobState::Done(result) => {
                self.monitor.on_retuned(
                    job,
                    result.outcome.final_assignment.clone(),
                    multiplier,
                )?;
                Ok(())
            }
            other => Err(ServeError::NoResult {
                name: job.to_string(),
                state: other.name().to_string(),
            }),
        }
    }

    /// Grow the corpus to cover `job`'s DAG, re-pretrain warm, swap the
    /// model in, re-assign live jobs and re-tune the drifted job under
    /// the new model. Returns a human-readable summary.
    fn grow_for(&mut self, job: &str) -> Result<String, ServeError> {
        if self.corpus.is_empty() {
            return Err(ServeError::NoCorpus);
        }
        let spec = self
            .manager
            .job(job)
            .ok_or_else(|| ServeError::UnknownJob {
                name: job.to_string(),
            })?
            .spec
            .clone();
        let workload =
            find_workload(&spec.query, spec.engine).ok_or_else(|| ServeError::UnknownWorkload {
                query: spec.query.clone(),
            })?;
        let new_records = grow_records(&workload, spec.engine, spec.seed, self.config.grow_runs);
        let (pretrained, report) = grow_and_pretrain(
            &self.config.pretrain,
            &mut self.corpus,
            new_records,
            &mut self.cache,
        );
        let reassigned = self.manager.swap_pretrained(pretrained);
        self.monitor.mark_structure_covered(job)?;
        self.retune(job, spec.multiplier)?;
        if let Some(store) = &self.store {
            store.save_model(self.manager.pretrained())?;
            store.save_ged_cache(&self.cache.snapshot())?;
            store.save_corpus(&self.corpus)?;
        }
        Ok(format!(
            "corpus grew by {} to {} record(s); warm re-pretrain ran {} A* search(es) into {} \
             cluster(s); {} job(s) re-assigned",
            report.added_records,
            report.corpus_records,
            report.new_searches,
            report.clusters,
            reassigned
        ))
    }

    /// Apply the adaptation policy to one detected drift.
    fn apply_drift(&mut self, event: DriftEvent) -> DriftEventLine {
        match event {
            DriftEvent::RateDrift {
                job,
                from_multiplier,
                to_multiplier,
            } => {
                let detail = match self.retune(&job, to_multiplier) {
                    Ok(()) => {
                        format!("re-tuned at {from_multiplier} → {to_multiplier}×Wu")
                    }
                    Err(e) => format!("re-tune failed: {e}"),
                };
                DriftEventLine {
                    job,
                    kind: "rate-drift".to_string(),
                    detail,
                }
            }
            DriftEvent::StructureDrift { job } => {
                let detail = match self.grow_for(&job) {
                    Ok(summary) => summary,
                    Err(e) => format!("incremental re-pretrain failed: {e}"),
                };
                DriftEventLine {
                    job,
                    kind: "structure-drift".to_string(),
                    detail,
                }
            }
            DriftEvent::PollFailed { job, message } => DriftEventLine {
                job,
                kind: "poll-failed".to_string(),
                detail: message,
            },
            DriftEvent::Degraded { job, message } => DriftEventLine {
                job,
                kind: "degraded".to_string(),
                detail: message,
            },
            DriftEvent::Recovered { job } => DriftEventLine {
                job,
                kind: "recovered".to_string(),
                detail: "backend answering again; drift detection resumed".to_string(),
            },
        }
    }

    /// Assemble the fault-tolerance ledger for the `health` verb. Pure
    /// observability: reads counters, runs nothing, perturbs nothing.
    fn health_report(&self) -> HealthReport {
        let jobs: Vec<JobHealthLine> = self
            .manager
            .jobs()
            .iter()
            .map(|j| {
                // A watched job's monitor stream retries independently of
                // the tuning runs; its counters belong to the same job.
                let mut retry = j.retry;
                if let Some(stream) = self.monitor.stream_retry_stats(&j.spec.name) {
                    retry.absorb(&stream);
                }
                JobHealthLine {
                    job: j.spec.name.clone(),
                    state: j.state.name().to_string(),
                    transient_faults: retry.transient_faults,
                    retries: retry.retries,
                    exhausted: retry.exhausted,
                    permanent_failures: retry.permanent_failures,
                    backoff_minutes: retry.backoff_minutes,
                }
            })
            .collect();
        let drift = self.monitor.status();
        let degraded_watches = drift.iter().filter(|line| line.degraded).count() as u64;
        let poll_failures = drift.iter().map(|line| line.poll_failures).sum();
        let alarms = self.config.slo.alarms(
            &jobs,
            degraded_watches,
            poll_failures,
            self.health.handler_panics,
        );
        HealthReport {
            version: env!("CARGO_PKG_VERSION").to_string(),
            uptime_seconds: crate::expose::uptime_seconds(),
            parallelism: crate::expose::parallelism_label(self.config.parallelism),
            jobs,
            watched: drift.len() as u64,
            degraded_watches,
            poll_failures,
            store_recoveries: self.health.store_recoveries,
            lock_recoveries: self.health.lock_recoveries,
            handler_panics: self.health.handler_panics,
            sessions_shed: self.tcp.sessions_shed.load(Ordering::Relaxed),
            deadlines_expired: self.tcp.deadlines_expired.load(Ordering::Relaxed),
            oversized_lines: self.tcp.oversized_lines.load(Ordering::Relaxed),
            alarms,
        }
    }

    /// Advance the monitor by `steps` observe→detect→adapt ticks,
    /// applying the adaptation policy to every detected drift.
    pub fn tick_monitor(&mut self, steps: u64) -> TickReport {
        // A child under the `tick` verb's request span, a root of its own
        // when the background loop drives the tick.
        let mut span =
            streamtune_telemetry::span_or_root("monitor_tick", "serve.monitor", "monitor_tick");
        span.add_field("steps", steps);
        let mut events = Vec::new();
        for _ in 0..steps {
            for event in self.monitor.tick() {
                events.push(self.apply_drift(event));
            }
        }
        // Every tick also lands one metrics-history frame, so the delta
        // ring advances at the monitor cadence without any scraper.
        crate::expose::record_history_frame();
        // SLO alarm transitions ride the tick stream: the alarms
        // themselves are stateless projections of the counters, so only
        // the *edges* need announcing.
        let alarms = self.health_report().alarms;
        for alarm in &alarms {
            if !self.active_alarms.contains(&alarm.alarm) {
                events.push(DriftEventLine {
                    job: "daemon".to_string(),
                    kind: "alarm-raised".to_string(),
                    detail: format!(
                        "{}: {} reached threshold {} ({})",
                        alarm.alarm, alarm.value, alarm.threshold, alarm.detail
                    ),
                });
            }
        }
        for name in &self.active_alarms {
            if !alarms.iter().any(|a| &a.alarm == name) {
                events.push(DriftEventLine {
                    job: "daemon".to_string(),
                    kind: "alarm-cleared".to_string(),
                    detail: format!("{name}: back under threshold"),
                });
            }
        }
        self.active_alarms = alarms.into_iter().map(|a| a.alarm).collect();
        TickReport {
            steps,
            watched: self.monitor.watched() as u64,
            events,
        }
    }

    /// Serve one request. Returns the response and whether the server
    /// should stop after sending it. Every request lands in the per-verb
    /// `streamtune_requests_total` / `streamtune_request_duration_nanoseconds`
    /// series — recording is observational, the response is computed first.
    pub fn handle(&mut self, request: &Request) -> (Response, bool) {
        let started = Instant::now();
        // Nested under the transport's dispatch span over TCP; the root
        // of its own trace over stdio / in-process buffers.
        let _span = streamtune_telemetry::span_or_root(
            request.verb(),
            "serve.handle",
            format!("handle:{}", request.verb()),
        );
        let response = match request {
            Request::Submit(spec) => {
                let job = spec.name.clone();
                match self.manager.submit(spec.clone()) {
                    Ok(cluster) => Response::Submitted { job, cluster },
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                }
            }
            Request::Status => {
                self.drain_jobs();
                Response::Status(StatusReport {
                    jobs: self.manager.status_lines(),
                    store: self.store.as_ref().map(|s| s.stats()),
                })
            }
            Request::Recommend { job } => {
                self.drain_jobs();
                match self.manager.job(job) {
                    None => Response::Error {
                        message: ServeError::UnknownJob { name: job.clone() }.to_string(),
                    },
                    Some(j) => match &j.state {
                        JobState::Done(result) => Response::Recommendation(Recommendation {
                            job: job.clone(),
                            query: j.spec.query.clone(),
                            cluster: result.cluster,
                            op_names: result.op_names.clone(),
                            degrees: result.outcome.final_assignment.as_slice().to_vec(),
                            total: result.outcome.final_assignment.total(),
                            reconfigurations: result.outcome.reconfigurations,
                            backpressure_events: result.outcome.backpressure_events,
                            elapsed_minutes: result.outcome.elapsed_minutes,
                            iterations: result.outcome.iterations,
                            converged: result.outcome.converged,
                        }),
                        other => Response::Error {
                            message: ServeError::NoResult {
                                name: job.clone(),
                                state: other.name().to_string(),
                            }
                            .to_string(),
                        },
                    },
                }
            }
            Request::Cancel { job } => match self.manager.cancel(job) {
                Ok(()) => Response::Cancelled { job: job.clone() },
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            },
            Request::Watch { job, schedule } => match self.watch_job(job, schedule.clone()) {
                Ok(covered) => Response::Watching {
                    job: job.clone(),
                    covered,
                },
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            },
            Request::Unwatch { job } => match self.monitor.unwatch(job) {
                Ok(()) => Response::Unwatched { job: job.clone() },
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            },
            Request::DriftStatus => Response::Drift {
                watches: self.monitor.status(),
                alarms: self.health_report().alarms,
            },
            Request::Health => Response::Health(self.health_report()),
            Request::Metrics => Response::Metrics(crate::expose::metrics_value()),
            Request::Tick { steps } => {
                // One request must not hold the shared server lock for an
                // unbounded time: a huge (or fat-fingered) steps value
                // would freeze every other client and the background loop.
                if *steps > MAX_TICK_STEPS {
                    Response::Error {
                        message: format!(
                            "tick steps {steps} exceeds the per-request cap {MAX_TICK_STEPS} \
                             (send several smaller ticks instead)"
                        ),
                    }
                } else {
                    Response::Ticked(self.tick_monitor(*steps))
                }
            }
            Request::Snapshot => match self.snapshot() {
                Ok(dir) => Response::Snapshotted { dir },
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            },
            // Graceful drain: finish every queued job (journaling as it
            // goes), flush the store when one is configured, then stop.
            // Storeless daemons still drain — their results just live only
            // in the reply stream.
            Request::Drain => {
                let dir = match self.snapshot() {
                    Ok(dir) => Some(dir),
                    Err(ServeError::NoStore) => {
                        self.drain_jobs();
                        None
                    }
                    Err(e) => {
                        ServeMetrics::get().record_request(request.verb(), started.elapsed());
                        return (
                            Response::Error {
                                message: format!("drain: {e}"),
                            },
                            true,
                        );
                    }
                };
                Response::Draining {
                    jobs: self.manager.jobs().len() as u64,
                    dir,
                }
            }
            // Flight-recorder verbs: read the global trace store, the
            // decision trail and the metrics-history ring. All three are
            // raw JSON payloads (forward-compatible, like `metrics`).
            Request::Trace { label } => {
                Response::Trace(crate::expose::trace_value(label.as_deref()))
            }
            Request::Explain { job } => {
                // Drain first: an `explain` right after `submit` should
                // answer for the run it implies, like `recommend` does.
                self.drain_jobs();
                match self.manager.decision_for(job) {
                    Some(decision) => Response::Explained(decision.to_value()),
                    None => Response::Error {
                        message: format!(
                            "no decision recorded for job `{job}` (it never completed a \
                             tuning run, or the trail was compacted past it)"
                        ),
                    },
                }
            }
            Request::MetricsHistory => {
                // Each read appends a frame first, so scripted stdio
                // sessions (no endpoint, no background ticks) still see
                // their own interval.
                crate::expose::record_history_frame();
                Response::MetricsHistory(crate::expose::history_value())
            }
            Request::Shutdown => Response::ShuttingDown,
        };
        ServeMetrics::get().record_request(request.verb(), started.elapsed());
        (
            response,
            matches!(request, Request::Shutdown | Request::Drain),
        )
    }

    /// Serve line-delimited requests from `input`, writing one response
    /// line each to `output`, until `shutdown`, end of input, or an I/O
    /// failure. Blank lines and `#` comment lines are skipped (so scripts
    /// can be annotated). Returns whether `shutdown` was received.
    pub fn serve(
        &mut self,
        input: impl BufRead,
        mut output: impl Write,
    ) -> Result<bool, ServeError> {
        let io_err = |context: &str, e: std::io::Error| ServeError::Io {
            context: context.to_string(),
            message: e.to_string(),
        };
        for line in input.lines() {
            let line = line.map_err(|e| io_err("read request", e))?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let (response, stop) = match parse_request(trimmed) {
                Ok(request) => self.handle(&request),
                Err(e) => (
                    Response::Error {
                        message: format!("bad request: {e}"),
                    },
                    false,
                ),
            };
            writeln!(output, "{}", render_response(&response))
                .map_err(|e| io_err("write response", e))?;
            output.flush().map_err(|e| io_err("flush response", e))?;
            if stop {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Serve TCP connections **concurrently**: every accepted client gets
    /// its own session thread over the shared server state (one request is
    /// handled at a time under the lock; the parallelism lives in the
    /// worker pool under `drain` and the monitor fan-out, where it is
    /// deterministic). A connection-level failure — a client resetting the
    /// socket mid-session, a broken pipe on the response, half a line at
    /// disconnect — ends only that connection (logged to stderr); the
    /// daemon keeps accepting. Only a broken *listener* is fatal.
    ///
    /// With `monitor_interval` set, the accept loop doubles as the
    /// **background monitor loop**: whenever the interval elapses it takes
    /// one observe→detect→adapt tick (logging applied adaptations to
    /// stderr). Returns once any client sends `shutdown`.
    pub fn serve_tcp(
        server: &Mutex<Server>,
        listener: &TcpListener,
        monitor_interval: Option<Duration>,
    ) -> Result<(), ServeError> {
        Server::serve_tcp_with(
            server,
            listener,
            TcpConfig {
                monitor_interval,
                ..TcpConfig::default()
            },
        )
    }

    /// [`Server::serve_tcp`] with explicit transport settings: session-cap
    /// admission control, per-request deadlines and SIGTERM-triggered
    /// graceful drain (see [`TcpConfig`]).
    ///
    /// **Admission control**: at most `session_cap` concurrent sessions;
    /// a connection past the cap receives one structured `overloaded`
    /// response (with a retry-after hint) and is closed — the daemon sheds
    /// load instead of queueing it without bound. A request that cannot
    /// take the shared server lock within `request_deadline` is likewise
    /// answered `overloaded` (the session survives). Both are counted in
    /// `health` without touching the server lock.
    ///
    /// **Graceful drain**: a SIGTERM (Unix) behaves like a `drain` verb
    /// from the outside: stop accepting, finish and journal in-flight
    /// work, flush the store, exit. If the server lock cannot be taken
    /// within `drain_timeout` (a wedged handler), the daemon exits
    /// without draining — the epoch journal still covers every observed
    /// epoch, so a restart resumes rather than recomputes.
    pub fn serve_tcp_with(
        server: &Mutex<Server>,
        listener: &TcpListener,
        config: TcpConfig,
    ) -> Result<(), ServeError> {
        listener.set_nonblocking(true).map_err(|e| ServeError::Io {
            context: "set listener nonblocking".to_string(),
            message: e.to_string(),
        })?;
        install_sigterm_handler();
        let tcp = lock_server(server).tcp.clone();
        let shutdown = AtomicBool::new(false);
        let sessions = AtomicUsize::new(0);
        let mut last_tick = Instant::now();
        let mut fatal: Option<ServeError> = None;
        std::thread::scope(|scope| {
            while !shutdown.load(Ordering::SeqCst) {
                if sigterm_pending() {
                    emit(
                        Level::Warn,
                        "serve.tcp",
                        "SIGTERM: draining (finish + journal in-flight work, flush store)",
                    );
                    drain_on_term(server, config.drain_timeout);
                    shutdown.store(true, Ordering::SeqCst);
                    break;
                }
                match listener.accept() {
                    Ok((mut stream, peer)) => {
                        // The cap counts *admitted* sessions; shed beyond
                        // it with a structured response, never silence.
                        if sessions.load(Ordering::SeqCst) >= config.session_cap {
                            tcp.sessions_shed.fetch_add(1, Ordering::Relaxed);
                            let response = Response::Overloaded {
                                retry_after_ms: config.retry_after_ms,
                                reason: "session-cap".to_string(),
                            };
                            let _ = writeln!(stream, "{}", render_response(&response));
                            let _ = stream.flush();
                            continue;
                        }
                        sessions.fetch_add(1, Ordering::SeqCst);
                        let peer = peer.to_string();
                        let shutdown = &shutdown;
                        let sessions = &sessions;
                        let tcp = &tcp;
                        scope.spawn(move || {
                            if let Err(e) = serve_connection(server, stream, shutdown, tcp, &config)
                            {
                                emit(
                                    Level::Warn,
                                    "serve.tcp",
                                    format!("connection from {peer} ended: {e}"),
                                );
                            }
                            sessions.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if let Some(interval) = config.monitor_interval {
                            if last_tick.elapsed() >= interval {
                                last_tick = Instant::now();
                                let mut guard = lock_server(server);
                                match catch_unwind(AssertUnwindSafe(|| guard.tick_monitor(1))) {
                                    Ok(report) => {
                                        for event in &report.events {
                                            emit(
                                                Level::Info,
                                                "serve.monitor",
                                                format!(
                                                    "{} [{}] {}",
                                                    event.job, event.kind, event.detail
                                                ),
                                            );
                                        }
                                    }
                                    Err(payload) => {
                                        guard.health.handler_panics += 1;
                                        emit(
                                            Level::Error,
                                            "serve.monitor",
                                            format!(
                                                "background tick panicked (contained): {}",
                                                panic_message(payload.as_ref())
                                            ),
                                        );
                                    }
                                }
                            }
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(e) => {
                        fatal = Some(ServeError::Io {
                            context: "accept connection".to_string(),
                            message: e.to_string(),
                        });
                        shutdown.store(true, Ordering::SeqCst);
                    }
                }
            }
        });
        match fatal {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Run the drain sequence for a SIGTERM, waiting at most `timeout` for
/// the server lock. A lock that never frees means a wedged handler; the
/// journal already holds every observed epoch, so exiting without the
/// final flush loses nothing that matters.
fn drain_on_term(server: &Mutex<Server>, timeout: Duration) {
    let start = Instant::now();
    loop {
        match server.try_lock() {
            Ok(mut guard) => {
                let (response, _) = guard.handle(&Request::Drain);
                emit(
                    Level::Warn,
                    "serve.tcp",
                    format!("SIGTERM drain: {}", render_response(&response)),
                );
                return;
            }
            Err(TryLockError::Poisoned(poisoned)) => {
                server.clear_poison();
                let mut guard = poisoned.into_inner();
                guard.health.lock_recoveries += 1;
                let (response, _) = guard.handle(&Request::Drain);
                emit(
                    Level::Error,
                    "serve.tcp",
                    format!(
                        "SIGTERM drain (recovered lock): {}",
                        render_response(&response)
                    ),
                );
                return;
            }
            Err(TryLockError::WouldBlock) => {
                if start.elapsed() >= timeout {
                    emit(
                        Level::Error,
                        "serve.tcp",
                        format!(
                            "SIGTERM drain: server lock still held after {timeout:?}; \
                             exiting on the journal"
                        ),
                    );
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

#[cfg(unix)]
mod sigterm {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set by the signal handler, consumed by the accept loop.
    static TERM: AtomicBool = AtomicBool::new(false);

    /// Only async-signal-safe work here: set a flag and return.
    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // `signal(2)` via libc (already linked by std on Unix): the
        // workspace is dependency-free, so no signal-handling crate.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
        }
    }

    pub fn pending() -> bool {
        TERM.swap(false, Ordering::SeqCst)
    }
}

/// Install the SIGTERM→drain flag handler (no-op off Unix).
fn install_sigterm_handler() {
    #[cfg(unix)]
    sigterm::install();
}

/// Whether a SIGTERM arrived since the last check (always false off Unix).
fn sigterm_pending() -> bool {
    #[cfg(unix)]
    return sigterm::pending();
    #[cfg(not(unix))]
    false
}

/// Largest request line a connection may send (bytes, newline excluded).
/// A client streaming an endless line would otherwise grow the session
/// buffer without bound; at the cap the daemon answers with an error and
/// closes only that connection.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Lock the shared server, *recovering* a poisoned lock.
///
/// The lock only poisons if a handler panicked while holding it; every
/// dispatch path wraps handlers in `catch_unwind`, so poison here means a
/// panic escaped some unguarded path. The state itself is still
/// consistent enough to serve (handlers mutate through `&mut self` in
/// small steps and jobs are independent), and a daemon that answers
/// `error` beats one that unwinds every connection thread — so recover,
/// count it, and keep serving.
fn lock_server<'a>(server: &'a Mutex<Server>) -> MutexGuard<'a, Server> {
    let waited = Instant::now();
    let guard = match server.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            server.clear_poison();
            let mut guard = poisoned.into_inner();
            guard.health.lock_recoveries += 1;
            emit(
                Level::Error,
                "serve.lock",
                "server lock was poisoned; recovered and serving on",
            );
            guard
        }
    };
    ServeMetrics::get().record_lock_wait(waited.elapsed());
    guard
}

/// Dispatch one parsed request under the shared lock, containing handler
/// panics: a panic becomes an `error` response plus a health counter, and
/// because the guard outlives the `catch_unwind` closure the lock is
/// released normally — not poisoned — afterwards.
///
/// With a `deadline`, the lock is polled instead of blocked on: a request
/// that cannot be served within the deadline is shed with an `overloaded`
/// response (counted in `tcp`), so one slow drain cannot stack every
/// other session behind it without bound.
fn dispatch(
    server: &Mutex<Server>,
    request: &Request,
    deadline: Option<(&TcpCounters, &TcpConfig)>,
) -> (Response, bool) {
    // One trace per TCP request, labeled by verb: the lock wait and the
    // handler (and everything the handler fans out to) nest under it.
    let _root = streamtune_telemetry::root_span(request.verb(), "serve.dispatch", "dispatch");
    let lock_span = streamtune_telemetry::child_span("serve.dispatch", "lock_acquire");
    let mut guard = match deadline {
        None => lock_server(server),
        Some((tcp, config)) => {
            let start = Instant::now();
            let guard = loop {
                match server.try_lock() {
                    Ok(guard) => break guard,
                    Err(TryLockError::Poisoned(poisoned)) => {
                        server.clear_poison();
                        let mut guard = poisoned.into_inner();
                        guard.health.lock_recoveries += 1;
                        emit(
                            Level::Error,
                            "serve.lock",
                            "server lock was poisoned; recovered and serving on",
                        );
                        break guard;
                    }
                    Err(TryLockError::WouldBlock) => {
                        if start.elapsed() >= config.request_deadline {
                            tcp.deadlines_expired.fetch_add(1, Ordering::Relaxed);
                            return (
                                Response::Overloaded {
                                    retry_after_ms: config.retry_after_ms,
                                    reason: "deadline".to_string(),
                                },
                                false,
                            );
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            };
            ServeMetrics::get().record_lock_wait(start.elapsed());
            guard
        }
    };
    // Close the lock-wait span before the handler runs: the handler's
    // span is a *sibling* of the wait, not its child.
    drop(lock_span);
    match catch_unwind(AssertUnwindSafe(|| guard.handle(request))) {
        Ok(result) => result,
        Err(payload) => {
            guard.health.handler_panics += 1;
            (
                Response::Error {
                    message: format!(
                        "internal error: request handler panicked: {}",
                        panic_message(payload.as_ref())
                    ),
                },
                false,
            )
        }
    }
}

/// One client session over the shared server. Reads with a short timeout
/// so the thread notices a daemon-wide shutdown even while its client is
/// idle; partial lines survive timeouts (the buffer accumulates until the
/// newline arrives), but only up to [`MAX_LINE_BYTES`].
fn serve_connection(
    server: &Mutex<Server>,
    stream: TcpStream,
    shutdown: &AtomicBool,
    tcp: &TcpCounters,
    config: &TcpConfig,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut buf = String::new();
    let refuse_oversized = |writer: &mut TcpStream, got: usize| -> std::io::Result<()> {
        tcp.oversized_lines.fetch_add(1, Ordering::Relaxed);
        let response = Response::Error {
            message: format!(
                "request line exceeds {MAX_LINE_BYTES} bytes (got at least {got}); \
                 closing connection"
            ),
        };
        writeln!(writer, "{}", render_response(&response))?;
        writer.flush()
    };
    loop {
        match reader.read_line(&mut buf) {
            Ok(0) => return Ok(()), // client disconnected
            Ok(_) => {
                if buf.len() > MAX_LINE_BYTES {
                    return refuse_oversized(&mut writer, buf.len());
                }
                let trimmed = buf.trim().to_string();
                buf.clear();
                if trimmed.is_empty() || trimmed.starts_with('#') {
                    continue;
                }
                let (response, stop) = match parse_request(&trimmed) {
                    Ok(request) => dispatch(server, &request, Some((tcp, config))),
                    Err(e) => (
                        Response::Error {
                            message: format!("bad request: {e}"),
                        },
                        false,
                    ),
                };
                writeln!(writer, "{}", render_response(&response))?;
                writer.flush()?;
                if stop {
                    shutdown.store(true, Ordering::SeqCst);
                    return Ok(());
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // `read_line` appends whatever arrived before the timeout,
                // so an endless unterminated line grows `buf` here too.
                if buf.len() > MAX_LINE_BYTES {
                    return refuse_oversized(&mut writer, buf.len());
                }
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e) => return Err(e),
        }
    }
}
