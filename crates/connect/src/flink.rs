//! [`FlinkBackend`]: an [`ExecutionBackend`] speaking the Flink REST
//! surface over the minimal HTTP client in [`crate::http`].
//!
//! The connector maps the REST workflow onto the backend contract:
//!
//! * **Discovery** (at [`FlinkBackend::connect`]): `GET /config` for
//!   cluster limits, `GET /jobs` for the first `RUNNING` job, `GET
//!   /jobs/<jid>` for its vertices. Vertices are matched to `Dataflow`
//!   operators *by name* at deploy time — a vertex the flow does not know
//!   is a permanent [`BackendError::Format`].
//! * **Rescale**: `PATCH /jobs/<jid>/parallelism-overrides` with a
//!   `{vertex id: degree}` body. A `409 Conflict` (another rescale in
//!   flight) classifies as the transient
//!   [`BackendError::DeployFailed`], so PR 6's `RetryPolicy` absorbs
//!   rescale races by retrying the same epoch.
//! * **Metrics**: job- and vertex-scope gauge lists
//!   (`busyTimeMsPerSecond`, `numRecordsInPerSecond`, …) assembled into a
//!   validated [`Observation`]. A gauge served as `null` (a dashboard
//!   racing a restart) becomes NaN and is rejected by
//!   `Observation::validate` as the *transient*
//!   `BackendError::CorruptObservation` — again retryable in place.
//!
//! Error classification is the whole point: refused connections,
//! timeouts, 5xx responses and mid-response disconnects are transient
//! [`BackendError::Io`]; unknown endpoints, malformed JSON and
//! vertex/flow mismatches are permanent. That makes the connector a
//! drop-in peer of `SimCluster` under retry policies, degrade states and
//! `ChaosBackend` wrapping.
//!
//! Metric requests carry the session epoch as an `?epoch=<n>` query
//! parameter: the mock keys its measurement noise on it so same-epoch
//! retries re-read the same metrics window (a real JobManager ignores
//! unknown query parameters, so the tag is harmless there).

use std::time::Duration;

use serde::Value;
use streamtune_backend::{
    BackendConstraints, BackendError, EngineMode, ExecutionBackend, Observation, OpObservation,
    SimulationReport,
};
use streamtune_dataflow::{Dataflow, OpId, ParallelismAssignment};

use crate::http::{HttpClient, HttpResponse};

/// Default per-request deadline.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(5);

/// A discovered job vertex.
#[derive(Debug, Clone)]
struct Vertex {
    id: String,
    name: String,
}

/// An [`ExecutionBackend`] over a live (or mock) Flink REST endpoint.
#[derive(Debug)]
pub struct FlinkBackend {
    client: HttpClient,
    authority: String,
    job_id: String,
    vertices: Vec<Vertex>,
    mode: EngineMode,
    constraints: BackendConstraints,
}

impl FlinkBackend {
    /// Connect to `url` (accepts `http://host:port` or bare `host:port`)
    /// and discover the running job, with the default request deadline.
    pub fn connect(url: &str) -> Result<Self, BackendError> {
        Self::connect_with_timeout(url, DEFAULT_TIMEOUT)
    }

    /// [`FlinkBackend::connect`] with an explicit per-request deadline.
    pub fn connect_with_timeout(url: &str, timeout: Duration) -> Result<Self, BackendError> {
        let authority = normalize_authority(url)?;
        let client = HttpClient::new(timeout);

        // Cluster limits. Missing keys fall back to the paper's Flink
        // testbed defaults (§V-A: max parallelism 100, 10-minute wait).
        let config = get_json(&client, &authority, "/config")?;
        let mode = match config.field("engine").ok().and_then(as_str) {
            Some("timely") => EngineMode::Timely,
            _ => EngineMode::Flink,
        };
        let constraints = BackendConstraints {
            max_parallelism: config
                .field("maximum-parallelism")
                .ok()
                .and_then(as_u64)
                .map_or(100, |n| n as u32),
            reconfig_wait_minutes: config
                .field("reconfig-wait-minutes")
                .ok()
                .and_then(as_f64)
                .unwrap_or(10.0),
        };

        // First RUNNING job: the connector tunes one job per endpoint.
        let jobs = get_json(&client, &authority, "/jobs")?;
        let job_id = jobs
            .field("jobs")
            .ok()
            .and_then(|list| match list {
                Value::Array(items) => items.iter().find_map(|job| {
                    let running = job.field("status").ok().and_then(as_str) == Some("RUNNING");
                    if running {
                        job.field("id").ok().and_then(as_str).map(str::to_string)
                    } else {
                        None
                    }
                }),
                _ => None,
            })
            .ok_or_else(|| BackendError::Format {
                context: format!("GET http://{authority}/jobs"),
                message: "no RUNNING job on the cluster".to_string(),
            })?;

        // Vertex topology of that job.
        let detail = get_json(&client, &authority, &format!("/jobs/{job_id}"))?;
        let vertices = match detail.field("vertices") {
            Ok(Value::Array(items)) => items
                .iter()
                .map(|v| {
                    let id = v.field("id").ok().and_then(as_str);
                    let name = v.field("name").ok().and_then(as_str);
                    match (id, name) {
                        (Some(id), Some(name)) => Ok(Vertex {
                            id: id.to_string(),
                            name: name.to_string(),
                        }),
                        _ => Err(BackendError::Format {
                            context: format!("GET http://{authority}/jobs/{job_id}"),
                            message: "vertex without id/name".to_string(),
                        }),
                    }
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => {
                return Err(BackendError::Format {
                    context: format!("GET http://{authority}/jobs/{job_id}"),
                    message: "job detail has no vertices array".to_string(),
                })
            }
        };

        Ok(FlinkBackend {
            client,
            authority,
            job_id,
            vertices,
            mode,
            constraints,
        })
    }

    /// The job id discovered at connect time.
    pub fn job_id(&self) -> &str {
        &self.job_id
    }

    /// Vertex names in discovery order.
    pub fn vertex_names(&self) -> Vec<&str> {
        self.vertices.iter().map(|v| v.name.as_str()).collect()
    }

    /// Map flow operators to vertex ids by name; any mismatch between the
    /// flow and the discovered topology is permanent.
    fn vertex_ids_for(&self, flow: &Dataflow) -> Result<Vec<&str>, BackendError> {
        if self.vertices.len() != flow.num_ops() {
            return Err(BackendError::Format {
                context: format!("job {} topology", self.job_id),
                message: format!(
                    "job has {} vertices but the flow `{}` has {} operators",
                    self.vertices.len(),
                    flow.name(),
                    flow.num_ops()
                ),
            });
        }
        flow.op_ids()
            .map(|op| {
                let name = flow.op_name(op);
                self.vertices
                    .iter()
                    .find(|v| v.name == name)
                    .map(|v| v.id.as_str())
                    .ok_or_else(|| BackendError::Format {
                        context: format!("job {} topology", self.job_id),
                        message: format!("flow operator `{name}` has no matching job vertex"),
                    })
            })
            .collect()
    }

    fn rescale(
        &self,
        vertex_ids: &[&str],
        assignment: &ParallelismAssignment,
        epoch: u64,
    ) -> Result<(), BackendError> {
        let overrides = Value::Object(
            vertex_ids
                .iter()
                .zip(assignment.as_slice())
                .map(|(id, &degree)| (id.to_string(), Value::U64(u64::from(degree))))
                .collect(),
        );
        let body = serde_json::to_string(&overrides).map_err(|e| BackendError::Format {
            context: "render parallelism overrides".to_string(),
            message: e.to_string(),
        })?;
        let path = format!("/jobs/{}/parallelism-overrides", self.job_id);
        let context = format!("PATCH http://{}{path}", self.authority);
        let response = self
            .client
            .request("PATCH", &self.authority, &path, Some(&body))
            .map_err(|e| io_error(&context, &e))?;
        match response.status {
            s if (200..300).contains(&s) => Ok(()),
            // Rescale race: another override is in flight. Transient —
            // the session retries the same epoch.
            409 => Err(BackendError::DeployFailed { epoch }),
            s => Err(status_error(&context, s, &response.body)),
        }
    }

    fn fetch_gauges(&self, path: &str, epoch: u64) -> Result<Vec<(String, Value)>, BackendError> {
        let full = format!("{path}?epoch={epoch}");
        let context = format!("GET http://{}{full}", self.authority);
        let response = self
            .client
            .request("GET", &self.authority, &full, None)
            .map_err(|e| io_error(&context, &e))?;
        if !response.is_success() {
            return Err(status_error(&context, response.status, &response.body));
        }
        let parsed: Value =
            serde_json::from_str(&response.body).map_err(|e| BackendError::Format {
                context: context.clone(),
                message: format!("malformed JSON: {e}"),
            })?;
        let Value::Array(items) = parsed else {
            return Err(BackendError::Format {
                context,
                message: "metric response is not a gauge list".to_string(),
            });
        };
        items
            .into_iter()
            .map(|item| {
                let id = item
                    .field("id")
                    .ok()
                    .and_then(as_str)
                    .map(str::to_string)
                    .ok_or_else(|| BackendError::Format {
                        context: context.clone(),
                        message: "gauge without an id".to_string(),
                    })?;
                let value = item.field("value").ok().cloned().unwrap_or(Value::Null);
                Ok((id, value))
            })
            .collect()
    }
}

impl ExecutionBackend for FlinkBackend {
    fn engine_mode(&self) -> EngineMode {
        self.mode
    }

    fn constraints(&self) -> BackendConstraints {
        self.constraints
    }

    fn deploy(
        &mut self,
        flow: &Dataflow,
        assignment: &ParallelismAssignment,
        epoch: u64,
    ) -> Result<SimulationReport, BackendError> {
        if assignment.len() != flow.num_ops() {
            return Err(BackendError::AssignmentShape {
                expected: flow.num_ops(),
                actual: assignment.len(),
            });
        }
        let vertex_ids = self.vertex_ids_for(flow)?;
        self.rescale(&vertex_ids, assignment, epoch)?;

        // Job-scope gauges.
        let job_path = format!("/jobs/{}/metrics", self.job_id);
        let job = Gauges::new(self.fetch_gauges(&job_path, epoch)?);

        // Per-vertex gauges, in operator order.
        let mut per_op = Vec::with_capacity(flow.num_ops());
        let mut true_pa = Vec::with_capacity(flow.num_ops());
        let mut demand_input = Vec::with_capacity(flow.num_ops());
        let mut saturated = Vec::with_capacity(flow.num_ops());
        for (i, vid) in vertex_ids.iter().enumerate() {
            let path = format!("/jobs/{}/vertices/{vid}/metrics", self.job_id);
            let g = Gauges::new(self.fetch_gauges(&path, epoch)?);
            let op = OpId::new(i);
            let input_rate = g.num("numRecordsInPerSecond")?;
            let processed_rate = g.num("numRecordsOutPerSecond")?;
            let busy_ms_per_sec = g.num("busyTimeMsPerSecond")?;
            let parallelism = assignment.degree(op);
            let obs = OpObservation {
                op,
                parallelism,
                input_rate,
                processed_rate,
                busy_ms_per_sec,
                idle_ms_per_sec: g.num("idleTimeMsPerSecond")?,
                backpressured_ms_per_sec: g.num("backPressuredTimeMsPerSecond")?,
                observed_per_instance_rate: g.num("observedPerInstanceRate")?,
                cpu_load: g.num("cpuLoad")?,
                flink_backpressured: g.flag("isBackPressured")?,
                timely_bottleneck: g.flag_or("timelyBottleneck", false),
                saturated: g.flag_or("saturated", processed_rate < input_rate),
            };
            // Ground truth when the endpoint exports the extension gauges
            // (the mock does); best estimates otherwise — a real dashboard
            // only shows the observation.
            true_pa.push(g.num_or("truePA", estimate_pa(&obs)));
            demand_input.push(g.num_or("demandInput", input_rate));
            saturated.push(g.flag_or("demandSaturated", obs.saturated));
            per_op.push(obs);
        }

        Ok(SimulationReport {
            observation: Observation {
                mode: self.mode,
                per_op,
                job_backpressure: job.flag("jobBackpressure")?,
                throughput_scale: job.num("throughputScale")?,
                cpu_utilization: job.num("cpuUtilization")?,
                total_parallelism: assignment.total(),
            },
            true_pa,
            demand_input,
            saturated,
        })
    }

    fn epoch_latencies(
        &mut self,
        _flow: &Dataflow,
        _assignment: &ParallelismAssignment,
        _epochs: usize,
    ) -> Result<Vec<f64>, BackendError> {
        Err(BackendError::Unsupported {
            what: "epoch latencies over the Flink REST connector".to_string(),
        })
    }
}

/// A fetched gauge list with typed lookups.
struct Gauges {
    entries: Vec<(String, Value)>,
}

impl Gauges {
    fn new(entries: Vec<(String, Value)>) -> Self {
        Gauges { entries }
    }

    fn get(&self, id: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == id).map(|(_, v)| v)
    }

    /// A required numeric gauge. `null` — a dashboard mid-restart —
    /// becomes NaN so `Observation::validate` rejects the observation as
    /// a *transient* corrupt read; a missing id is a permanent format
    /// error (the endpoint does not speak our dialect).
    fn num(&self, id: &str) -> Result<f64, BackendError> {
        match self.get(id) {
            Some(Value::Null) => Ok(f64::NAN),
            Some(v) => as_f64(v).ok_or_else(|| self.type_error(id)),
            None => Err(self.missing(id)),
        }
    }

    fn num_or(&self, id: &str, fallback: f64) -> f64 {
        match self.get(id) {
            Some(Value::Null) => f64::NAN,
            Some(v) => as_f64(v).unwrap_or(fallback),
            None => fallback,
        }
    }

    fn flag(&self, id: &str) -> Result<bool, BackendError> {
        match self.get(id) {
            Some(Value::Bool(b)) => Ok(*b),
            Some(_) => Err(self.type_error(id)),
            None => Err(self.missing(id)),
        }
    }

    fn flag_or(&self, id: &str, fallback: bool) -> bool {
        match self.get(id) {
            Some(Value::Bool(b)) => *b,
            _ => fallback,
        }
    }

    fn missing(&self, id: &str) -> BackendError {
        BackendError::Format {
            context: "metric gauges".to_string(),
            message: format!("required gauge `{id}` is absent"),
        }
    }

    fn type_error(&self, id: &str) -> BackendError {
        BackendError::Format {
            context: "metric gauges".to_string(),
            message: format!("gauge `{id}` has an unexpected type"),
        }
    }
}

/// DS2-style processing-ability estimate from observable signals only.
fn estimate_pa(o: &OpObservation) -> f64 {
    let busy_frac = (o.busy_ms_per_sec / 1000.0).max(1e-6);
    o.processed_rate / busy_frac
}

fn normalize_authority(url: &str) -> Result<String, BackendError> {
    let stripped = url
        .trim()
        .trim_start_matches("http://")
        .trim_end_matches('/');
    if stripped.is_empty() || stripped.contains("://") {
        return Err(BackendError::Unsupported {
            what: format!("flink endpoint `{url}` (expected http://host:port or host:port)"),
        });
    }
    Ok(stripped.to_string())
}

fn io_error(context: &str, e: &std::io::Error) -> BackendError {
    BackendError::Io {
        context: context.to_string(),
        message: e.to_string(),
    }
}

/// Classify an HTTP error status: 5xx is the server having a bad moment
/// (transient); anything else is a contract violation (permanent).
fn status_error(context: &str, status: u16, body: &str) -> BackendError {
    if status >= 500 {
        BackendError::Io {
            context: context.to_string(),
            message: format!("HTTP {status}: {}", body.trim()),
        }
    } else {
        BackendError::Format {
            context: context.to_string(),
            message: format!("HTTP {status}: {}", body.trim()),
        }
    }
}

fn get_json(client: &HttpClient, authority: &str, path: &str) -> Result<Value, BackendError> {
    let context = format!("GET http://{authority}{path}");
    let response: HttpResponse = client
        .request("GET", authority, path, None)
        .map_err(|e| io_error(&context, &e))?;
    if !response.is_success() {
        return Err(status_error(&context, response.status, &response.body));
    }
    serde_json::from_str(&response.body).map_err(|e| BackendError::Format {
        context,
        message: format!("malformed JSON: {e}"),
    })
}

fn as_str(v: &Value) -> Option<&str> {
    match v {
        Value::String(s) => Some(s.as_str()),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        Value::I64(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::F64(f) => Some(*f),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn authority_normalization() {
        assert_eq!(
            normalize_authority("http://127.0.0.1:8081").unwrap(),
            "127.0.0.1:8081"
        );
        assert_eq!(
            normalize_authority("127.0.0.1:8081/").unwrap(),
            "127.0.0.1:8081"
        );
        assert!(normalize_authority("ftp://x").is_err());
        assert!(normalize_authority("").is_err());
    }

    #[test]
    fn dead_endpoint_is_a_transient_io_error() {
        let err = FlinkBackend::connect_with_timeout("127.0.0.1:1", Duration::from_millis(200))
            .unwrap_err();
        assert!(matches!(err, BackendError::Io { .. }), "{err:?}");
        assert!(err.is_transient());
    }
}
