//! An in-repo mock of the Flink REST surface, backed by a [`SimCluster`].
//!
//! The mock serves exactly the endpoints [`crate::FlinkBackend`] speaks —
//! `/config`, `/jobs`, job detail with vertices, the
//! `parallelism-overrides` rescale endpoint and job/vertex metric gauges —
//! and computes every gauge from `SimCluster::simulate_at(flow, current
//! parallelism, epoch)`. Because the vendored JSON layer round-trips
//! `f64`s bit-exactly and the simulator keys its measurement noise on the
//! epoch, a tuning session over the connector sees *bitwise* the same
//! observations as a session over the `SimCluster` itself — which is what
//! `tests/connect_flink.rs` asserts.
//!
//! Fault scripting makes failure scenarios deterministic test cases:
//! [`MockFlinkServer::fail_next`] (5xx bursts),
//! [`MockFlinkServer::slow_next`] (stalled dashboards),
//! [`MockFlinkServer::drop_next`] (mid-response disconnects) and
//! [`MockFlinkServer::conflict_next_rescale`] (rescale races, 409).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use serde::Value;
use streamtune_backend::EngineMode;
use streamtune_dataflow::{Dataflow, ParallelismAssignment};
use streamtune_sim::SimCluster;

/// Scripted fault state, consumed first-come by incoming requests.
#[derive(Debug, Default)]
struct Script {
    /// Next N requests answer `503 Service Unavailable`.
    fail_503: u32,
    /// Next N requests stall for this many milliseconds before answering.
    slow: u32,
    slow_ms: u64,
    /// Next N requests disconnect mid-response.
    drop_conn: u32,
    /// Next N rescale requests answer `409 Conflict`.
    conflict_rescale: u32,
}

#[derive(Debug)]
struct MockState {
    cluster: SimCluster,
    flow: Dataflow,
    job_id: String,
    /// Current vertex parallelism, in operator order.
    parallelism: Vec<u32>,
    script: Script,
    requests: u64,
    rescales: u64,
}

/// A scriptable mock Flink JobManager listening on a loopback port.
#[derive(Debug)]
pub struct MockFlinkServer {
    addr: SocketAddr,
    state: Arc<Mutex<MockState>>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MockFlinkServer {
    /// Start a mock cluster running `flow` on `cluster`, initially at
    /// parallelism 1 everywhere, on an OS-assigned loopback port.
    pub fn start(cluster: SimCluster, flow: Dataflow) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let parallelism = vec![1; flow.num_ops()];
        let state = Arc::new(Mutex::new(MockState {
            cluster,
            flow,
            job_id: "job-0000".to_string(),
            parallelism,
            script: Script::default(),
            requests: 0,
            rescales: 0,
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || serve_loop(&listener, &state, &stop))
        };
        Ok(MockFlinkServer {
            addr,
            state,
            stop,
            handle: Some(handle),
        })
    }

    /// The `host:port` authority the server listens on.
    pub fn authority(&self) -> String {
        self.addr.to_string()
    }

    /// The server's base URL, as `streamtune tune --backend flink:<url>`
    /// would take it.
    pub fn url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Answer the next `n` requests with `503 Service Unavailable`.
    pub fn fail_next(&self, n: u32) {
        self.lock().script.fail_503 = n;
    }

    /// Stall the next `n` requests for `ms` milliseconds before answering.
    pub fn slow_next(&self, ms: u64, n: u32) {
        let mut s = self.lock();
        s.script.slow = n;
        s.script.slow_ms = ms;
    }

    /// Disconnect mid-response on the next `n` requests.
    pub fn drop_next(&self, n: u32) {
        self.lock().script.drop_conn = n;
    }

    /// Answer the next `n` rescale requests with `409 Conflict` (another
    /// rescale in flight).
    pub fn conflict_next_rescale(&self, n: u32) {
        self.lock().script.conflict_rescale = n;
    }

    /// Total requests handled (fault-scripted ones included).
    pub fn requests(&self) -> u64 {
        self.lock().requests
    }

    /// Successfully applied rescales.
    pub fn rescales(&self) -> u64 {
        self.lock().rescales
    }

    /// The vertex parallelism currently deployed on the mock cluster.
    pub fn current_parallelism(&self) -> Vec<u32> {
        self.lock().parallelism.clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MockState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl Drop for MockFlinkServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn serve_loop(listener: &TcpListener, state: &Arc<Mutex<MockState>>, stop: &Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => handle_connection(stream, state),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

fn handle_connection(mut stream: TcpStream, state: &Arc<Mutex<MockState>>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let Some((method, path, body)) = read_request(&mut stream) else {
        return; // hostile/partial request: drop the connection
    };

    // Pop scripted faults under the lock, then act outside it so a
    // scripted stall never blocks the scripting handle.
    enum Fault {
        None,
        Fail503,
        Drop,
    }
    let (fault, delay_ms) = {
        let mut s = state.lock().unwrap_or_else(|p| p.into_inner());
        s.requests += 1;
        let mut delay = 0;
        if s.script.slow > 0 {
            s.script.slow -= 1;
            delay = s.script.slow_ms;
        }
        let fault = if s.script.fail_503 > 0 {
            s.script.fail_503 -= 1;
            Fault::Fail503
        } else if s.script.drop_conn > 0 {
            s.script.drop_conn -= 1;
            Fault::Drop
        } else {
            Fault::None
        };
        (fault, delay)
    };
    if delay_ms > 0 {
        std::thread::sleep(Duration::from_millis(delay_ms));
    }
    match fault {
        Fault::Fail503 => {
            respond(
                &mut stream,
                503,
                "Service Unavailable",
                "{\"errors\":[\"injected outage\"]}",
            );
            return;
        }
        Fault::Drop => {
            // Advertise a long body, send a fragment, disconnect.
            let _ = stream.write_all(
                b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 65536\r\nConnection: close\r\n\r\n{\"partial\":",
            );
            let _ = stream.flush();
            return;
        }
        Fault::None => {}
    }

    let (status, reason, body) = dispatch(&method, &path, &body, state);
    respond(&mut stream, status, reason, &body);
}

fn read_request(stream: &mut TcpStream) -> Option<(String, String, String)> {
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_subslice(&raw, b"\r\n\r\n") {
            break pos;
        }
        if raw.len() > 1 << 20 {
            return None;
        }
        match stream.read(&mut buf) {
            Ok(0) => return None,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(_) => return None,
        }
    };
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().unwrap_or(0);
            }
        }
    }
    let mut body = raw[head_end + 4..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut buf) {
            Ok(0) => return None,
            Ok(n) => body.extend_from_slice(&buf[..n]),
            Err(_) => return None,
        }
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).ok()?;
    Some((method, path, body))
}

fn respond(stream: &mut TcpStream, status: u16, reason: &str, body: &str) {
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Split `path?query` and extract the `epoch` query parameter (default 0).
fn split_epoch(path: &str) -> (&str, u64) {
    let Some((base, query)) = path.split_once('?') else {
        return (path, 0);
    };
    let epoch = query
        .split('&')
        .find_map(|kv| kv.strip_prefix("epoch="))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    (base, epoch)
}

fn dispatch(
    method: &str,
    path: &str,
    body: &str,
    state: &Arc<Mutex<MockState>>,
) -> (u16, &'static str, String) {
    let mut s = state.lock().unwrap_or_else(|p| p.into_inner());
    let (base, epoch) = split_epoch(path);
    let jid = s.job_id.clone();
    let not_found = || {
        (
            404,
            "Not Found",
            "{\"errors\":[\"no such endpoint\"]}".to_string(),
        )
    };

    match (method, base) {
        ("GET", "/config") => {
            let body = render(Value::Object(vec![
                ("flink-version".into(), Value::String("1.18-mock".into())),
                (
                    "engine".into(),
                    Value::String(
                        match s.cluster.mode {
                            EngineMode::Flink => "flink",
                            EngineMode::Timely => "timely",
                        }
                        .into(),
                    ),
                ),
                (
                    "maximum-parallelism".into(),
                    Value::U64(u64::from(s.cluster.max_parallelism)),
                ),
                (
                    "reconfig-wait-minutes".into(),
                    Value::F64(s.cluster.reconfig_wait_minutes),
                ),
            ]));
            (200, "OK", body)
        }
        ("GET", "/jobs") => {
            let body = render(Value::Object(vec![(
                "jobs".into(),
                Value::Array(vec![Value::Object(vec![
                    ("id".into(), Value::String(jid)),
                    ("status".into(), Value::String("RUNNING".into())),
                ])]),
            )]));
            (200, "OK", body)
        }
        ("GET", p) if p == format!("/jobs/{jid}") => {
            let vertices: Vec<Value> = s
                .flow
                .op_ids()
                .map(|op| {
                    Value::Object(vec![
                        ("id".into(), Value::String(format!("v{}", op.index()))),
                        ("name".into(), Value::String(s.flow.op_name(op).to_string())),
                        (
                            "parallelism".into(),
                            Value::U64(u64::from(s.parallelism[op.index()])),
                        ),
                    ])
                })
                .collect();
            let body = render(Value::Object(vec![
                ("jid".into(), Value::String(jid)),
                ("name".into(), Value::String(s.flow.name().to_string())),
                ("state".into(), Value::String("RUNNING".into())),
                ("vertices".into(), Value::Array(vertices)),
            ]));
            (200, "OK", body)
        }
        ("PATCH", p) if p == format!("/jobs/{jid}/parallelism-overrides") => {
            if s.script.conflict_rescale > 0 {
                s.script.conflict_rescale -= 1;
                return (
                    409,
                    "Conflict",
                    "{\"errors\":[\"another rescale is in flight\"]}".to_string(),
                );
            }
            let Ok(overrides) = serde_json::from_str::<Value>(body) else {
                return (
                    400,
                    "Bad Request",
                    "{\"errors\":[\"overrides must be a JSON object\"]}".to_string(),
                );
            };
            let Value::Object(entries) = overrides else {
                return (
                    400,
                    "Bad Request",
                    "{\"errors\":[\"overrides must be a JSON object\"]}".to_string(),
                );
            };
            // Apply atomically: validate every override, then commit.
            let mut next = s.parallelism.clone();
            for (key, value) in &entries {
                let Some(index) = key
                    .strip_prefix('v')
                    .and_then(|i| i.parse::<usize>().ok())
                    .filter(|&i| i < next.len())
                else {
                    return (
                        400,
                        "Bad Request",
                        format!("{{\"errors\":[\"unknown vertex `{key}`\"]}}"),
                    );
                };
                let degree = match value {
                    Value::U64(n) if *n >= 1 => *n as u32,
                    _ => {
                        return (
                            400,
                            "Bad Request",
                            format!("{{\"errors\":[\"bad parallelism for `{key}`\"]}}"),
                        )
                    }
                };
                next[index] = degree;
            }
            s.parallelism = next;
            s.rescales += 1;
            (202, "Accepted", "{\"acknowledged\":true}".to_string())
        }
        ("GET", p) if p == format!("/jobs/{jid}/metrics") => {
            let report = simulate(&s, epoch);
            let obs = &report.observation;
            let body = render(gauges(vec![
                ("jobBackpressure", Value::Bool(obs.job_backpressure)),
                ("throughputScale", Value::F64(obs.throughput_scale)),
                ("cpuUtilization", Value::F64(obs.cpu_utilization)),
            ]));
            (200, "OK", body)
        }
        ("GET", p) => {
            let prefix = format!("/jobs/{jid}/vertices/");
            let Some(rest) = p.strip_prefix(&prefix) else {
                return not_found();
            };
            let Some(vid) = rest.strip_suffix("/metrics") else {
                return not_found();
            };
            let Some(index) = vid
                .strip_prefix('v')
                .and_then(|i| i.parse::<usize>().ok())
                .filter(|&i| i < s.flow.num_ops())
            else {
                return not_found();
            };
            let report = simulate(&s, epoch);
            let o = &report.observation.per_op[index];
            let body = render(gauges(vec![
                ("numRecordsInPerSecond", Value::F64(o.input_rate)),
                ("numRecordsOutPerSecond", Value::F64(o.processed_rate)),
                ("busyTimeMsPerSecond", Value::F64(o.busy_ms_per_sec)),
                ("idleTimeMsPerSecond", Value::F64(o.idle_ms_per_sec)),
                (
                    "backPressuredTimeMsPerSecond",
                    Value::F64(o.backpressured_ms_per_sec),
                ),
                (
                    "observedPerInstanceRate",
                    Value::F64(o.observed_per_instance_rate),
                ),
                ("cpuLoad", Value::F64(o.cpu_load)),
                ("isBackPressured", Value::Bool(o.flink_backpressured)),
                ("timelyBottleneck", Value::Bool(o.timely_bottleneck)),
                ("saturated", Value::Bool(o.saturated)),
                // Ground-truth extension gauges: a real JobManager does not
                // export these; the connector falls back to estimates when
                // they are absent.
                ("truePA", Value::F64(report.true_pa[index])),
                ("demandInput", Value::F64(report.demand_input[index])),
                ("demandSaturated", Value::Bool(report.saturated[index])),
            ]));
            (200, "OK", body)
        }
        _ => not_found(),
    }
}

fn simulate(s: &MockState, epoch: u64) -> streamtune_backend::SimulationReport {
    let assignment = ParallelismAssignment::from_vec(s.parallelism.clone());
    s.cluster.simulate_at(&s.flow, &assignment, epoch)
}

/// Render a Flink-style metric list: `[{"id": ..., "value": ...}, ...]`.
fn gauges(entries: Vec<(&str, Value)>) -> Value {
    Value::Array(
        entries
            .into_iter()
            .map(|(id, value)| {
                Value::Object(vec![
                    ("id".into(), Value::String(id.to_string())),
                    ("value".into(), value),
                ])
            })
            .collect(),
    )
}

fn render(v: Value) -> String {
    serde_json::to_string(&v).unwrap_or_else(|_| "null".to_string())
}
