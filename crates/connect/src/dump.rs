//! Deterministic JSONL metric-dump generation — the test and example
//! counterpart of [`crate::ingest`].
//!
//! `write_dump` synthesizes the dump a production metrics scraper would
//! produce for a linear pipeline: per window, per sample tick, one row
//! per operator, with seeded jitter (splitmix64, no RNG state) and an
//! optional embedded rate drift. The generated stream drives the
//! ≥100k-row streaming-ingest tests and the checked-in example dump —
//! and documents the row schema by construction.

use std::io::{self, Write};

/// One pipeline stage of a generated dump.
#[derive(Debug, Clone)]
pub struct DumpOp {
    /// Operator name (must be JSON-string-safe; generated names are).
    pub name: String,
    /// Deployed parallelism, constant over the dump.
    pub parallelism: u32,
    /// Per-instance processing capacity, records/second.
    pub per_instance_rate: f64,
}

/// Shape of a generated dump.
#[derive(Debug, Clone)]
pub struct DumpSpec {
    /// Pipeline stages; the first is the source (rows appear in order).
    pub ops: Vec<DumpOp>,
    /// Number of time windows.
    pub windows: u64,
    /// Metric samples per window (scrapes).
    pub samples_per_window: u32,
    /// Window length in seconds.
    pub window_secs: f64,
    /// Offered source rate, records/second.
    pub base_rate: f64,
    /// From this window on, the offered rate is multiplied by
    /// `drift_factor` (the embedded drift the monitor should find).
    pub drift_at_window: Option<u64>,
    /// Rate multiplier after the drift point.
    pub drift_factor: f64,
    /// Relative jitter amplitude on the offered rate (e.g. 0.02).
    pub jitter: f64,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl DumpSpec {
    /// A small five-stage pipeline with a mid-dump rate drift.
    pub fn example(windows: u64, samples_per_window: u32) -> Self {
        DumpSpec {
            ops: vec![
                DumpOp {
                    name: "source".to_string(),
                    parallelism: 2,
                    per_instance_rate: 60_000.0,
                },
                DumpOp {
                    name: "parse".to_string(),
                    parallelism: 4,
                    per_instance_rate: 30_000.0,
                },
                DumpOp {
                    name: "filter".to_string(),
                    parallelism: 4,
                    per_instance_rate: 35_000.0,
                },
                DumpOp {
                    name: "join".to_string(),
                    parallelism: 6,
                    per_instance_rate: 20_000.0,
                },
                DumpOp {
                    name: "sink".to_string(),
                    parallelism: 2,
                    per_instance_rate: 80_000.0,
                },
            ],
            windows,
            samples_per_window,
            window_secs: 60.0,
            base_rate: 80_000.0,
            drift_at_window: Some(windows * 3 / 5),
            drift_factor: 1.6,
            jitter: 0.02,
            seed: 7,
        }
    }

    /// Rows this spec will produce.
    pub fn rows(&self) -> u64 {
        self.windows * u64::from(self.samples_per_window) * self.ops.len() as u64
    }
}

/// splitmix64 finalizer: the jitter stream is a pure function of
/// `(seed, window, sample, op)`.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z =
        seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in [-1, 1).
fn jitter_unit(seed: u64, a: u64, b: u64) -> f64 {
    ((mix(seed, a, b) >> 11) as f64 / (1u64 << 52) as f64) - 1.0
}

/// Write the dump to `w`; returns the number of rows written.
pub fn write_dump<W: Write>(w: &mut W, spec: &DumpSpec) -> io::Result<u64> {
    let mut rows = 0u64;
    let dt = spec.window_secs / f64::from(spec.samples_per_window);
    for window in 0..spec.windows {
        let drifted = spec.drift_at_window.is_some_and(|at| window >= at);
        let multiplier = if drifted { spec.drift_factor } else { 1.0 };
        for sample in 0..u64::from(spec.samples_per_window) {
            let ts = window as f64 * spec.window_secs + (sample as f64 + 0.5) * dt;
            let tick = window * u64::from(spec.samples_per_window) + sample;
            let mut input = spec.base_rate
                * multiplier
                * (1.0 + spec.jitter * jitter_unit(spec.seed, tick, u64::MAX));
            for (i, op) in spec.ops.iter().enumerate() {
                let capacity = op.per_instance_rate * f64::from(op.parallelism);
                let processed = input.min(capacity);
                let busy_frac = (input / capacity).min(1.0);
                let busy = busy_frac * 1000.0;
                let idle = 1000.0 - busy;
                let observed = op.per_instance_rate
                    * (1.0 + 0.5 * spec.jitter * jitter_unit(spec.seed, tick, i as u64));
                writeln!(
                    w,
                    "{{\"ts\":{ts:?},\"operator\":\"{}\",\"parallelism\":{},\"records_in_per_sec\":{input:?},\"records_out_per_sec\":{processed:?},\"busy_ms\":{busy:?},\"idle_ms\":{idle:?},\"backpressured_ms\":0.0,\"cpu_load\":{busy_frac:?},\"observed_rate\":{observed:?}}}",
                    op.name, op.parallelism
                )?;
                rows += 1;
                input = processed;
            }
        }
    }
    Ok(rows)
}

/// Write the dump to a file path.
pub fn write_dump_file(path: &str, spec: &DumpSpec) -> io::Result<u64> {
    let file = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(file);
    let rows = write_dump(&mut w, spec)?;
    w.flush()?;
    Ok(rows)
}
