//! Real-engine connectivity for StreamTune: the bridge between the
//! backend abstraction and production systems.
//!
//! Two halves:
//!
//! * **[`FlinkBackend`]** ([`flink`]) — an [`ExecutionBackend`] speaking
//!   the Flink REST surface over a minimal in-repo HTTP/1.1 client
//!   ([`http`]): job-vertex discovery, busy-time/records-in-per-second
//!   gauges assembled into validated observations, rescaling via the
//!   parallelism-overrides endpoint. Transport faults, 5xx bursts and
//!   rescale races classify as *transient* `BackendError`s, so retry
//!   policies, degrade states and `ChaosBackend` wrapping from the fault
//!   layer compose unchanged. [`MockFlinkServer`] ([`mock`]) serves the
//!   same surface from a `SimCluster` with scripted fault scenarios —
//!   and, because the vendored JSON layer round-trips `f64`s bit-exactly,
//!   tuning over the connector is *bitwise* identical to tuning over the
//!   simulator it fronts.
//!
//! * **Streaming trace ingestion** ([`ingest`]) — multi-million-row JSONL
//!   metric dumps become replayable [`TraceLog`]s and monitor-ready rate
//!   schedules in bounded memory (line-at-a-time reading, per-operator
//!   accumulators for one window at a time). Together with
//!   `ReplayBackend` and `streamtune monitor`, this turns production
//!   traffic into an offline "what would the tuner have done" analysis.
//!   [`dump`] generates deterministic dumps (seeded jitter, embedded
//!   drift) for tests and examples.
//!
//! [`ExecutionBackend`]: streamtune_backend::ExecutionBackend
//! [`TraceLog`]: streamtune_backend::TraceLog

pub mod dump;
pub mod flink;
pub mod http;
pub mod ingest;
pub mod mock;

pub use dump::{write_dump, write_dump_file, DumpOp, DumpSpec};
pub use flink::FlinkBackend;
pub use http::{HttpClient, HttpReply, HttpResponse, MiniHttpServer};
pub use ingest::{ingest, ingest_file, IngestConfig, IngestReport, IngestStats};
pub use mock::MockFlinkServer;
