//! Streaming JSONL metric-dump ingestion: multi-million-row production
//! dumps become [`TraceLog`]s and monitor-ready rate schedules in bounded
//! memory.
//!
//! The ingester reads one line at a time into a reused buffer and keeps
//! only the *current* time window's per-operator accumulators — memory is
//! O(operators), never O(rows) — so a dump can be arbitrarily large
//! (`tests/connect_ingest.rs` proves the bound with a counting reader).
//!
//! ## Row format
//!
//! One JSON object per line, one metric sample per operator per scrape:
//!
//! ```json
//! {"ts": 12.5, "operator": "source", "parallelism": 4,
//!  "records_in_per_sec": 1000.0, "records_out_per_sec": 995.0,
//!  "busy_ms": 450.0, "idle_ms": 550.0, "backpressured_ms": 0.0,
//!  "cpu_load": 0.45, "observed_rate": 260.0}
//! ```
//!
//! `cpu_load` and `observed_rate` are optional (derived from busy time
//! when absent). Malformed lines, out-of-order timestamps, duplicate
//! `(operator, ts)` rows and rows naming unknown operators are counted in
//! [`IngestStats`] and skipped — ingestion never panics, and a dump with
//! no valid rows at all is an error.
//!
//! ## Windowing
//!
//! Rows are bucketed into fixed `window_secs` windows by timestamp; each
//! completed window averages its per-operator samples into one
//! [`TraceEntry`] whose assignment is the last parallelism seen per
//! operator. The operator set is discovered during the *first* window and
//! fixed thereafter. The produced log carries `flow: None` — a hand-built
//! identity — so `ReplayBackend` serves it to any flow of matching shape,
//! which is exactly what `streamtune monitor` needs when it polls with
//! schedule-shifted rates.

use std::collections::HashMap;
use std::io::BufRead;

use streamtune_backend::{
    BackendConstraints, BackendError, EngineMode, Observation, OpObservation, SimulationReport,
    TraceEntry, TraceLog, BACKPRESSURE_VISIBILITY,
};
use streamtune_dataflow::{OpId, ParallelismAssignment};

/// Ingestion parameters.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Window length in seconds of dump time.
    pub window_secs: f64,
    /// Engine family recorded in the produced log.
    pub engine: EngineMode,
    /// Deployment limits recorded in the produced log.
    pub max_parallelism: u32,
    /// Stabilization wait recorded in the produced log.
    pub reconfig_wait_minutes: f64,
    /// Operators whose summed input rate forms the rate-schedule signal;
    /// empty means the first operator discovered (dumps list sources
    /// first by convention).
    pub source_operators: Vec<String>,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            window_secs: 60.0,
            engine: EngineMode::Flink,
            max_parallelism: 100,
            reconfig_wait_minutes: 10.0,
            source_operators: Vec::new(),
        }
    }
}

/// Everything counted while streaming a dump.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Lines read (blank lines included).
    pub lines: u64,
    /// Rows accepted into a window.
    pub rows: u64,
    /// Lines that failed to parse or validate (bad JSON, missing fields,
    /// non-finite or negative values, zero parallelism).
    pub bad_lines: u64,
    /// Rows older than the window being accumulated (out of order).
    pub late_rows: u64,
    /// Exact `(operator, ts)` duplicates within a window.
    pub duplicate_rows: u64,
    /// Rows naming an operator not seen during the first window.
    pub unknown_operator_rows: u64,
    /// Windows flushed into trace entries.
    pub windows: u64,
}

/// The product of one ingestion run.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Replayable trace: one entry per completed window, epochs counted
    /// from 1 in window order.
    pub log: TraceLog,
    /// Operator names, in discovery order (`OpId` order in the log).
    pub operators: Vec<String>,
    /// Per-window source-signal rates (records/second, absolute).
    pub rates: Vec<f64>,
    /// Per-window rate multipliers relative to the first window — feed
    /// this to `streamtune monitor` as a scripted schedule.
    pub schedule: Vec<f64>,
    /// Ingestion counters.
    pub stats: IngestStats,
}

/// One parsed row.
struct Row {
    ts: f64,
    operator: String,
    parallelism: u32,
    input: f64,
    processed: f64,
    busy: f64,
    idle: f64,
    backpressured: f64,
    cpu: Option<f64>,
    observed: Option<f64>,
}

/// Per-operator accumulator for the current window (sums over samples).
#[derive(Debug, Clone, Default)]
struct OpAcc {
    count: u64,
    seen_ts: Vec<f64>,
    parallelism: u32,
    input: f64,
    processed: f64,
    busy: f64,
    idle: f64,
    backpressured: f64,
    cpu: f64,
    observed: f64,
}

/// Per-operator window averages (carried forward over gap windows).
#[derive(Debug, Clone, Copy)]
struct OpMeans {
    parallelism: u32,
    input: f64,
    processed: f64,
    busy: f64,
    idle: f64,
    backpressured: f64,
    cpu: f64,
    observed: f64,
}

/// Ingest a JSONL dump from any buffered reader.
pub fn ingest<R: BufRead>(
    mut reader: R,
    config: &IngestConfig,
) -> Result<IngestReport, BackendError> {
    let mut stats = IngestStats::default();
    let mut ops: Vec<String> = Vec::new();
    let mut op_index: HashMap<String, usize> = HashMap::new();
    let mut first_window = true;
    let mut current_window: Option<i64> = None;
    let mut accs: Vec<OpAcc> = Vec::new();
    let mut last_means: Vec<OpMeans> = Vec::new();
    let mut entries: Vec<TraceEntry> = Vec::new();

    let mut line = String::new();
    loop {
        line.clear();
        let read = reader.read_line(&mut line).map_err(|e| BackendError::Io {
            context: "read metric dump".to_string(),
            message: e.to_string(),
        })?;
        if read == 0 {
            break;
        }
        stats.lines += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let Some(row) = parse_row(trimmed) else {
            stats.bad_lines += 1;
            continue;
        };

        let window = (row.ts / config.window_secs).floor() as i64;
        match current_window {
            None => current_window = Some(window),
            Some(cur) if window < cur => {
                stats.late_rows += 1;
                continue;
            }
            Some(cur) if window > cur => {
                flush_window(
                    config,
                    &ops,
                    &mut accs,
                    &mut last_means,
                    &mut entries,
                    &mut stats,
                )?;
                first_window = false;
                current_window = Some(window);
            }
            Some(_) => {}
        }

        // Resolve the operator; discovery is open only during the first
        // window so every entry has the same shape.
        let index = match op_index.get(&row.operator) {
            Some(&i) => i,
            None if first_window => {
                let i = ops.len();
                ops.push(row.operator.clone());
                op_index.insert(row.operator.clone(), i);
                accs.push(OpAcc::default());
                i
            }
            None => {
                stats.unknown_operator_rows += 1;
                continue;
            }
        };
        if accs.len() < ops.len() {
            accs.resize(ops.len(), OpAcc::default());
        }
        let acc = &mut accs[index];
        if acc.seen_ts.contains(&row.ts) {
            stats.duplicate_rows += 1;
            continue;
        }
        acc.seen_ts.push(row.ts);
        acc.count += 1;
        acc.parallelism = row.parallelism;
        acc.input += row.input;
        acc.processed += row.processed;
        acc.busy += row.busy;
        acc.idle += row.idle;
        acc.backpressured += row.backpressured;
        acc.cpu += row.cpu.unwrap_or(row.busy / 1000.0);
        acc.observed += row.observed.unwrap_or_else(|| {
            // DS2-style useful-time rate: processed / busy fraction,
            // per parallel instance.
            let busy_frac = (row.busy / 1000.0).max(1e-6);
            row.processed / busy_frac / f64::from(row.parallelism)
        });
        stats.rows += 1;
    }

    // Final window.
    if current_window.is_some() {
        flush_window(
            config,
            &ops,
            &mut accs,
            &mut last_means,
            &mut entries,
            &mut stats,
        )?;
    }

    if entries.is_empty() {
        return Err(BackendError::Format {
            context: "ingest metric dump".to_string(),
            message: format!(
                "no valid rows ({} line(s), {} bad)",
                stats.lines, stats.bad_lines
            ),
        });
    }

    // Rate-schedule signal: summed input rate of the source operators.
    let source_indices: Vec<usize> = if config.source_operators.is_empty() {
        vec![0]
    } else {
        config
            .source_operators
            .iter()
            .map(|name| {
                op_index
                    .get(name)
                    .copied()
                    .ok_or_else(|| BackendError::Format {
                        context: "ingest rate schedule".to_string(),
                        message: format!("source operator `{name}` never appeared in the dump"),
                    })
            })
            .collect::<Result<_, _>>()?
    };
    let rates: Vec<f64> = entries
        .iter()
        .map(|e| {
            source_indices
                .iter()
                .map(|&i| e.report.observation.per_op[i].input_rate)
                .sum()
        })
        .collect();
    let base = rates[0];
    let schedule: Vec<f64> = rates
        .iter()
        .map(|&r| if base > 0.0 { r / base } else { 1.0 })
        .collect();

    let mut log = TraceLog::new(
        config.engine,
        BackendConstraints {
            max_parallelism: config.max_parallelism,
            reconfig_wait_minutes: config.reconfig_wait_minutes,
        },
    );
    log.deploys = entries;

    Ok(IngestReport {
        log,
        operators: ops,
        rates,
        schedule,
        stats,
    })
}

/// Ingest a JSONL dump from a file path.
pub fn ingest_file(path: &str, config: &IngestConfig) -> Result<IngestReport, BackendError> {
    let file = std::fs::File::open(path).map_err(|e| BackendError::Io {
        context: format!("open {path}"),
        message: e.to_string(),
    })?;
    ingest(std::io::BufReader::new(file), config)
}

fn parse_row(line: &str) -> Option<Row> {
    let v: serde::Value = serde_json::from_str(line).ok()?;
    let num = |name: &str| -> Option<f64> {
        match v.field(name).ok()? {
            serde::Value::F64(f) => Some(*f),
            serde::Value::U64(n) => Some(*n as f64),
            serde::Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    };
    let rate = |name: &str| num(name).filter(|r| r.is_finite() && *r >= 0.0);
    let operator = match v.field("operator").ok()? {
        serde::Value::String(s) if !s.is_empty() => s.clone(),
        _ => return None,
    };
    let parallelism = match v.field("parallelism").ok()? {
        serde::Value::U64(n) if (1..=u64::from(u32::MAX)).contains(n) => *n as u32,
        _ => return None,
    };
    Some(Row {
        ts: num("ts").filter(|t| t.is_finite() && *t >= 0.0)?,
        operator,
        parallelism,
        input: rate("records_in_per_sec")?,
        processed: rate("records_out_per_sec")?,
        busy: rate("busy_ms")?,
        idle: rate("idle_ms")?,
        backpressured: rate("backpressured_ms")?,
        cpu: v.field("cpu_load").ok().and_then(|_| rate("cpu_load")),
        observed: v
            .field("observed_rate")
            .ok()
            .and_then(|_| rate("observed_rate")),
    })
}

fn flush_window(
    config: &IngestConfig,
    ops: &[String],
    accs: &mut [OpAcc],
    last_means: &mut Vec<OpMeans>,
    entries: &mut Vec<TraceEntry>,
    stats: &mut IngestStats,
) -> Result<(), BackendError> {
    // Mean over this window's samples; operators silent this window carry
    // their previous window's values (dashboards hold the last gauge).
    let mut means = Vec::with_capacity(ops.len());
    for (i, name) in ops.iter().enumerate() {
        let acc = &accs[i];
        if acc.count == 0 {
            match last_means.get(i) {
                Some(prev) => means.push(*prev),
                None => {
                    return Err(BackendError::Format {
                        context: "ingest metric dump".to_string(),
                        message: format!("operator `{name}` has no samples in its first window"),
                    })
                }
            }
        } else {
            let n = acc.count as f64;
            means.push(OpMeans {
                parallelism: acc.parallelism,
                input: acc.input / n,
                processed: acc.processed / n,
                busy: acc.busy / n,
                idle: acc.idle / n,
                backpressured: acc.backpressured / n,
                cpu: acc.cpu / n,
                observed: acc.observed / n,
            });
        }
    }

    let assignment = ParallelismAssignment::from_vec(means.iter().map(|m| m.parallelism).collect());
    let mut per_op = Vec::with_capacity(means.len());
    let mut true_pa = Vec::with_capacity(means.len());
    let mut demand_input = Vec::with_capacity(means.len());
    let mut saturated_v = Vec::with_capacity(means.len());
    let mut weighted_cpu = 0.0;
    for (i, m) in means.iter().enumerate() {
        let total_ms = m.busy + m.idle + m.backpressured;
        let flink_backpressured = m.backpressured > BACKPRESSURE_VISIBILITY * total_ms;
        let saturated = m.processed < m.input * (1.0 - 1e-9);
        per_op.push(OpObservation {
            op: OpId::new(i),
            parallelism: m.parallelism,
            input_rate: m.input,
            processed_rate: m.processed,
            busy_ms_per_sec: m.busy,
            idle_ms_per_sec: m.idle,
            backpressured_ms_per_sec: m.backpressured,
            observed_per_instance_rate: m.observed,
            cpu_load: m.cpu,
            flink_backpressured,
            timely_bottleneck: false,
            saturated,
        });
        let busy_frac = (m.busy / 1000.0).max(1e-6);
        true_pa.push(m.processed / busy_frac);
        demand_input.push(m.input);
        saturated_v.push(saturated);
        weighted_cpu += m.cpu * f64::from(m.parallelism);
    }
    let total_parallelism = assignment.total();
    let total_input: f64 = means.iter().map(|m| m.input).sum();
    let total_processed: f64 = means.iter().map(|m| m.processed).sum();
    let throughput_scale = if total_input > 0.0 {
        (total_processed / total_input).min(1.0)
    } else {
        1.0
    };
    let job_backpressure = per_op.iter().any(|o| o.flink_backpressured || o.saturated);
    let observation = Observation {
        mode: config.engine,
        per_op,
        job_backpressure,
        throughput_scale,
        cpu_utilization: if total_parallelism > 0 {
            weighted_cpu / total_parallelism as f64
        } else {
            0.0
        },
        total_parallelism,
    };
    // Windows only ever average finite inputs, but assert the contract the
    // replay consumers rely on.
    observation.validate()?;

    stats.windows += 1;
    entries.push(TraceEntry {
        epoch: stats.windows,
        assignment,
        report: SimulationReport {
            observation,
            true_pa,
            demand_input,
            saturated: saturated_v,
        },
    });

    *last_means = means;
    for acc in accs.iter_mut() {
        *acc = OpAcc::default();
    }
    Ok(())
}
