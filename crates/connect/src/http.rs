//! A minimal HTTP/1.1 client over `std::net::TcpStream`.
//!
//! The Flink REST surface needs nothing beyond `GET`/`PATCH` with small
//! JSON bodies, so the connector carries its own client instead of a
//! vendored HTTP stack: one connection per request (`Connection: close`),
//! `Content-Length` framing, and a hard read/write deadline so a stalled
//! dashboard surfaces as a transient timeout instead of hanging a tuning
//! session forever.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A parsed HTTP response: status code plus body text.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// The status code from the status line.
    pub status: u16,
    /// The response body (truncated bodies are an error, not a response).
    pub body: String,
}

impl HttpResponse {
    /// Whether the status is a 2xx success.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Blocking HTTP/1.1 client with a per-request deadline.
#[derive(Debug, Clone)]
pub struct HttpClient {
    timeout: Duration,
}

impl HttpClient {
    /// A client whose connect/read/write operations each time out after
    /// `timeout`.
    pub fn new(timeout: Duration) -> Self {
        HttpClient { timeout }
    }

    /// The configured per-operation deadline.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Issue one request against `authority` (a `host:port` pair) and read
    /// the full response. Transport failures — refused connections,
    /// timeouts, mid-response disconnects, malformed framing — all come
    /// back as `io::Error`; the caller classifies them (for the Flink
    /// connector: transient).
    pub fn request(
        &self,
        method: &str,
        authority: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<HttpResponse> {
        let addr = resolve(authority)?;
        let mut stream = TcpStream::connect_timeout(&addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.set_nodelay(true)?;

        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {authority}\r\nAccept: application/json\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes())?;

        // `Connection: close` means the response ends at EOF; a read
        // timeout while the server stalls surfaces as an error here.
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        parse_response(&raw)
    }
}

fn resolve(authority: &str) -> io::Result<SocketAddr> {
    authority.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            format!("cannot resolve `{authority}`"),
        )
    })
}

fn parse_response(raw: &[u8]) -> io::Result<HttpResponse> {
    let malformed = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let split = find_subslice(raw, b"\r\n\r\n")
        .ok_or_else(|| malformed("response has no header/body separator"))?;
    let head =
        std::str::from_utf8(&raw[..split]).map_err(|_| malformed("non-UTF-8 response head"))?;
    let body_bytes = &raw[split + 4..];

    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let mut parts = status_line.split_whitespace();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(malformed("response is not HTTP/1.x"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| malformed("unparseable status code"))?;

    let mut content_length: Option<usize> = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }

    let body_bytes = match content_length {
        // A body shorter than its declared length is a mid-response
        // disconnect — report it as the transport fault it is.
        Some(len) if body_bytes.len() < len => {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "response truncated: {} of {len} body bytes",
                    body_bytes.len()
                ),
            ))
        }
        Some(len) => &body_bytes[..len],
        None => body_bytes,
    };
    let body = std::str::from_utf8(body_bytes)
        .map_err(|_| malformed("non-UTF-8 response body"))?
        .to_string();
    Ok(HttpResponse { status, body })
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_complete_response() {
        let raw =
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "{}");
        assert!(r.is_success());
    }

    #[test]
    fn truncated_body_is_an_error() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\n{\"partial\":";
        let err = parse_response(raw).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        assert!(parse_response(b"not http at all").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
        assert!(parse_response(b"").is_err());
    }

    #[test]
    fn refused_connection_is_an_io_error() {
        // Port 1 on localhost is essentially never listening.
        let client = HttpClient::new(Duration::from_millis(200));
        assert!(client
            .request("GET", "127.0.0.1:1", "/config", None)
            .is_err());
    }
}
