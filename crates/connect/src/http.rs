//! A minimal HTTP/1.1 client and server over `std::net::TcpStream`.
//!
//! The Flink REST surface needs nothing beyond `GET`/`PATCH` with small
//! JSON bodies, so the connector carries its own client instead of a
//! vendored HTTP stack: one connection per request (`Connection: close`),
//! `Content-Length` framing, and a hard read/write deadline so a stalled
//! dashboard surfaces as a transient timeout instead of hanging a tuning
//! session forever.
//!
//! [`MiniHttpServer`] is the server-side counterpart: a background
//! accept loop answering one `GET` per connection through a handler
//! closure, with the same framing conventions. The serve daemon uses it
//! for the `--metrics-listen` Prometheus scrape endpoint; it is equally
//! usable for any other small read-only surface.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A parsed HTTP response: status code plus body text.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// The status code from the status line.
    pub status: u16,
    /// The response body (truncated bodies are an error, not a response).
    pub body: String,
}

impl HttpResponse {
    /// Whether the status is a 2xx success.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Blocking HTTP/1.1 client with a per-request deadline.
#[derive(Debug, Clone)]
pub struct HttpClient {
    timeout: Duration,
}

impl HttpClient {
    /// A client whose connect/read/write operations each time out after
    /// `timeout`.
    pub fn new(timeout: Duration) -> Self {
        HttpClient { timeout }
    }

    /// The configured per-operation deadline.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Issue one request against `authority` (a `host:port` pair) and read
    /// the full response. Transport failures — refused connections,
    /// timeouts, mid-response disconnects, malformed framing — all come
    /// back as `io::Error`; the caller classifies them (for the Flink
    /// connector: transient).
    pub fn request(
        &self,
        method: &str,
        authority: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<HttpResponse> {
        let addr = resolve(authority)?;
        let mut stream = TcpStream::connect_timeout(&addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        stream.set_nodelay(true)?;

        let body = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {authority}\r\nAccept: application/json\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes())?;

        // `Connection: close` means the response ends at EOF; a read
        // timeout while the server stalls surfaces as an error here.
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw)?;
        parse_response(&raw)
    }
}

fn resolve(authority: &str) -> io::Result<SocketAddr> {
    authority.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            format!("cannot resolve `{authority}`"),
        )
    })
}

fn parse_response(raw: &[u8]) -> io::Result<HttpResponse> {
    let malformed = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let split = find_subslice(raw, b"\r\n\r\n")
        .ok_or_else(|| malformed("response has no header/body separator"))?;
    let head =
        std::str::from_utf8(&raw[..split]).map_err(|_| malformed("non-UTF-8 response head"))?;
    let body_bytes = &raw[split + 4..];

    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let mut parts = status_line.split_whitespace();
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(malformed("response is not HTTP/1.x"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| malformed("unparseable status code"))?;

    let mut content_length: Option<usize> = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }

    let body_bytes = match content_length {
        // A body shorter than its declared length is a mid-response
        // disconnect — report it as the transport fault it is.
        Some(len) if body_bytes.len() < len => {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "response truncated: {} of {len} body bytes",
                    body_bytes.len()
                ),
            ))
        }
        Some(len) => &body_bytes[..len],
        None => body_bytes,
    };
    let body = std::str::from_utf8(body_bytes)
        .map_err(|_| malformed("non-UTF-8 response body"))?
        .to_string();
    Ok(HttpResponse { status, body })
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// What a [`MiniHttpServer`] handler answers with.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code (the reason phrase is derived).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: String,
}

impl HttpReply {
    /// A `200 OK` plain-text reply.
    pub fn text(body: impl Into<String>) -> Self {
        HttpReply {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8".to_string(),
            body: body.into(),
        }
    }

    /// A `200 OK` JSON reply.
    pub fn json(body: impl Into<String>) -> Self {
        HttpReply {
            status: 200,
            content_type: "application/json".to_string(),
            body: body.into(),
        }
    }

    /// A `404 Not Found` reply.
    pub fn not_found() -> Self {
        HttpReply {
            status: 404,
            content_type: "text/plain; charset=utf-8".to_string(),
            body: "not found\n".to_string(),
        }
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        _ => "Response",
    }
}

/// A tiny read-only HTTP/1.1 server: one background accept thread, one
/// `GET` request per connection (`Connection: close` framing, matching
/// [`HttpClient`]), answered by a shared handler closure receiving
/// `(method, path)`. Hostile or partial requests end only their own
/// connection; handler panics are contained per connection. The listener
/// shuts down when the server is dropped.
pub struct MiniHttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MiniHttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MiniHttpServer")
            .field("addr", &self.addr)
            .finish()
    }
}

/// Requests heads larger than this are dropped (scrape requests are tiny).
const MAX_HEAD_BYTES: usize = 16 * 1024;

impl MiniHttpServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an OS-assigned port) and serve
    /// every incoming request through `handler` on a background thread.
    pub fn bind<F>(addr: &str, handler: F) -> io::Result<Self>
    where
        F: Fn(&str, &str) -> HttpReply + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            let handler = Arc::new(handler);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let handler = Arc::clone(&handler);
                            // Contain per-connection trouble (including a
                            // panicking handler) to that connection.
                            let _ =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                                    serve_one(stream, &*handler);
                                }));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Ok(MiniHttpServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The address the server actually listens on (resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MiniHttpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn serve_one(mut stream: TcpStream, handler: &(dyn Fn(&str, &str) -> HttpReply + Send + Sync)) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let Some((method, path)) = read_request_line(&mut stream) else {
        return; // hostile/partial request: drop the connection
    };
    let reply = if method == "GET" {
        handler(&method, &path)
    } else {
        HttpReply {
            status: 405,
            content_type: "text/plain; charset=utf-8".to_string(),
            body: "only GET is served here\n".to_string(),
        }
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reply.status,
        reason_phrase(reply.status),
        reply.content_type,
        reply.body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(reply.body.as_bytes());
    let _ = stream.flush();
}

/// Read the request head (bounded) and extract `(method, path)`.
fn read_request_line(stream: &mut TcpStream) -> Option<(String, String)> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while find_subslice(&buf, b"\r\n\r\n").is_none() {
        if buf.len() > MAX_HEAD_BYTES {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
    let head_end = find_subslice(&buf, b"\r\n")?;
    let line = std::str::from_utf8(&buf[..head_end]).ok()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    Some((method, path))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_complete_response() {
        let raw =
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}";
        let r = parse_response(raw).unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "{}");
        assert!(r.is_success());
    }

    #[test]
    fn truncated_body_is_an_error() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\n{\"partial\":";
        let err = parse_response(raw).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn garbage_is_an_error_not_a_panic() {
        assert!(parse_response(b"not http at all").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
        assert!(parse_response(b"").is_err());
    }

    #[test]
    fn mini_server_answers_get_and_rejects_post() {
        let server = MiniHttpServer::bind("127.0.0.1:0", |_method, path| {
            if path == "/metrics" {
                HttpReply::text("demo_total 1\n")
            } else {
                HttpReply::not_found()
            }
        })
        .expect("bind loopback");
        let client = HttpClient::new(Duration::from_secs(5));
        let authority = server.local_addr().to_string();

        let ok = client.request("GET", &authority, "/metrics", None).unwrap();
        assert_eq!(ok.status, 200);
        assert_eq!(ok.body, "demo_total 1\n");

        let missing = client.request("GET", &authority, "/nope", None).unwrap();
        assert_eq!(missing.status, 404);

        let post = client
            .request("POST", &authority, "/metrics", None)
            .unwrap();
        assert_eq!(post.status, 405);
    }

    #[test]
    fn mini_server_survives_hostile_clients() {
        let server = MiniHttpServer::bind("127.0.0.1:0", |_, _| HttpReply::text("ok")).unwrap();
        let addr = server.local_addr();
        // Immediate disconnect, then garbage without a header terminator.
        drop(TcpStream::connect(addr).unwrap());
        {
            let mut s = TcpStream::connect(addr).unwrap();
            let _ = s.write_all(b"garbage with no terminator");
            drop(s);
        }
        // The server still answers a well-formed request afterwards.
        let client = HttpClient::new(Duration::from_secs(5));
        let r = client.request("GET", &addr.to_string(), "/", None).unwrap();
        assert_eq!(r.body, "ok");
    }

    #[test]
    fn refused_connection_is_an_io_error() {
        // Port 1 on localhost is essentially never listening.
        let client = HttpClient::new(Duration::from_millis(200));
        assert!(client
            .request("GET", "127.0.0.1:1", "/config", None)
            .is_err());
    }
}
