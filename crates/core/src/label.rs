//! Algorithm 1 — operator-level bottleneck identification.
//!
//! Labels each operator of an observed deployment as bottleneck (`1.0`),
//! non-bottleneck (`0.0`) or unlabeled (`-1.0`), exactly per the paper:
//!
//! 1. everything starts unlabeled;
//! 2. no job-level backpressure ⇒ everything is labeled `0`;
//! 3. otherwise, find the operators under backpressure whose downstream
//!    operators are *not* under backpressure (the deepest backpressured
//!    frontier — the cascading effect means only their immediate
//!    downstreams can be blamed), and label each downstream operator `d`
//!    by its resource utilization: `R(d) > T ⇒ 1`, else `0`. All other
//!    operators stay unlabeled, because job-level backpressure distorts
//!    their observed input rates (paper §IV-A).

use serde::{Deserialize, Serialize};
use streamtune_dataflow::Dataflow;
use streamtune_sim::{EngineMode, Observation};

/// Labeling thresholds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelConfig {
    /// Resource-utilization threshold `T`.
    ///
    /// The paper's running example uses CPU load > 60 %, calibrated for a
    /// real cluster whose busy-time metric under-measures. Our simulated
    /// busy fraction is exact — a truly binding operator reads ≈ 1.0 — so
    /// the default here is 0.85: high enough to avoid labeling merely-busy
    /// operators as bottlenecks (false positives permanently poison the
    /// online feedback memory), low enough to catch every binding operator.
    pub cpu_threshold: f64,
}

impl Default for LabelConfig {
    fn default() -> Self {
        LabelConfig {
            cpu_threshold: 0.85,
        }
    }
}

/// Whether an operator counts as "under backpressure" for the mode.
fn under_backpressure(obs: &Observation, idx: usize) -> bool {
    match obs.mode {
        EngineMode::Flink => obs.per_op[idx].flink_backpressured,
        // Timely has no backpressure; the 85 % rule plays the same role of
        // flagging distressed operators (§V-B). For Algorithm 1's frontier
        // logic we treat an operator whose *downstream* is overwhelmed as
        // backpressured-equivalent; the rule already fires on the
        // overwhelmed operator itself, so invert the roles below by using
        // upstream-of-bottleneck as the frontier.
        EngineMode::Timely => false,
    }
}

/// Run Algorithm 1 on one observation. Returns one label per operator in
/// `OpId` order: `1.0` bottleneck, `0.0` non-bottleneck, `-1.0` unlabeled.
pub fn bottleneck_labels(flow: &Dataflow, obs: &Observation, cfg: &LabelConfig) -> Vec<f64> {
    let n = flow.num_ops();
    assert_eq!(obs.per_op.len(), n, "observation must match the dataflow");
    // Line 1: initialize all labels to -1.
    let mut labels = vec![-1.0; n];

    // Lines 2–6: no job-level backpressure ⇒ all operators labeled 0.
    if !obs.job_backpressure {
        labels.fill(0.0);
        return labels;
    }

    match obs.mode {
        EngineMode::Flink => {
            // Line 7: operators under backpressure with no downstream
            // operator experiencing backpressure.
            let frontier: Vec<usize> = (0..n)
                .filter(|&i| {
                    under_backpressure(obs, i)
                        && flow
                            .succs(streamtune_dataflow::OpId::new(i))
                            .iter()
                            .all(|&d| !under_backpressure(obs, d.index()))
                })
                .collect();
            // Lines 8–16: label the frontier's downstream operators by
            // resource utilization.
            for &o in &frontier {
                for &d in flow.succs(streamtune_dataflow::OpId::new(o)) {
                    let r = obs.per_op[d.index()].cpu_load;
                    labels[d.index()] = if r > cfg.cpu_threshold { 1.0 } else { 0.0 };
                }
            }
            // The *sources* are operators too on a real Flink job graph; a
            // saturated first-level operator backpressures the source while
            // no in-DAG operator shows backpressure. The source is then the
            // deepest backpressured node, and its downstream operators
            // (the first-level ones) get labeled by utilization.
            let source_is_frontier = flow
                .op_ids()
                .filter(|&o| flow.is_first_level(o))
                .all(|o| !under_backpressure(obs, o.index()));
            if source_is_frontier {
                for o in flow.op_ids().filter(|&o| flow.is_first_level(o)) {
                    let r = obs.per_op[o.index()].cpu_load;
                    labels[o.index()] = if r > cfg.cpu_threshold { 1.0 } else { 0.0 };
                }
            }
        }
        EngineMode::Timely => {
            // Timely instrumentation (§V-B) flags the overwhelmed operator
            // directly: an operator consuming < 85 % of its arrivals. Label
            // those flagged operators by utilization; their siblings (other
            // downstreams of the same upstreams) by utilization too; the
            // rest stay unlabeled, mirroring the Flink variant's caution.
            for (label, op) in labels.iter_mut().zip(&obs.per_op) {
                if op.timely_bottleneck {
                    let r = op.cpu_load;
                    *label = if r > cfg.cpu_threshold { 1.0 } else { 0.0 };
                    // Upstream peers of this operator deliver distorted
                    // rates downstream; keep everything else unlabeled.
                }
            }
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamtune_dataflow::{DataflowBuilder, OpId, Operator, ParallelismAssignment};
    use streamtune_sim::SimCluster;

    /// src → filter → {win, map} — fan-out after the filter.
    fn fanout_flow(rate: f64) -> Dataflow {
        let mut b = DataflowBuilder::new("label-test");
        let s = b.add_source("s", rate);
        let f = b.add_op("filter", Operator::filter(0.6, 32, 32));
        let w = b.add_op(
            "win",
            Operator::window_aggregate(
                streamtune_dataflow::AggregateFunction::Count,
                streamtune_dataflow::AggregateClass::Int,
                streamtune_dataflow::JoinKeyClass::Int,
                streamtune_dataflow::WindowType::Tumbling,
                streamtune_dataflow::WindowPolicy::Time,
                60.0,
                0.0,
                0.05,
            ),
        );
        let m = b.add_op("map", Operator::map(32, 32));
        b.connect_source(s, f);
        b.connect(f, w);
        b.connect(f, m);
        b.build().unwrap()
    }

    #[test]
    fn no_backpressure_labels_all_zero() {
        let flow = fanout_flow(1000.0);
        let cluster = SimCluster::flink_defaults(2);
        let rep = cluster.simulate(&flow, &ParallelismAssignment::uniform(&flow, 4));
        assert!(!rep.observation.job_backpressure);
        let labels = bottleneck_labels(&flow, &rep.observation, &LabelConfig::default());
        assert_eq!(labels, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn starved_window_labeled_one_busy_sibling_labeled_zero() {
        // Mirror the paper's Fig. 3: O1 backpressured, O2 (hot) labeled 1,
        // O3 (cool) labeled 0.
        let flow = fanout_flow(2.0e6);
        let cluster = SimCluster::flink_defaults(2);
        let mut asg = ParallelismAssignment::uniform(&flow, 60);
        asg.set_degree(OpId::new(1), 1); // starve the window aggregate
        let rep = cluster.simulate(&flow, &asg);
        assert!(rep.observation.job_backpressure);
        let labels = bottleneck_labels(&flow, &rep.observation, &LabelConfig::default());
        assert_eq!(labels[1], 1.0, "hot window is the bottleneck");
        assert_eq!(labels[2], 0.0, "cool sibling map is not");
        assert_eq!(labels[0], -1.0, "the backpressured filter stays unlabeled");
    }

    #[test]
    fn deep_chain_only_frontier_downstream_labeled() {
        // src → a → b → slow: a and b are both backpressured; only b is the
        // frontier (its downstream `slow` is saturated, not backpressured),
        // so only `slow` gets labeled.
        let mut bld = DataflowBuilder::new("deep-label");
        let s = bld.add_source("s", 2.0e6);
        let a = bld.add_op("a", Operator::map(16, 16));
        let c = bld.add_op("b", Operator::map(16, 16));
        let slow = bld.add_op(
            "slow",
            Operator::window_join(
                streamtune_dataflow::JoinKeyClass::Composite,
                streamtune_dataflow::WindowType::Sliding,
                streamtune_dataflow::WindowPolicy::Time,
                300.0,
                10.0,
                0.5,
            ),
        );
        bld.connect_source(s, a);
        bld.connect(a, c);
        bld.connect(c, slow);
        let flow = bld.build().unwrap();
        let cluster = SimCluster::flink_defaults(4);
        let mut asg = ParallelismAssignment::uniform(&flow, 80);
        asg.set_degree(OpId::new(2), 1);
        let rep = cluster.simulate(&flow, &asg);
        let labels = bottleneck_labels(&flow, &rep.observation, &LabelConfig::default());
        assert_eq!(labels[2], 1.0, "slow join labeled bottleneck");
        assert_eq!(labels[0], -1.0);
        assert_eq!(labels[1], -1.0, "mid-chain ops stay unlabeled");
    }

    #[test]
    fn timely_mode_labels_flagged_operator() {
        let flow = fanout_flow(5.0e7);
        let cluster = SimCluster::timely_defaults(2);
        let rep = cluster.simulate(&flow, &ParallelismAssignment::uniform(&flow, 1));
        assert!(rep.observation.job_backpressure);
        let labels = bottleneck_labels(&flow, &rep.observation, &LabelConfig::default());
        // At least one operator flagged and labeled as bottleneck.
        assert!(labels.contains(&1.0));
    }

    #[test]
    fn threshold_separates_hot_from_cool() {
        let flow = fanout_flow(2.0e6);
        let cluster = SimCluster::flink_defaults(2);
        let mut asg = ParallelismAssignment::uniform(&flow, 60);
        asg.set_degree(OpId::new(1), 1);
        let rep = cluster.simulate(&flow, &asg);
        // With an absurdly high threshold nothing is "hot".
        let strict = LabelConfig { cpu_threshold: 1.1 };
        let labels = bottleneck_labels(&flow, &rep.observation, &strict);
        assert!(labels.iter().all(|&l| l != 1.0));
    }
}
