//! StreamTune core: the pre-training + fine-tuning parallelism tuner.
//!
//! This crate is the paper's primary contribution:
//!
//! * [`label`] — Algorithm 1, systematic operator-level bottleneck labeling
//!   from engine metrics;
//! * [`pretrain`] — the offline phase: GED-cluster the execution-history
//!   corpus, pre-train one GNN encoder per cluster on bottleneck
//!   classification, and materialize per-cluster warm-up datasets;
//! * [`tune`] — Algorithm 2, the online phase: nearest-cluster assignment,
//!   monotonic fine-tuning model over parallelism-agnostic embeddings, and
//!   topological-order per-operator minimum-parallelism recommendation with
//!   redeploy-and-feedback iteration.

pub mod label;
pub mod pretrain;
pub mod tune;

pub use label::{bottleneck_labels, LabelConfig};
pub use pretrain::{PretrainConfig, Pretrained, Pretrainer};
pub use streamtune_ged::Parallelism;
pub use tune::{ModelKind, StreamTune, TuneConfig};
