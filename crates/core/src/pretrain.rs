//! Offline pre-training (paper §IV-A, §IV-C).
//!
//! Pipeline: execution histories → Algorithm 1 labels → GED k-means over
//! the distinct DAG structures → one GNN encoder per cluster, trained on
//! operator-level bottleneck classification with parallelism-aware FUSE
//! updates → per-cluster warm-up datasets of `(agnostic embedding,
//! parallelism, label)` triples for the online phase.
//!
//! When the corpus is too small for meaningful clustering, the §VII
//! fallback applies: one *global* encoder trained on everything.

use crate::label::{bottleneck_labels, LabelConfig};
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use streamtune_cluster::{cluster_dags_cached, nearest_center, ClusterConfig};
use streamtune_dataflow::{Dataflow, FeatureEncoder, GraphSignature};
use streamtune_ged::{ged_with, parallel_map, Bound, GedCache, GraphView, Parallelism, StructId};
use streamtune_model::TrainPoint;
use streamtune_nn::{GnnConfig, GnnEncoder, GraphSample, Tape};
use streamtune_workloads::history::ExecutionRecord;

/// Log-normalization constant for the per-operator input-rate feature that
/// is appended to every `M_f` embedding: `ln(1 + rate) / ln(1 + 1e8)`.
///
/// The paper relies on message passing to propagate source rates into the
/// operator embeddings; a compact encoder does this imperfectly, so we
/// additionally expose the operator's *observed input rate* (the same
/// signal every Flink/Timely dashboard reports) as an explicit feature.
/// Documented as an implementation deviation in DESIGN.md §4.
pub const RATE_FEATURE_NORM: f64 = 18.420_680_743_952_367; // ln(1e8)

/// Normalized input-rate feature.
pub fn rate_feature(rate: f64) -> f64 {
    (1.0 + rate.max(0.0)).ln() / RATE_FEATURE_NORM
}

/// Pre-training configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PretrainConfig {
    /// GNN hyperparameters.
    pub gnn: GnnConfig,
    /// Clustering settings (k chosen by elbow by default).
    pub cluster: ClusterConfig,
    /// Training epochs over each cluster's sample set.
    pub epochs: usize,
    /// Algorithm 1 thresholds.
    pub label: LabelConfig,
    /// Minimum number of *distinct DAG structures* required to cluster at
    /// all; below this the §VII global-encoder fallback is used.
    pub min_structures_for_clustering: usize,
    /// Minimum warm-up points per cluster: sparse clusters are topped up
    /// with samples from the rest of the corpus (embedded by the cluster's
    /// own encoder) so the online model never starts blind.
    pub min_warmup_points: usize,
    /// Initialization seed.
    pub seed: u64,
    /// Worker threads for the independent per-cluster training loops (each
    /// cluster has its own seeded RNG, so any thread count is bit-identical).
    pub parallelism: Parallelism,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        PretrainConfig {
            gnn: GnnConfig::default(),
            cluster: ClusterConfig::default(),
            epochs: 40,
            label: LabelConfig::default(),
            min_structures_for_clustering: 6,
            min_warmup_points: 150,
            seed: 1234,
            parallelism: Parallelism::Auto,
        }
    }
}

impl PretrainConfig {
    /// A reduced-cost configuration for tests and examples.
    pub fn fast() -> Self {
        PretrainConfig {
            gnn: GnnConfig {
                hidden_dim: 16,
                message_passing_steps: 2,
                ..Default::default()
            },
            cluster: ClusterConfig {
                k_max: 4,
                max_iters: 5,
                ..Default::default()
            },
            epochs: 15,
            ..Default::default()
        }
    }
}

/// One pre-trained cluster: its encoder and warm-up data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterModel {
    /// The cluster's similarity-center DAG structure.
    pub center: GraphView,
    /// The pre-trained GNN encoder.
    pub encoder: GnnEncoder,
    /// Warm-up dataset: `(agnostic embedding, parallelism, label)` for every
    /// labeled operator of every member record (Algorithm 2, line 3).
    pub warmup: Vec<TrainPoint>,
    /// Final training loss of the encoder on its cluster.
    pub final_loss: f64,
}

/// The output of the offline phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pretrained {
    /// One model per cluster (a single entry = the §VII global fallback).
    pub clusters: Vec<ClusterModel>,
    /// Whether the global fallback was used instead of clustering.
    pub global_fallback: bool,
    /// Feature encoder bounds shared by offline and online phases.
    pub features: FeatureEncoder,
    /// GED cap used for nearest-center assignment.
    pub ged_cap: usize,
}

impl Pretrained {
    /// Algorithm 2 line 1–2: assign a target DAG to its nearest cluster and
    /// return that cluster's model. Returns `(cluster index, model)`.
    pub fn assign(&self, flow: &Dataflow) -> (usize, &ClusterModel) {
        if self.clusters.len() == 1 {
            return (0, &self.clusters[0]);
        }
        let view = GraphView::of(flow);
        let centers: Vec<GraphView> = self.clusters.iter().map(|c| c.center.clone()).collect();
        let (idx, _) = nearest_center(&view, &centers, self.ged_cap);
        (idx, &self.clusters[idx])
    }

    /// Total warm-up points across clusters.
    pub fn total_warmup_points(&self) -> usize {
        self.clusters.iter().map(|c| c.warmup.len()).sum()
    }

    /// Capped GED from a target DAG to every cluster center, in cluster
    /// order (distances above [`Self::ged_cap`] read `ged_cap + 1`).
    ///
    /// Pure: runs fresh threshold-pruned A\* searches against the stored
    /// centers without touching any [`GedCache`] memoization state, so
    /// audit-trail capture can never perturb later assignment decisions.
    pub fn center_distances(&self, flow: &Dataflow) -> Vec<usize> {
        let view = GraphView::of(flow);
        self.clusters
            .iter()
            .map(|c| ged_with(&view, &c.center, Bound::LabelSet, self.ged_cap).capped())
            .collect()
    }
}

/// Pretrain phase names, in pipeline order, as exposed on the
/// `streamtune_pretrain_phase_duration_nanoseconds{phase=...}` histogram.
pub const PRETRAIN_PHASES: [&str; 4] = ["label", "intern", "cluster", "train"];

/// Returns a recorder that logs one phase's elapsed wall-clock time into
/// the per-phase duration histogram and hands back the elapsed
/// nanoseconds. Timing is observational only: it never feeds back into
/// the pre-training pipeline.
fn phase_histogram() -> impl Fn(&str, std::time::Instant) -> u64 {
    |phase: &str, start: std::time::Instant| {
        let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        streamtune_telemetry::global()
            .histogram_with(
                "streamtune_pretrain_phase_duration_nanoseconds",
                "Wall-clock duration of each offline pre-training phase.",
                &[("phase", phase)],
            )
            .record(elapsed);
        elapsed
    }
}

/// The offline pre-trainer.
#[derive(Debug, Clone)]
pub struct Pretrainer {
    config: PretrainConfig,
}

impl Pretrainer {
    /// New pre-trainer with `config`.
    pub fn new(config: PretrainConfig) -> Self {
        Pretrainer { config }
    }

    /// Label a corpus with Algorithm 1 and lower it to GNN samples.
    fn samples(&self, records: &[ExecutionRecord], features: &FeatureEncoder) -> Vec<GraphSample> {
        records
            .iter()
            .map(|r| {
                let labels = bottleneck_labels(&r.flow, &r.observation, &self.config.label);
                GraphSample::from_dataflow(&r.flow, features, r.assignment.as_slice(), &labels)
            })
            .collect()
    }

    /// Run the full offline phase on an execution-history corpus.
    ///
    /// Performance shape: distinct DAG structures are interned into one
    /// corpus-level [`GedCache`] (duplicates collapse to a multiplicity
    /// weight), the weighted GED k-means reuses that cache across its whole
    /// elbow sweep, and the independent per-cluster GNN training loops fan
    /// out over scoped worker threads. Every stage is bit-for-bit
    /// deterministic under a fixed seed regardless of thread count.
    pub fn run(&self, records: &[ExecutionRecord]) -> Pretrained {
        let mut cache = GedCache::new(Bound::LabelSet, self.config.cluster.ged_cap);
        self.run_with_cache(records, &mut cache)
    }

    /// [`Pretrainer::run`], but interning into (and memoizing through) a
    /// caller-owned [`GedCache`] — the warm-start path. A cache restored
    /// from a prior run's snapshot already holds every A\* fact the
    /// clustering sweep will ask for, so a repeated pre-training run does
    /// no GED searches at all; a cold (empty) cache makes this identical
    /// to [`Pretrainer::run`]. The cache may contain structures beyond
    /// this corpus (e.g. from an earlier, larger corpus): clustering is
    /// restricted to the structures this corpus actually interns, and
    /// memoized facts are sound regardless of the cap they were computed
    /// under (they are exact distances or proven lower bounds, escalated
    /// on demand).
    pub fn run_with_cache(&self, records: &[ExecutionRecord], cache: &mut GedCache) -> Pretrained {
        assert!(!records.is_empty(), "empty execution history");
        let phase_timer = phase_histogram();
        let features = FeatureEncoder::default();
        let phase_start = std::time::Instant::now();
        let samples = self.samples(records, &features);
        let label_elapsed = phase_timer("label", phase_start);

        // Intern distinct DAG structures (many records share a structure).
        let phase_start = std::time::Instant::now();
        let record_structure: Vec<StructId> = records
            .iter()
            .map(|r| cache.intern(&GraphView::of(&r.flow), &GraphSignature::of(&r.flow)))
            .collect();
        // This corpus' distinct structures, in interned-id order. With a
        // cold cache this is exactly 0..cache.len(); a warm cache may hold
        // foreign structures, which must not join the clustering.
        let mut distinct: Vec<StructId> = record_structure.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let mut position = vec![usize::MAX; cache.len()];
        for (pos, &s) in distinct.iter().enumerate() {
            position[s] = pos;
        }
        let intern_elapsed = phase_timer("intern", phase_start);

        let phase_start = std::time::Instant::now();
        let use_clustering = distinct.len() >= self.config.min_structures_for_clustering;
        let (memberships, centers): (Vec<usize>, Vec<GraphView>) = if use_clustering {
            // Cluster the distinct structures, weighted by multiplicity.
            let mut weights = vec![0.0f64; distinct.len()];
            for &s in &record_structure {
                weights[position[s]] += 1.0;
            }
            let clustering = cluster_dags_cached(cache, &distinct, &weights, &self.config.cluster);
            let centers = clustering
                .centers
                .iter()
                .map(|&g| cache.graph(distinct[g]).clone())
                .collect();
            (
                record_structure
                    .iter()
                    .map(|&s| clustering.assignments[position[s]])
                    .collect(),
                centers,
            )
        } else {
            // §VII fallback: one global cluster centered on the first DAG.
            (
                vec![0; records.len()],
                vec![cache.graph(record_structure[0]).clone()],
            )
        };
        let cluster_elapsed = phase_timer("cluster", phase_start);

        // Per-cluster pre-training is embarrassingly parallel: every
        // cluster has its own RNG seeded from (seed, cluster index), so the
        // fan-out only partitions work and any thread count produces the
        // same encoders and warm-up sets.
        let phase_start = std::time::Instant::now();
        let cluster_indices: Vec<usize> = (0..centers.len()).collect();
        let clusters = parallel_map(self.config.parallelism, &cluster_indices, |&c| {
            self.train_cluster(c, &centers[c], &samples, &memberships, records)
        });
        let train_elapsed = phase_timer("train", phase_start);
        streamtune_telemetry::emit_with(
            streamtune_telemetry::Level::Debug,
            "core.pretrain",
            format!(
                "pre-trained {} cluster(s) over {} record(s)",
                clusters.len(),
                records.len()
            ),
            &[
                ("label_us", &(label_elapsed / 1_000).to_string()),
                ("intern_us", &(intern_elapsed / 1_000).to_string()),
                ("cluster_us", &(cluster_elapsed / 1_000).to_string()),
                ("train_us", &(train_elapsed / 1_000).to_string()),
            ],
        );

        Pretrained {
            clusters,
            global_fallback: !use_clustering,
            features,
            ged_cap: self.config.cluster.ged_cap,
        }
    }

    /// Train one cluster's encoder and harvest its warm-up dataset.
    fn train_cluster(
        &self,
        c: usize,
        center: &GraphView,
        samples: &[GraphSample],
        memberships: &[usize],
        records: &[ExecutionRecord],
    ) -> ClusterModel {
        let member_samples: Vec<GraphSample> = samples
            .iter()
            .zip(memberships)
            .filter(|&(_, &m)| m == c)
            .map(|(s, _)| s.clone())
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed.wrapping_add(c as u64));
        let mut encoder = GnnEncoder::new(self.config.gnn.clone(), &mut rng);
        let mut final_loss = 0.0;
        if !member_samples.is_empty() {
            for _ in 0..self.config.epochs {
                final_loss = encoder.train_step(&member_samples);
            }
        }
        // Warm-up dataset: agnostic embeddings + input-rate feature +
        // recorded (p, label). Sparse clusters are topped up with
        // non-member samples embedded by this cluster's encoder. One tape
        // is reused across all embeddings.
        let mut warmup = Vec::new();
        let mut tape = Tape::new();
        let harvest =
            |s: &GraphSample, rates: &[f64], tape: &mut Tape, warmup: &mut Vec<TrainPoint>| {
                let emb = encoder.embed_agnostic_with(tape, s);
                for (i, &l) in s.labels.iter().enumerate() {
                    if l < 0.0 {
                        continue;
                    }
                    let mut e = emb.row(i).to_vec();
                    e.push(rate_feature(rates[i]));
                    warmup.push(TrainPoint {
                        embedding: e,
                        parallelism: s.parallelism[i],
                        bottleneck: l == 1.0,
                    });
                }
            };
        // Truthful rate per labeled operator: a 0-label taken during a
        // backpressured run only certifies the operator at the
        // *throttled* rate it actually received; a 1-label (and any
        // label from a backpressure-free run) refers to the full
        // demand rate.
        let record_rates = |r: &ExecutionRecord| -> Vec<f64> {
            r.observation
                .per_op
                .iter()
                .map(|o| {
                    if r.observation.job_backpressure && !o.saturated {
                        o.processed_rate
                    } else {
                        o.input_rate
                    }
                })
                .collect()
        };
        for ((s, &m), r) in samples.iter().zip(memberships).zip(records) {
            if m == c {
                harvest(s, &record_rates(r), &mut tape, &mut warmup);
            }
        }
        if warmup.len() < self.config.min_warmup_points {
            for ((s, &m), r) in samples.iter().zip(memberships).zip(records) {
                if m != c {
                    harvest(s, &record_rates(r), &mut tape, &mut warmup);
                }
                if warmup.len() >= self.config.min_warmup_points {
                    break;
                }
            }
        }
        ClusterModel {
            center: center.clone(),
            encoder,
            warmup,
            final_loss,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamtune_sim::SimCluster;
    use streamtune_workloads::history::HistoryGenerator;

    fn small_corpus(seed: u64, jobs: usize) -> Vec<ExecutionRecord> {
        let cluster = SimCluster::flink_defaults(seed);
        HistoryGenerator::new(seed)
            .with_jobs(jobs)
            .with_runs_per_job(2)
            .generate(&cluster)
    }

    #[test]
    fn pretraining_produces_clusters_and_warmup() {
        let corpus = small_corpus(3, 18);
        let pre = Pretrainer::new(PretrainConfig::fast()).run(&corpus);
        assert!(!pre.clusters.is_empty());
        assert!(
            pre.total_warmup_points() > 0,
            "histories must yield labeled warm-up points"
        );
        for c in &pre.clusters {
            assert!(c.final_loss.is_finite());
        }
    }

    #[test]
    fn global_fallback_on_tiny_corpus() {
        let cluster = SimCluster::flink_defaults(5);
        let corpus = HistoryGenerator::new(5)
            .with_jobs(3)
            .with_runs_per_job(4)
            .generate(&cluster);
        let mut cfg = PretrainConfig::fast();
        cfg.min_structures_for_clustering = 10;
        let pre = Pretrainer::new(cfg).run(&corpus);
        assert!(pre.global_fallback);
        assert_eq!(pre.clusters.len(), 1);
    }

    #[test]
    fn assign_returns_valid_cluster() {
        let corpus = small_corpus(7, 16);
        let pre = Pretrainer::new(PretrainConfig::fast()).run(&corpus);
        let target = streamtune_workloads::nexmark::q5(streamtune_workloads::rates::Engine::Flink);
        let (idx, model) = pre.assign(&target.flow);
        assert!(idx < pre.clusters.len());
        assert_eq!(model.encoder.hidden_dim(), 16);
        // The audit-trail helper agrees with the assignment: one capped
        // distance per center, minimized (ties to the lower index) at the
        // assigned cluster.
        let dists = pre.center_distances(&target.flow);
        assert_eq!(dists.len(), pre.clusters.len());
        let argmin = dists
            .iter()
            .enumerate()
            .min_by_key(|&(c, &d)| (d, c))
            .map(|(c, _)| c)
            .unwrap();
        assert_eq!(argmin, idx);
    }

    #[test]
    fn warmup_embedding_dims_match_encoder() {
        let corpus = small_corpus(9, 12);
        let pre = Pretrainer::new(PretrainConfig::fast()).run(&corpus);
        for c in &pre.clusters {
            for pt in &c.warmup {
                // hidden embedding + the appended input-rate feature
                assert_eq!(pt.embedding.len(), c.encoder.hidden_dim() + 1);
                assert!(pt.parallelism >= 1);
                let rate_feat = pt.embedding.last().unwrap();
                assert!((0.0..=1.2).contains(rate_feat));
            }
        }
    }

    #[test]
    fn run_with_cache_matches_run_and_warm_start_skips_searches() {
        let corpus = small_corpus(13, 16);
        let pretrainer = Pretrainer::new(PretrainConfig::fast());
        let cold = pretrainer.run(&corpus);

        // A fresh caller-owned cache reproduces `run` exactly.
        let mut cache = GedCache::new(Bound::LabelSet, PretrainConfig::fast().cluster.ged_cap);
        let first = pretrainer.run_with_cache(&corpus, &mut cache);
        assert_eq!(first.clusters.len(), cold.clusters.len());
        for (a, b) in first.clusters.iter().zip(&cold.clusters) {
            assert_eq!(a.center, b.center);
            assert_eq!(a.final_loss.to_bits(), b.final_loss.to_bits());
            assert_eq!(a.warmup, b.warmup);
        }
        let cold_searches = cache.stats().searches;
        assert!(cold_searches > 0, "clustering must have run A* searches");

        // Re-running on the warm cache does zero new searches and yields
        // the same model.
        let mut warm = GedCache::from_snapshot(cache.snapshot()).expect("valid snapshot");
        let again = pretrainer.run_with_cache(&corpus, &mut warm);
        assert_eq!(warm.stats().searches, 0, "warm start must not search");
        for (a, b) in again.clusters.iter().zip(&first.clusters) {
            assert_eq!(a.center, b.center);
            assert_eq!(a.final_loss.to_bits(), b.final_loss.to_bits());
        }
    }

    #[test]
    fn training_beats_chance_on_own_clusters() {
        // An untrained encoder sits near the chance BCE of ln 2 ≈ 0.693 on
        // its own members; after pre-training each cluster's final epoch
        // loss must be clearly below that on average.
        let corpus = small_corpus(11, 14);
        let trained = Pretrainer::new(PretrainConfig::fast()).run(&corpus);
        let mean_final: f64 = trained.clusters.iter().map(|c| c.final_loss).sum::<f64>()
            / trained.clusters.len() as f64;
        assert!(
            mean_final < 0.60,
            "mean per-cluster training loss {mean_final} should beat chance (0.693)"
        );
    }
}
