//! Algorithm 2 — online parallelism tuning.
//!
//! Given a pre-trained [`Pretrained`] bundle and a tuning session, the
//! tuner (1) assigns the target DAG to its nearest cluster, (2) seeds a
//! fine-tuning dataset from the cluster's warm-up points, then (3)
//! iterates: fit the monotonic model `M_f`, recommend for every operator
//! (in topological order) the smallest parallelism predicted
//! non-bottleneck, redeploy, collect Algorithm 1 feedback into the
//! dataset, and stop when the recommendation stabilizes without
//! backpressure.

use crate::label::bottleneck_labels;
use crate::pretrain::Pretrained;
use serde::{Deserialize, Serialize};
use streamtune_backend::{TuneError, TuneOutcome, Tuner, TuningSession};
use streamtune_model::{
    recommend_min_parallelism_at, BottleneckClassifier, GbdtConfig, MonotonicGbdt, MonotonicSvm,
    NnClassifier, NnConfig, SvmConfig, TrainPoint,
};
use streamtune_nn::GraphSample;

/// Which fine-tuning model family to use (paper §IV-B, Fig. 11a ablation).
///
/// The paper's headline experiments use the SVM head; its ablation finds
/// SVM ≈ XGBoost. Our from-scratch SVM approximation calibrates worse than
/// our monotone GBDT on this substrate, so this reproduction defaults to
/// `Xgboost` (recorded in EXPERIMENTS.md); `Svm` remains available and is
/// exercised by the Fig. 11a ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Monotonic SVM (the paper's default in §V-C).
    Svm,
    /// Monotonic gradient-boosted trees (the paper's XGBoost).
    Xgboost,
    /// Unconstrained neural network (ablation baseline).
    Nn,
}

impl ModelKind {
    /// Instantiate the classifier.
    pub fn build(self) -> Box<dyn BottleneckClassifier> {
        match self {
            ModelKind::Svm => Box::new(MonotonicSvm::new(SvmConfig::default())),
            ModelKind::Xgboost => Box::new(MonotonicGbdt::new(GbdtConfig::default())),
            ModelKind::Nn => Box::new(NnClassifier::new(NnConfig::default())),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Svm => "SVM",
            ModelKind::Xgboost => "XGBoost",
            ModelKind::Nn => "NN",
        }
    }
}

/// Online tuning configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneConfig {
    /// Fine-tuning model family.
    pub model: ModelKind,
    /// Iteration cap (safety net; the loop normally stops on stability).
    pub max_iterations: u32,
    /// Algorithm 1 labeling thresholds for the feedback loop.
    pub label: crate::label::LabelConfig,
    /// Cap on warm-up points taken from the cluster (keeps refits cheap).
    pub max_warmup_points: usize,
    /// Replication factor for online feedback points: the target job's own
    /// observations must outweigh the coarse warm-up prior, so each ΔT
    /// point enters the dataset this many times.
    pub feedback_weight: usize,
    /// Decision threshold of the min-parallelism search: accept `p` once
    /// `P(bottleneck) < safety_threshold`. Below 0.5 = conservative margin
    /// against under-provisioning (paper Table III: zero occurrences).
    pub safety_threshold: f64,
    /// Cap on remembered per-job feedback points across tune calls.
    pub max_job_memory: usize,
    /// Enable the sound bound/probe/pad guard rails around the model's
    /// recommendation. Disabled by the Fig. 11a ablation to isolate the
    /// prediction layer itself.
    pub guards: bool,
}

impl Default for TuneConfig {
    fn default() -> Self {
        TuneConfig {
            model: ModelKind::Xgboost,
            max_iterations: 15,
            label: crate::label::LabelConfig::default(),
            max_warmup_points: 600,
            feedback_weight: 10,
            safety_threshold: 0.35,
            max_job_memory: 1500,
            guards: true,
        }
    }
}

/// The StreamTune online tuner.
///
/// Keep one instance alive per long-running job: the fine-tuned prediction
/// layer's feedback dataset persists across `tune` calls (keyed by job
/// name), so repeated source-rate changes are answered from accumulated
/// knowledge with few reconfigurations (paper §III: "runtime feedback is
/// collected to refine the prediction layer").
pub struct StreamTune<'a> {
    pretrained: &'a Pretrained,
    config: TuneConfig,
    /// Cluster the last tuned job was assigned to.
    pub last_cluster: Option<usize>,
    jobs: std::collections::HashMap<String, JobState>,
}

/// Persistent per-job knowledge across tuning processes.
#[derive(Debug, Clone, Default)]
struct JobState {
    /// Remembered `M_f` feedback points.
    memory: Vec<TrainPoint>,
    /// Per-operator certified threshold intervals, indexed by the
    /// operator's demand rate: `(rate, lower, upper)`. Thresholds are
    /// monotone in the demand rate, so bounds transfer across rates:
    /// a lower bound observed at a smaller rate and an upper bound observed
    /// at a larger rate both remain sound.
    bounds: Vec<Vec<(f64, u32, u32)>>,
}

impl JobState {
    /// Sound initial `(lower, upper, certified)` for operator `i` at
    /// demand `rate`, given all recorded intervals.
    fn initial_bounds(&self, i: usize, rate: f64, p_max: u32) -> (u32, u32, bool) {
        let mut lb = 1u32;
        let mut ub = p_max;
        let mut certified = false;
        if let Some(entries) = self.bounds.get(i) {
            for &(r, l, u) in entries {
                if r <= rate * (1.0 + 1e-9) {
                    lb = lb.max(l);
                }
                if r >= rate * (1.0 - 1e-9) {
                    ub = ub.min(u);
                    if u < p_max {
                        certified = true;
                    }
                }
            }
        }
        (lb, ub.max(lb), certified)
    }

    /// Record the interval learned for operator `i` at `rate`.
    fn record(&mut self, i: usize, rate: f64, lb: u32, ub: u32) {
        if self.bounds.len() <= i {
            self.bounds.resize(i + 1, Vec::new());
        }
        let entries = &mut self.bounds[i];
        for e in entries.iter_mut() {
            if (e.0 - rate).abs() <= rate.abs() * 1e-9 {
                e.1 = e.1.max(lb);
                e.2 = e.2.min(ub).max(e.1);
                return;
            }
        }
        entries.push((rate, lb, ub));
    }
}

impl<'a> StreamTune<'a> {
    /// New tuner over a pre-trained bundle.
    pub fn new(pretrained: &'a Pretrained, config: TuneConfig) -> Self {
        StreamTune {
            pretrained,
            config,
            last_cluster: None,
            jobs: std::collections::HashMap::new(),
        }
    }

    /// Accumulated feedback points for a job (for tests/inspection).
    pub fn job_memory_len(&self, job: &str) -> usize {
        self.jobs.get(job).map_or(0, |j| j.memory.len())
    }

    /// Parallelism-agnostic per-operator embeddings of the session's flow
    /// at its *current* source rates, with the input-rate feature appended
    /// (see [`crate::pretrain::rate_feature`]). The per-operator demand is
    /// derived from the logical query's source rates and selectivities —
    /// the same number the engine's dashboard reports as the input rate.
    fn embeddings_inner(
        &self,
        flow: &streamtune_dataflow::Dataflow,
        cluster: usize,
    ) -> Vec<Vec<f64>> {
        let dummy_p = vec![1u32; flow.num_ops()];
        let labels = vec![-1.0; flow.num_ops()];
        let sample = GraphSample::from_dataflow(flow, &self.pretrained.features, &dummy_p, &labels);
        let emb = self.pretrained.clusters[cluster]
            .encoder
            .embed_agnostic(&sample);
        let demand = streamtune_sim::rates::demand_rates(flow);
        (0..flow.num_ops())
            .map(|i| {
                let mut e = emb.row(i).to_vec();
                e.push(crate::pretrain::rate_feature(demand.input[i]));
                e
            })
            .collect()
    }
}

impl Tuner for StreamTune<'_> {
    fn name(&self) -> &str {
        "StreamTune"
    }

    fn tune(&mut self, session: &mut TuningSession<'_>) -> Result<TuneOutcome, TuneError> {
        let flow = session.flow().clone();
        let flow = &flow;
        let p_max = session.max_parallelism();
        // Lines 1–2: nearest cluster + its encoder.
        let (cluster_idx, model) = {
            let mut span = streamtune_telemetry::child_span("core.tune", "assign_cluster");
            let (cluster_idx, model) = self.pretrained.assign(flow);
            span.add_field("cluster", cluster_idx);
            (cluster_idx, model)
        };
        self.last_cluster = Some(cluster_idx);
        // Line 3: warm-up dataset, plus the job's remembered feedback from
        // earlier tuning processes (the persistent fine-tuned layer).
        let mut dataset: Vec<TrainPoint> = model
            .warmup
            .iter()
            .take(self.config.max_warmup_points)
            .cloned()
            .collect();
        let embeddings = self.embeddings_inner(session.flow(), cluster_idx);
        let demand = streamtune_sim::rates::demand_rates(flow);
        let job_state = self.jobs.entry(flow.name().to_string()).or_default();
        dataset.extend(job_state.memory.iter().cloned());
        let mut session_feedback: Vec<TrainPoint> = Vec::new();

        let mut mf = self.config.model.build();
        let mut current: Option<streamtune_dataflow::ParallelismAssignment> = None;
        let mut last_backpressure = true;
        let mut iterations = 0u32;
        let mut converged = false;
        let mut best_good: Option<streamtune_dataflow::ParallelismAssignment> = None;
        // Sound per-operator bounds on the bottleneck threshold, implied by
        // the monotonic system behaviour the model is constrained to: a
        // bottleneck observed at p ⇒ the threshold exceeds p (lower bound);
        // a non-bottleneck label in a backpressure-free deployment at p ⇒
        // p suffices (upper bound). The model interpolates *within* these
        // bounds, which guarantees progress even when the pre-trained prior
        // is off for an out-of-distribution job.
        // Bounds are seeded from the job's recorded intervals at other
        // rates (sound by rate-monotonicity of the thresholds).
        let n_ops = flow.num_ops();
        let mut lower = vec![1u32; n_ops];
        let mut upper = vec![p_max; n_ops];
        let mut certified = vec![false; n_ops];
        for i in 0..n_ops {
            let (lb, ub, cert) = job_state.initial_bounds(i, demand.input[i], p_max);
            lower[i] = lb;
            upper[i] = ub;
            certified[i] = cert;
        }
        // Geometric probe floor applied after a fresh bottleneck label when
        // the model still under-predicts (the fine-tuning analogue of
        // ContTune's Big step); cleared once the operator stops hurting.
        let mut probe = vec![0u32; n_ops];

        while iterations < self.config.max_iterations {
            iterations += 1;
            // Line 5: fit the monotonic model.
            let mut degrees = Vec::with_capacity(n_ops);
            if dataset.is_empty() {
                // No knowledge at all: be conservative, start at 1.
                degrees = vec![1; n_ops];
            } else {
                mf.fit(&dataset);
                // Lines 6–9: recommend per operator in topological order.
                let mut by_op = vec![1u32; n_ops];
                for &op in flow.topo_order() {
                    let i = op.index();
                    let h = &embeddings[i];
                    let mut rec = recommend_min_parallelism_at(
                        mf.as_ref(),
                        h,
                        p_max,
                        self.config.safety_threshold,
                    )
                    .unwrap_or(p_max);
                    // First visit to this operating point: add a safety pad
                    // so exploration starts from the safe side (the paper's
                    // StreamTune records zero backpressure occurrences).
                    if self.config.guards {
                        if !certified[i] {
                            rec = rec.saturating_add(2 + rec / 5).min(p_max);
                        }
                        let hi = upper[i].max(lower[i]);
                        by_op[i] = rec.max(probe[i]).clamp(lower[i], hi);
                    } else {
                        by_op[i] = rec;
                    }
                }
                degrees.extend_from_slice(&by_op);
            }
            let assignment = streamtune_dataflow::ParallelismAssignment::from_vec(degrees);

            // The paper's do-while stops when the recommendation no longer
            // differs from the current deployment.
            if current.as_ref() == Some(&assignment) {
                if !last_backpressure {
                    converged = true;
                }
                // Identical recommendation under persistent backpressure is
                // a stuck state (conflicting labels); stop rather than
                // burning monitoring intervals — the fallback below and the
                // next rate change recover.
                if !last_backpressure || iterations >= 3 {
                    break;
                }
            }

            if std::env::var_os("STREAMTUNE_DEBUG").is_some() {
                eprintln!(
                    "  iter {iterations}: deploy {:?} lb {:?} ub {:?} cert {:?}",
                    assignment.as_slice(),
                    lower,
                    upper,
                    certified
                );
            }
            // Line 10: redeploy and monitor.
            let obs = session.deploy(&assignment)?;
            if std::env::var_os("STREAMTUNE_DEBUG").is_some() {
                eprintln!("    -> bp={}", obs.job_backpressure);
            }
            last_backpressure = obs.job_backpressure;
            // Line 11: ΔT feedback.
            let labels = bottleneck_labels(flow, &obs, &self.config.label);
            if std::env::var_os("STREAMTUNE_DEBUG").is_some() {
                let cpu: Vec<f64> = obs
                    .per_op
                    .iter()
                    .map(|o| (o.cpu_load * 100.0).round() / 100.0)
                    .collect();
                let bp: Vec<bool> = obs.per_op.iter().map(|o| o.flink_backpressured).collect();
                let sat: Vec<bool> = obs.per_op.iter().map(|o| o.saturated).collect();
                eprintln!("    labels {labels:?} cpu {cpu:?} opbp {bp:?} sat {sat:?}");
            }
            probe = vec![0u32; n_ops];
            for (i, &l) in labels.iter().enumerate() {
                if l < 0.0 {
                    continue;
                }
                let deployed = assignment.degree(streamtune_dataflow::OpId::new(i));
                if l == 1.0 {
                    lower[i] = lower[i].max(deployed.saturating_add(1)).min(p_max);
                    // Jump toward the known-safe side: midpoint of the
                    // certified interval if one exists, else double.
                    // Conflicting noisy labels can momentarily leave
                    // lower > upper; resolve toward the safe (higher) side.
                    let hi = upper[i].max(lower[i]);
                    probe[i] = if upper[i] < p_max {
                        deployed.saturating_add(hi).div_ceil(2).clamp(lower[i], hi)
                    } else {
                        (deployed.saturating_mul(2)).min(p_max)
                    };
                } else if !obs.job_backpressure {
                    // Only backpressure-free observations certify an upper
                    // bound: under backpressure the operator saw throttled
                    // rates, so its 0-label says nothing about full load.
                    upper[i] = upper[i].min(deployed).max(lower[i]);
                }
                // Truthful feedback: a 0-label during backpressure only
                // certifies the throttled rate the operator actually saw,
                // so pair it with that rate's embedding, not full demand.
                let point = if l == 0.0 && obs.job_backpressure {
                    let mut e = embeddings[i].clone();
                    let throttled = obs.per_op[i].processed_rate;
                    *e.last_mut().expect("rate feature present") =
                        crate::pretrain::rate_feature(throttled);
                    TrainPoint {
                        embedding: e,
                        parallelism: deployed,
                        bottleneck: false,
                    }
                } else {
                    TrainPoint {
                        embedding: embeddings[i].clone(),
                        parallelism: deployed,
                        bottleneck: l == 1.0,
                    }
                };
                session_feedback.push(point.clone());
                for _ in 0..self.config.feedback_weight.max(1) {
                    dataset.push(point.clone());
                }
            }
            if !obs.job_backpressure {
                best_good = Some(assignment.clone());
                // Paper: the iterative process ends once no job-level
                // backpressure is observed for the streaming job.
                current = Some(assignment);
                converged = true;
                break;
            }
            current = Some(assignment);
        }

        // Safety net: never leave the job backpressured. If the loop ended
        // on a backpressured deployment, fall back to the last certified
        // backpressure-free assignment (re-deploying it).
        let mut final_assignment = current
            .or_else(|| session.current_assignment().cloned())
            .unwrap_or_else(|| streamtune_dataflow::ParallelismAssignment::uniform(flow, 1));
        if last_backpressure {
            if let Some(good) = best_good {
                session.deploy(&good)?;
                final_assignment = good;
            }
        }
        // Persist this session's feedback and certified intervals for the
        // job's next rate change.
        let job_state = self.jobs.entry(flow.name().to_string()).or_default();
        job_state.memory.extend(session_feedback);
        let cap = self.config.max_job_memory;
        if job_state.memory.len() > cap {
            let excess = job_state.memory.len() - cap;
            job_state.memory.drain(..excess);
        }
        for i in 0..n_ops {
            // Upper bounds are only certified by a backpressure-free final
            // deployment; record what this session actually established.
            let ub = if last_backpressure { p_max } else { upper[i] };
            job_state.record(i, demand.input[i], lower[i], ub);
        }
        Ok(session.outcome(final_assignment, iterations, converged))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretrain::{PretrainConfig, Pretrainer};
    use streamtune_sim::SimCluster;
    use streamtune_workloads::history::HistoryGenerator;
    use streamtune_workloads::{nexmark, rates::Engine};

    fn pretrained_on(cluster: &SimCluster, seed: u64, jobs: usize) -> Pretrained {
        let corpus = HistoryGenerator::new(seed)
            .with_jobs(jobs)
            .with_runs_per_job(3)
            .generate(cluster);
        Pretrainer::new(PretrainConfig::fast()).run(&corpus)
    }

    #[test]
    fn tunes_q1_to_backpressure_free() {
        let mut cluster = SimCluster::flink_defaults(21);
        let pre = pretrained_on(&cluster, 21, 14);
        let mut w = nexmark::q1(Engine::Flink);
        w.set_multiplier(10.0);
        let mut session = TuningSession::new(&mut cluster, &w.flow);
        let mut tuner = StreamTune::new(&pre, TuneConfig::default());
        let outcome = tuner.tune(&mut session).expect("tuning succeeds");
        // The final deployment must sustain the sources.
        let rep = cluster.simulate(&w.flow, &outcome.final_assignment);
        assert!(
            rep.backpressure_free(),
            "final assignment still backpressured: {:?}",
            outcome.final_assignment
        );
        assert!(outcome.iterations >= 1);
        assert!(tuner.last_cluster.is_some());
    }

    #[test]
    fn final_parallelism_not_wildly_overprovisioned() {
        let mut cluster = SimCluster::flink_defaults(23);
        let pre = pretrained_on(&cluster, 23, 14);
        let mut w = nexmark::q2(Engine::Flink);
        w.set_multiplier(10.0);
        let oracle = cluster.oracle_assignment(&w.flow).expect("sustainable");
        let mut session = TuningSession::new(&mut cluster, &w.flow);
        let mut tuner = StreamTune::new(&pre, TuneConfig::default());
        let outcome = tuner.tune(&mut session).expect("tuning succeeds");
        let rep = cluster.simulate(&w.flow, &outcome.final_assignment);
        assert!(rep.backpressure_free());
        assert!(
            outcome.final_assignment.total() <= oracle.total() * 4,
            "StreamTune {} vs oracle {}",
            outcome.final_assignment.total(),
            oracle.total()
        );
    }

    #[test]
    fn gbdt_variant_also_converges() {
        let mut cluster = SimCluster::flink_defaults(29);
        let pre = pretrained_on(&cluster, 29, 12);
        let mut w = nexmark::q1(Engine::Flink);
        w.set_multiplier(5.0);
        let mut session = TuningSession::new(&mut cluster, &w.flow);
        let mut tuner = StreamTune::new(
            &pre,
            TuneConfig {
                model: ModelKind::Xgboost,
                ..Default::default()
            },
        );
        let outcome = tuner.tune(&mut session).expect("tuning succeeds");
        let rep = cluster.simulate(&w.flow, &outcome.final_assignment);
        assert!(rep.backpressure_free());
    }

    #[test]
    fn iteration_cap_respected() {
        let mut cluster = SimCluster::flink_defaults(31);
        let pre = pretrained_on(&cluster, 31, 10);
        let mut w = nexmark::q5(Engine::Flink);
        w.set_multiplier(10.0);
        let mut session = TuningSession::new(&mut cluster, &w.flow);
        let mut tuner = StreamTune::new(
            &pre,
            TuneConfig {
                max_iterations: 2,
                ..Default::default()
            },
        );
        let outcome = tuner.tune(&mut session).expect("tuning succeeds");
        assert!(outcome.iterations <= 2);
        // +1 allows the best-known-good fallback redeploy at loop exit.
        assert!(outcome.reconfigurations <= 3);
    }

    #[test]
    fn model_kind_names() {
        assert_eq!(ModelKind::Svm.name(), "SVM");
        assert_eq!(ModelKind::Xgboost.name(), "XGBoost");
        assert_eq!(ModelKind::Nn.name(), "NN");
    }
}
