//! Bounded retry with deterministic *virtual* backoff.
//!
//! A [`RetryPolicy`] tells a [`crate::TuningSession`] (and the monitor's
//! metric stream) how many times a transiently failing deployment may be
//! re-attempted before the failure is surfaced, and how many simulated
//! minutes each attempt waits. The backoff is virtual — tracked in
//! [`RetryStats`], never slept — so fault-injected runs stay as fast and
//! as deterministic as fault-free ones, and the determinism-under-faults
//! invariant holds: retries never touch the session's tuning bookkeeping,
//! so a run whose transient faults were all absorbed produces a
//! bit-identical `TuneOutcome` to a run that saw no faults at all.

use serde::{Deserialize, Serialize};

/// Bounded-attempt retry with deterministic exponential virtual backoff.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per deployment (1 = no retry).
    pub max_attempts: u32,
    /// Virtual minutes waited before the first retry; each further retry
    /// doubles it.
    pub base_backoff_minutes: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_minutes: 0.5,
        }
    }
}

impl RetryPolicy {
    /// No retries: every error surfaces immediately.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_minutes: 0.0,
        }
    }

    /// Virtual backoff before retry number `retry` (1-based): exponential,
    /// `base · 2^(retry-1)`.
    pub fn backoff_minutes(&self, retry: u32) -> f64 {
        if retry == 0 {
            return 0.0;
        }
        self.base_backoff_minutes * f64::from(1u32 << (retry - 1).min(20))
    }
}

/// Counters for everything a retry loop absorbed or gave up on.
///
/// Deliberately *not* part of [`crate::TuneOutcome`]: outcomes of runs
/// whose transient faults were retried away must stay bit-identical to
/// fault-free outcomes. These counters surface through the serve daemon's
/// `health` verb instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RetryStats {
    /// Transient backend errors observed (including ones later retried).
    pub transient_faults: u64,
    /// Attempts that were retried after a transient error.
    pub retries: u64,
    /// Transient errors that exhausted the attempt budget and surfaced.
    pub exhausted: u64,
    /// Permanent (non-retryable) errors surfaced immediately.
    pub permanent_failures: u64,
    /// Total virtual minutes spent backing off.
    pub backoff_minutes: f64,
}

impl RetryStats {
    /// Fold another stats block into this one.
    pub fn absorb(&mut self, other: &RetryStats) {
        self.transient_faults += other.transient_faults;
        self.retries += other.retries;
        self.exhausted += other.exhausted;
        self.permanent_failures += other.permanent_failures;
        self.backoff_minutes += other.backoff_minutes;
    }

    /// Whether any fault (transient or permanent) was ever observed.
    pub fn any_faults(&self) -> bool {
        self.transient_faults > 0 || self.permanent_failures > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_deterministic() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff_minutes: 0.5,
        };
        assert_eq!(p.backoff_minutes(1).to_bits(), 0.5f64.to_bits());
        assert_eq!(p.backoff_minutes(2).to_bits(), 1.0f64.to_bits());
        assert_eq!(p.backoff_minutes(3).to_bits(), 2.0f64.to_bits());
        assert_eq!(p.backoff_minutes(0), 0.0);
    }

    #[test]
    fn none_policy_never_retries() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts, 1);
    }

    #[test]
    fn stats_absorb_adds_counters() {
        let mut a = RetryStats {
            transient_faults: 2,
            retries: 2,
            exhausted: 0,
            permanent_failures: 1,
            backoff_minutes: 1.5,
        };
        let b = RetryStats {
            transient_faults: 1,
            retries: 0,
            exhausted: 1,
            permanent_failures: 0,
            backoff_minutes: 0.5,
        };
        a.absorb(&b);
        assert_eq!(a.transient_faults, 3);
        assert_eq!(a.exhausted, 1);
        assert!(a.any_faults());
    }

    #[test]
    fn policy_roundtrips_through_serde() {
        let p = RetryPolicy::default();
        let json = serde_json::to_string(&p).unwrap();
        let back: RetryPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
