//! Engine-neutral observation model: the dashboard signals a tuner can see
//! after a deployment, whichever backend produced them (paper §V-B).
//!
//! These types lived in the simulator crate historically; they moved here
//! because every backend — simulated, replayed or real — reports the same
//! union of Flink time metrics and Timely rate metrics.

use crate::error::BackendError;
use serde::{Deserialize, Serialize};
use streamtune_dataflow::OpId;

/// Backpressure becomes *visible* to Flink's instrumentation only once the
/// blocked-time fraction crosses the 10 % rule of paper §V-B; a job whose
/// sources are throttled by less than this reads as backpressure-free on
/// every dashboard (and in Algorithm 1's line 2). Backends use the same
/// visibility threshold so tuners see exactly what the real engine would
/// show them.
pub const BACKPRESSURE_VISIBILITY: f64 = 0.10;

/// Which engine the backend exposes (paper §V: Apache Flink vs Timely).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineMode {
    /// Flink: built-in backpressure, busy/idle/backpressured time metrics.
    Flink,
    /// Timely Dataflow: no backpressure; 85 % consumption rule.
    Timely,
}

/// Per-operator observation, the union of the signals both engines expose.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpObservation {
    /// The operator.
    pub op: OpId,
    /// Deployed parallelism degree.
    pub parallelism: u32,
    /// Arrival (input) rate in records/second — the *demand* the operator
    /// must sustain in Flink mode; the actual arrivals in Timely mode.
    pub input_rate: f64,
    /// Actually processed records/second.
    pub processed_rate: f64,
    /// Flink `busyTimeMsPerSecond` (0–1000).
    pub busy_ms_per_sec: f64,
    /// Flink `idleTimeMsPerSecond` (0–1000).
    pub idle_ms_per_sec: f64,
    /// Flink `backPressuredTimeMsPerSecond` (0–1000).
    pub backpressured_ms_per_sec: f64,
    /// Noisy useful-time-derived per-instance processing rate — what DS2 /
    /// ContTune use to estimate processing ability (records/second per
    /// parallel instance of *useful* time).
    pub observed_per_instance_rate: f64,
    /// CPU load (busy fraction, 0–1) — the resource metric `R` of Alg. 1.
    pub cpu_load: f64,
    /// Flink bottleneck rule: backpressured time > 10 % of the cumulative
    /// busy+idle+backpressured time (paper §V-B).
    pub flink_backpressured: bool,
    /// Timely bottleneck rule: consumption < 85 % of upstream output.
    pub timely_bottleneck: bool,
    /// Whether this operator's own demand exceeds its PA (saturated). Not
    /// directly exposed by real engines, but derivable; used by tests.
    pub saturated: bool,
}

/// One deployment's complete observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Engine mode the observation was taken under.
    pub mode: EngineMode,
    /// Per-operator signals, indexed by `OpId` order.
    pub per_op: Vec<OpObservation>,
    /// Job-level backpressure flag (any operator under backpressure or
    /// saturated — what the Flink UI shows at the job level).
    pub job_backpressure: bool,
    /// Fraction of the offered source rate actually sustained (1.0 ⇔ no
    /// throttling). Timely mode reports min(processed/arrivals) instead.
    pub throughput_scale: f64,
    /// Cluster CPU utilization: Σ busy·p / Σ p over allocated slots.
    pub cpu_utilization: f64,
    /// Total parallelism of the deployment.
    pub total_parallelism: u64,
}

impl Observation {
    /// Operators under backpressure per the mode's detection rule.
    pub fn backpressured_ops(&self) -> Vec<OpId> {
        self.per_op
            .iter()
            .filter(|o| o.flink_backpressured)
            .map(|o| o.op)
            .collect()
    }

    /// Observation of one operator.
    pub fn op(&self, id: OpId) -> &OpObservation {
        &self.per_op[id.index()]
    }

    /// Reject observations carrying non-finite metrics.
    ///
    /// A scraper racing a restarting dashboard can read NaN/∞ rates;
    /// feeding them to a tuner would poison every downstream estimate, so
    /// sessions validate each observation and treat a corrupt one as a
    /// transient fault ([`BackendError::CorruptObservation`]) eligible
    /// for retry.
    pub fn validate(&self) -> Result<(), BackendError> {
        let mut bad: Vec<String> = Vec::new();
        let mut check = |name: &str, value: f64| {
            if !value.is_finite() {
                bad.push(format!("{name}={value}"));
            }
        };
        check("throughput_scale", self.throughput_scale);
        check("cpu_utilization", self.cpu_utilization);
        for o in &self.per_op {
            for (name, value) in [
                ("input_rate", o.input_rate),
                ("processed_rate", o.processed_rate),
                ("busy_ms_per_sec", o.busy_ms_per_sec),
                ("idle_ms_per_sec", o.idle_ms_per_sec),
                ("backpressured_ms_per_sec", o.backpressured_ms_per_sec),
                ("observed_per_instance_rate", o.observed_per_instance_rate),
                ("cpu_load", o.cpu_load),
            ] {
                if !value.is_finite() {
                    bad.push(format!("op {}: {name}={value}", o.op.index()));
                }
            }
        }
        if bad.is_empty() {
            Ok(())
        } else {
            const SHOWN: usize = 4;
            let more = bad.len().saturating_sub(SHOWN);
            bad.truncate(SHOWN);
            let mut context = bad.join(", ");
            if more > 0 {
                context.push_str(&format!(" (+{more} more)"));
            }
            Err(BackendError::CorruptObservation { context })
        }
    }
}

/// A full deployment report: the observation plus ground truth (hidden from
/// tuners, used by tests and experiment scoring; a real-engine connector
/// fills the ground-truth vectors with its best estimates).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// What tuners see.
    pub observation: Observation,
    /// Ground-truth PA per operator at the deployed degrees.
    pub true_pa: Vec<f64>,
    /// Ground-truth demand input rates (backpressure-free requirement).
    pub demand_input: Vec<f64>,
    /// Ground-truth saturation flags.
    pub saturated: Vec<bool>,
}

impl SimulationReport {
    /// True iff the deployment sustains the sources without backpressure.
    pub fn backpressure_free(&self) -> bool {
        !self.saturated.iter().any(|&s| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy() -> Observation {
        let op = |index: usize| OpObservation {
            op: OpId::new(index),
            parallelism: 2,
            input_rate: 1000.0,
            processed_rate: 1000.0,
            busy_ms_per_sec: 400.0,
            idle_ms_per_sec: 600.0,
            backpressured_ms_per_sec: 0.0,
            observed_per_instance_rate: 500.0,
            cpu_load: 0.4,
            flink_backpressured: false,
            timely_bottleneck: false,
            saturated: false,
        };
        Observation {
            mode: EngineMode::Flink,
            per_op: vec![op(0), op(1)],
            job_backpressure: false,
            throughput_scale: 1.0,
            cpu_utilization: 0.4,
            total_parallelism: 4,
        }
    }

    #[test]
    fn finite_observations_validate() {
        healthy().validate().expect("finite metrics are valid");
    }

    #[test]
    fn nan_metrics_are_rejected_as_transient_corruption() {
        let mut obs = healthy();
        obs.per_op[1].input_rate = f64::NAN;
        let err = obs.validate().expect_err("NaN must be rejected");
        assert!(err.is_transient(), "corruption is retryable: {err}");
        match err {
            BackendError::CorruptObservation { context } => {
                assert!(context.contains("op 1: input_rate=NaN"), "{context}");
            }
            other => panic!("expected CorruptObservation, got {other}"),
        }
    }

    #[test]
    fn infinite_metrics_are_rejected_in_both_directions() {
        for bad in [f64::INFINITY, f64::NEG_INFINITY] {
            let mut obs = healthy();
            obs.per_op[0].observed_per_instance_rate = bad;
            let err = obs
                .validate()
                .expect_err("infinite per-instance rate must be rejected");
            assert!(err.is_transient(), "{err}");
            assert!(
                err.to_string().contains("observed_per_instance_rate"),
                "{err}"
            );
        }
        let mut obs = healthy();
        obs.cpu_utilization = f64::INFINITY;
        let err = obs.validate().expect_err("infinite utilization rejected");
        assert!(err.to_string().contains("cpu_utilization=inf"), "{err}");
    }

    #[test]
    fn corruption_reports_are_truncated_not_unbounded() {
        let mut obs = healthy();
        obs.throughput_scale = f64::NAN;
        obs.cpu_utilization = f64::NAN;
        for o in &mut obs.per_op {
            o.input_rate = f64::NAN;
            o.processed_rate = f64::NAN;
            o.cpu_load = f64::INFINITY;
        }
        let err = obs.validate().expect_err("everything is corrupt");
        let message = err.to_string();
        assert!(message.contains("(+4 more)"), "{message}");
    }
}
