//! Deterministic fault injection: [`ChaosBackend`] wraps any
//! [`ExecutionBackend`] and injects failures from a seeded [`FaultPlan`].
//!
//! Every fault decision is a pure function of `(plan.seed, fault domain,
//! call index or epoch)` via a splitmix64 finalizer — no RNG state, no
//! wall clock — so a failure scenario is a *reproducible test case*: the
//! same plan produces the same faults at the same points regardless of
//! thread count, retry interleaving or host.
//!
//! Two fault families with different keys:
//!
//! * **Per-call faults** (transient I/O errors, failed deploys, NaN
//!   observations) are keyed on the backend *call index* and capped at
//!   [`FaultPlan::max_burst`] consecutive injections. A retry loop
//!   re-invoking `deploy` at the same epoch therefore sees a clean call
//!   within the burst cap — and because the wrapped backend keys its
//!   measurement noise on the epoch, the post-retry observation is
//!   bit-identical to what a fault-free run would have seen.
//! * **Per-epoch faults** (stale observations, crash-at-epoch) are keyed
//!   on the deployment epoch: a stale epoch silently re-serves the last
//!   successful report (metrics dashboards lag reality), and the crash
//!   epoch panics mid-deploy to exercise lock-poisoning and
//!   `catch_unwind` recovery upstream.

use crate::error::BackendError;
use crate::observation::{EngineMode, SimulationReport};
use crate::session::{BackendConstraints, ExecutionBackend};
use serde::{Deserialize, Serialize, Value};
use streamtune_dataflow::{Dataflow, ParallelismAssignment};

/// Fault-domain salts: each fault type draws from its own deterministic
/// stream so the rates are independent.
const DOMAIN_IO: u64 = 0x10;
const DOMAIN_DEPLOY: u64 = 0x20;
const DOMAIN_NAN: u64 = 0x30;
const DOMAIN_STALE: u64 = 0x40;

/// splitmix64 finalizer over (seed, domain, index).
fn mix(seed: u64, domain: u64, index: u64) -> u64 {
    let mut z = seed
        ^ domain.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ index.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in [0, 1) from the (seed, domain, index) stream.
fn unit(seed: u64, domain: u64, index: u64) -> f64 {
    (mix(seed, domain, index) >> 11) as f64 / (1u64 << 53) as f64
}

/// The four per-decision fault probabilities a plan (or one of its phase
/// windows) applies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// Probability a backend call fails with a transient I/O error.
    pub io_rate: f64,
    /// Probability a backend call fails as a mid-flight deploy failure.
    pub deploy_fail_rate: f64,
    /// Probability a backend call returns a NaN-corrupted observation.
    pub nan_rate: f64,
    /// Probability an *epoch* re-serves the previous (stale) report.
    pub stale_rate: f64,
}

impl FaultRates {
    /// No faults at all.
    pub fn none() -> Self {
        FaultRates {
            io_rate: 0.0,
            deploy_fail_rate: 0.0,
            nan_rate: 0.0,
            stale_rate: 0.0,
        }
    }

    /// A hard outage: every backend call fails with a transient I/O
    /// error. Combined with a high `max_burst` this exhausts any bounded
    /// retry budget — the "sick monitor" half of a phased drill.
    pub fn outage() -> Self {
        FaultRates {
            io_rate: 1.0,
            ..FaultRates::none()
        }
    }
}

/// An epoch window during which a plan's base rates are replaced.
///
/// Windows are half-open (`start_epoch <= epoch < end_epoch`) and keyed
/// on the *deployment epoch*, so a window over tuning epochs leaves
/// monitor polls (which start at a disjoint epoch base) untouched and
/// vice versa — the "clean tune, then sick monitor" drill is two
/// disjoint windows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPhase {
    /// First epoch (inclusive) the override applies to.
    pub start_epoch: u64,
    /// First epoch (exclusive) past the override.
    pub end_epoch: u64,
    /// Rates in force inside the window.
    pub faults: FaultRates,
}

/// Maximum phase windows one plan can carry (keeps [`FaultPlan`] `Copy`).
pub const MAX_FAULT_PHASES: usize = 4;

/// A seeded, fully deterministic fault schedule.
///
/// Rates are per-decision probabilities; `max_burst` caps *consecutive*
/// per-call faults so a bounded retry loop (attempts > `max_burst`)
/// always reaches a clean call. Up to [`MAX_FAULT_PHASES`] epoch windows
/// ([`FaultPlan::with_phase`]) override the base rates while the deploy
/// epoch is inside them. Plans serialize, so a failure scenario can ride
/// in a job spec or a test fixture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of every fault stream.
    pub seed: u64,
    /// Probability a backend call fails with a transient I/O error.
    pub io_rate: f64,
    /// Probability a backend call fails as a mid-flight deploy failure.
    pub deploy_fail_rate: f64,
    /// Probability a backend call returns a NaN-corrupted observation.
    pub nan_rate: f64,
    /// Probability an *epoch* re-serves the previous (stale) report.
    pub stale_rate: f64,
    /// Maximum consecutive per-call faults before one call is let through.
    pub max_burst: u32,
    /// Panic mid-deploy at this epoch, if set (crash injection).
    pub crash_epoch: Option<u64>,
    /// Epoch windows overriding the base rates (first match wins).
    pub phases: [Option<FaultPhase>; MAX_FAULT_PHASES],
}

// Hand-written so `phases` stays optional on the wire: plans serialized
// before phase windows existed (and plans without any) carry no `phases`
// key and still deserialize. The vendored serde derive has no
// `#[serde(default)]`.
impl Serialize for FaultPlan {
    fn serialize(&self) -> Value {
        let mut obj: Vec<(String, Value)> = vec![
            ("seed".to_string(), self.seed.serialize()),
            ("io_rate".to_string(), self.io_rate.serialize()),
            (
                "deploy_fail_rate".to_string(),
                self.deploy_fail_rate.serialize(),
            ),
            ("nan_rate".to_string(), self.nan_rate.serialize()),
            ("stale_rate".to_string(), self.stale_rate.serialize()),
            ("max_burst".to_string(), self.max_burst.serialize()),
            ("crash_epoch".to_string(), self.crash_epoch.serialize()),
        ];
        let phases: Vec<Value> = self
            .phases
            .iter()
            .flatten()
            .map(|p| p.serialize())
            .collect();
        if !phases.is_empty() {
            obj.push(("phases".to_string(), Value::Array(phases)));
        }
        Value::Object(obj)
    }
}

impl Deserialize for FaultPlan {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        let mut plan = FaultPlan {
            seed: Deserialize::deserialize(v.field("seed")?)?,
            io_rate: Deserialize::deserialize(v.field("io_rate")?)?,
            deploy_fail_rate: Deserialize::deserialize(v.field("deploy_fail_rate")?)?,
            nan_rate: Deserialize::deserialize(v.field("nan_rate")?)?,
            stale_rate: Deserialize::deserialize(v.field("stale_rate")?)?,
            max_burst: Deserialize::deserialize(v.field("max_burst")?)?,
            crash_epoch: Deserialize::deserialize(v.field("crash_epoch")?)?,
            phases: [None; MAX_FAULT_PHASES],
        };
        if let Ok(raw) = v.field("phases") {
            let list: Vec<FaultPhase> = Deserialize::deserialize(raw)?;
            if list.len() > MAX_FAULT_PHASES {
                return Err(serde::Error::custom(format!(
                    "fault plan carries {} phases; at most {MAX_FAULT_PHASES} supported",
                    list.len()
                )));
            }
            for (slot, phase) in plan.phases.iter_mut().zip(list) {
                *slot = Some(phase);
            }
        }
        Ok(plan)
    }
}

impl FaultPlan {
    /// A quiet plan: no faults, but fully wired (useful as a baseline).
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            io_rate: 0.0,
            deploy_fail_rate: 0.0,
            nan_rate: 0.0,
            stale_rate: 0.0,
            max_burst: 2,
            crash_epoch: None,
            phases: [None; MAX_FAULT_PHASES],
        }
    }

    /// A transient-only plan: I/O errors, deploy failures and NaN
    /// observations that a retry policy with more attempts than
    /// `max_burst` absorbs completely — the determinism-under-faults
    /// invariant says tuning outcomes under this plan are bit-identical
    /// to fault-free runs.
    pub fn transient(seed: u64) -> Self {
        FaultPlan {
            io_rate: 0.2,
            deploy_fail_rate: 0.15,
            nan_rate: 0.1,
            ..FaultPlan::quiet(seed)
        }
    }

    /// Set the stale-observation rate.
    pub fn with_stale(mut self, rate: f64) -> Self {
        self.stale_rate = rate;
        self
    }

    /// Set the crash epoch.
    pub fn with_crash_at(mut self, epoch: u64) -> Self {
        self.crash_epoch = Some(epoch);
        self
    }

    /// Set the consecutive-fault cap.
    pub fn with_max_burst(mut self, max_burst: u32) -> Self {
        self.max_burst = max_burst;
        self
    }

    /// Add an epoch window `[start_epoch, end_epoch)` during which
    /// `faults` replace the base rates — the ROADMAP-named "clean tune,
    /// then sick monitor" drill is a quiet base plus an outage window
    /// over the monitor epochs.
    ///
    /// # Panics
    ///
    /// If the window is empty or more than [`MAX_FAULT_PHASES`] windows
    /// are added.
    pub fn with_phase(mut self, start_epoch: u64, end_epoch: u64, faults: FaultRates) -> Self {
        assert!(
            start_epoch < end_epoch,
            "fault phase window must be non-empty"
        );
        let slot = self
            .phases
            .iter_mut()
            .find(|slot| slot.is_none())
            .unwrap_or_else(|| panic!("a fault plan holds at most {MAX_FAULT_PHASES} phases"));
        *slot = Some(FaultPhase {
            start_epoch,
            end_epoch,
            faults,
        });
        self
    }

    /// The rates in force at `epoch`: the first phase window containing
    /// it, or the plan's base rates.
    pub fn rates_at(&self, epoch: u64) -> FaultRates {
        for phase in self.phases.iter().flatten() {
            if epoch >= phase.start_epoch && epoch < phase.end_epoch {
                return phase.faults;
            }
        }
        FaultRates {
            io_rate: self.io_rate,
            deploy_fail_rate: self.deploy_fail_rate,
            nan_rate: self.nan_rate,
            stale_rate: self.stale_rate,
        }
    }

    /// Whether this plan injects only transient (retryable) faults.
    pub fn transient_only(&self) -> bool {
        self.stale_rate == 0.0
            && self.crash_epoch.is_none()
            && self
                .phases
                .iter()
                .flatten()
                .all(|p| p.faults.stale_rate == 0.0)
    }
}

/// Counters of everything a [`ChaosBackend`] injected or withheld.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Injected transient I/O errors.
    pub io_errors: u64,
    /// Injected mid-flight deploy failures.
    pub deploy_failures: u64,
    /// Injected NaN-corrupted observations.
    pub nan_observations: u64,
    /// Epochs served a stale (previous) report.
    pub stale_epochs: u64,
    /// Faults withheld because the consecutive-burst cap was reached.
    pub suppressed: u64,
}

impl FaultCounters {
    /// Total faults injected (suppressions excluded).
    pub fn injected(&self) -> u64 {
        self.io_errors + self.deploy_failures + self.nan_observations + self.stale_epochs
    }
}

/// Wraps a backend and injects faults per a [`FaultPlan`].
#[derive(Debug)]
pub struct ChaosBackend<B: ExecutionBackend> {
    inner: B,
    plan: FaultPlan,
    calls: u64,
    consecutive: u32,
    last_report: Option<SimulationReport>,
    counters: FaultCounters,
}

impl<B: ExecutionBackend> ChaosBackend<B> {
    /// Wrap `inner`, injecting faults from `plan`.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        ChaosBackend {
            inner,
            plan,
            calls: 0,
            consecutive: 0,
            last_report: None,
            counters: FaultCounters::default(),
        }
    }

    /// The fault schedule.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// What has been injected so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    /// Borrow the wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Unwrap, discarding the chaos layer.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// Poison NaNs into an otherwise valid report (per-op rates and the
    /// job-level throughput), as a scraper racing a restarting dashboard
    /// would see.
    fn corrupt(report: &mut SimulationReport) {
        for op in &mut report.observation.per_op {
            op.processed_rate = f64::NAN;
            op.observed_per_instance_rate = f64::NAN;
        }
        report.observation.throughput_scale = f64::NAN;
    }
}

impl<B: ExecutionBackend> ExecutionBackend for ChaosBackend<B> {
    fn engine_mode(&self) -> EngineMode {
        self.inner.engine_mode()
    }

    fn constraints(&self) -> BackendConstraints {
        self.inner.constraints()
    }

    fn deploy(
        &mut self,
        flow: &Dataflow,
        assignment: &ParallelismAssignment,
        epoch: u64,
    ) -> Result<SimulationReport, BackendError> {
        if self.plan.crash_epoch == Some(epoch) {
            panic!("chaos: injected crash at epoch {epoch}");
        }
        self.calls += 1;
        let call = self.calls;
        let seed = self.plan.seed;
        let rates = self.plan.rates_at(epoch);
        let burst_open = self.consecutive < self.plan.max_burst;

        // Per-call transient faults, in a fixed decision order. The
        // *rates* come from the epoch's phase window (if any); the draws
        // stay keyed on the call index so retry attempts at one epoch see
        // independent decisions.
        if unit(seed, DOMAIN_IO, call) < rates.io_rate {
            if burst_open {
                self.consecutive += 1;
                self.counters.io_errors += 1;
                return Err(BackendError::Io {
                    context: "chaos".to_string(),
                    message: format!("injected transient I/O fault (backend call {call})"),
                });
            }
            self.counters.suppressed += 1;
        } else if unit(seed, DOMAIN_DEPLOY, call) < rates.deploy_fail_rate {
            if burst_open {
                self.consecutive += 1;
                self.counters.deploy_failures += 1;
                return Err(BackendError::DeployFailed { epoch });
            }
            self.counters.suppressed += 1;
        }

        // Stale epochs re-serve the previous successful report without
        // consulting the backend (the dashboard lags reality). Keyed on
        // the epoch so a retry loop cannot "fix" staleness — it is not an
        // error, just an old truth.
        if unit(seed, DOMAIN_STALE, epoch) < rates.stale_rate {
            if let Some(previous) = &self.last_report {
                self.counters.stale_epochs += 1;
                self.consecutive = 0;
                return Ok(previous.clone());
            }
        }

        let report = self.inner.deploy(flow, assignment, epoch)?;
        if unit(seed, DOMAIN_NAN, call) < rates.nan_rate {
            if burst_open {
                self.consecutive += 1;
                self.counters.nan_observations += 1;
                let mut corrupted = report;
                Self::corrupt(&mut corrupted);
                // Deliberately not remembered as `last_report`: stale
                // epochs replay truths, not corruptions.
                return Ok(corrupted);
            }
            self.counters.suppressed += 1;
        }
        self.consecutive = 0;
        self.last_report = Some(report.clone());
        Ok(report)
    }

    fn epoch_latencies(
        &mut self,
        flow: &Dataflow,
        assignment: &ParallelismAssignment,
        epochs: usize,
    ) -> Result<Vec<f64>, BackendError> {
        self.inner.epoch_latencies(flow, assignment, epochs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Observation;

    struct StubBackend {
        deploys: u64,
    }

    fn stub_report(epoch: u64) -> SimulationReport {
        SimulationReport {
            observation: Observation {
                mode: EngineMode::Flink,
                per_op: Vec::new(),
                job_backpressure: false,
                throughput_scale: 1.0 / (epoch as f64 + 1.0),
                cpu_utilization: 0.5,
                total_parallelism: 1,
            },
            true_pa: vec![1.0],
            demand_input: vec![1.0],
            saturated: vec![false],
        }
    }

    impl ExecutionBackend for StubBackend {
        fn engine_mode(&self) -> EngineMode {
            EngineMode::Flink
        }

        fn constraints(&self) -> BackendConstraints {
            BackendConstraints {
                max_parallelism: 8,
                reconfig_wait_minutes: 10.0,
            }
        }

        fn deploy(
            &mut self,
            _flow: &Dataflow,
            _assignment: &ParallelismAssignment,
            epoch: u64,
        ) -> Result<SimulationReport, BackendError> {
            self.deploys += 1;
            Ok(stub_report(epoch))
        }

        fn epoch_latencies(
            &mut self,
            _flow: &Dataflow,
            _assignment: &ParallelismAssignment,
            _epochs: usize,
        ) -> Result<Vec<f64>, BackendError> {
            Err(BackendError::Unsupported {
                what: "latencies".to_string(),
            })
        }
    }

    fn tiny_flow() -> Dataflow {
        use streamtune_dataflow::{DataflowBuilder, Operator};
        let mut b = DataflowBuilder::new("chaos-test");
        let s = b.add_source("s", 100.0);
        let m = b.add_op("m", Operator::map(8, 8));
        b.connect_source(s, m);
        b.build().unwrap()
    }

    /// Drive `n` deploys through a chaos wrapper, recording the per-call
    /// outcome as a compact trace string.
    fn fault_trace(plan: FaultPlan, n: u64) -> (String, FaultCounters) {
        let flow = tiny_flow();
        let a = ParallelismAssignment::from_vec(vec![1]);
        let mut chaos = ChaosBackend::new(StubBackend { deploys: 0 }, plan);
        let mut trace = String::new();
        for epoch in 1..=n {
            trace.push(match chaos.deploy(&flow, &a, epoch) {
                Ok(r) if r.observation.throughput_scale.is_nan() => 'n',
                Ok(_) => '.',
                Err(BackendError::Io { .. }) => 'i',
                Err(BackendError::DeployFailed { .. }) => 'd',
                Err(_) => '?',
            });
        }
        (trace, chaos.counters())
    }

    #[test]
    fn fault_schedule_is_deterministic() {
        let plan = FaultPlan::transient(7).with_stale(0.1);
        let (a, ca) = fault_trace(plan, 64);
        let (b, cb) = fault_trace(plan, 64);
        assert_eq!(a, b, "same plan must inject the same faults");
        assert_eq!(ca, cb);
        assert!(ca.injected() > 0, "rates this high must fire in 64 calls");
    }

    #[test]
    fn different_seeds_inject_differently() {
        let (a, _) = fault_trace(FaultPlan::transient(1), 64);
        let (b, _) = fault_trace(FaultPlan::transient(2), 64);
        assert_ne!(a, b, "seeds must steer the schedule");
    }

    #[test]
    fn burst_cap_bounds_consecutive_faults() {
        let mut plan = FaultPlan::quiet(3).with_max_burst(2);
        plan.io_rate = 1.0; // every call wants to fault
        let (trace, counters) = fault_trace(plan, 9);
        assert_eq!(trace, "ii.ii.ii.", "every third call must be clean");
        assert_eq!(counters.io_errors, 6);
        assert_eq!(counters.suppressed, 3);
    }

    #[test]
    fn stale_epoch_reserves_previous_report() {
        let flow = tiny_flow();
        let a = ParallelismAssignment::from_vec(vec![1]);
        let mut plan = FaultPlan::quiet(11);
        plan.stale_rate = 1.0; // every epoch after the first is stale
        let mut chaos = ChaosBackend::new(StubBackend { deploys: 0 }, plan);
        let first = chaos.deploy(&flow, &a, 1).unwrap();
        let second = chaos.deploy(&flow, &a, 2).unwrap();
        assert_eq!(
            first.observation.throughput_scale.to_bits(),
            second.observation.throughput_scale.to_bits(),
            "stale epoch must re-serve the first report"
        );
        assert_eq!(chaos.counters().stale_epochs, 1);
        assert_eq!(chaos.inner().deploys, 1, "stale epochs skip the backend");
    }

    #[test]
    fn crash_epoch_panics() {
        let flow = tiny_flow();
        let a = ParallelismAssignment::from_vec(vec![1]);
        let plan = FaultPlan::quiet(5).with_crash_at(3);
        let mut chaos = ChaosBackend::new(StubBackend { deploys: 0 }, plan);
        assert!(chaos.deploy(&flow, &a, 1).is_ok());
        assert!(chaos.deploy(&flow, &a, 2).is_ok());
        let crash = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = chaos.deploy(&flow, &a, 3);
        }));
        assert!(crash.is_err(), "epoch 3 must panic");
    }

    #[test]
    fn plan_roundtrips_through_serde() {
        let plan = FaultPlan::transient(42).with_crash_at(17);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn phase_window_overrides_base_rates() {
        // Quiet base, hard outage during epochs [4, 7): exactly those
        // three calls fault, everything outside the window is clean.
        let plan =
            FaultPlan::quiet(13)
                .with_max_burst(u32::MAX)
                .with_phase(4, 7, FaultRates::outage());
        let (trace, counters) = fault_trace(plan, 9);
        assert_eq!(trace, "...iii...", "outage must match the window exactly");
        assert_eq!(counters.io_errors, 3);
        assert_eq!(counters.suppressed, 0);
    }

    #[test]
    fn phases_are_half_open_and_first_match_wins() {
        let calm = FaultRates::none();
        let plan = FaultPlan::transient(99)
            .with_phase(10, 20, calm)
            .with_phase(15, 30, FaultRates::outage());
        assert_eq!(plan.rates_at(9), plan.rates_at(u64::MAX), "base outside");
        assert_eq!(plan.rates_at(10), calm, "start is inclusive");
        assert_eq!(plan.rates_at(19), calm, "first window wins the overlap");
        assert_eq!(plan.rates_at(20), FaultRates::outage(), "end is exclusive");
    }

    #[test]
    fn phased_plans_ride_the_wire_and_legacy_plans_parse() {
        let plan = FaultPlan::quiet(7)
            .with_phase(100, 200, FaultRates::outage())
            .with_phase(300, 400, FaultRates::none());
        let json = serde_json::to_string(&plan).unwrap();
        assert!(json.contains("\"phases\""));
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);

        // A phase-free plan serializes without the key (the pre-phase
        // wire form), and that legacy form parses to empty phases.
        let legacy = serde_json::to_string(&FaultPlan::transient(5)).unwrap();
        assert!(!legacy.contains("phases"));
        let back: FaultPlan = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back, FaultPlan::transient(5));
    }

    #[test]
    fn transient_only_accounts_for_phase_rates() {
        let base = FaultPlan::transient(3);
        assert!(base.transient_only());
        assert!(base.with_phase(5, 9, FaultRates::outage()).transient_only());
        let stale_phase = FaultRates {
            stale_rate: 0.5,
            ..FaultRates::none()
        };
        assert!(!base.with_phase(5, 9, stale_phase).transient_only());
    }
}
