//! Error types for the execution API.
//!
//! Hand-rolled in the `thiserror` idiom (enum variants with `Display`
//! messages and `source` chaining) — the build environment is offline, so
//! the derive crate itself is unavailable.

use std::fmt;

/// A deployment or observation request the backend could not serve.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    /// The assignment does not cover the flow's operators.
    AssignmentShape {
        /// Operators in the flow.
        expected: usize,
        /// Degrees in the assignment.
        actual: usize,
    },
    /// A degree exceeds the backend's maximum per-operator parallelism.
    ExceedsMaxParallelism {
        /// The offending degree.
        degree: u32,
        /// The backend's cap.
        max: u32,
    },
    /// A replay backend ran out of recorded deployments.
    TraceExhausted {
        /// Deployments served before exhaustion.
        served: usize,
    },
    /// A replay backend was asked to serve a different job (or the same
    /// job at a different source rate) than the trace was recorded for.
    TraceFlowMismatch {
        /// Identity of the recorded flow.
        recorded: String,
        /// Identity of the requested flow.
        requested: String,
    },
    /// A replay backend has no recorded deployment matching the request.
    TraceMiss {
        /// The requested assignment's degrees.
        degrees: Vec<u32>,
        /// The requested epoch.
        epoch: u64,
    },
    /// The backend does not support the requested capability.
    Unsupported {
        /// Human-readable description of the missing capability.
        what: String,
    },
    /// Reading or writing backend state failed (trace files, connectors).
    Io {
        /// The failing path or endpoint.
        context: String,
        /// The underlying error rendered to text.
        message: String,
    },
    /// A trace log or other backend artifact failed to parse.
    Format {
        /// What was being parsed.
        context: String,
        /// The underlying error rendered to text.
        message: String,
    },
    /// A reconfiguration failed mid-flight (the engine rejected or lost
    /// the redeployment); the previous deployment keeps running.
    DeployFailed {
        /// The epoch the deployment was attempted at.
        epoch: u64,
    },
    /// The backend returned an observation with non-finite metrics (a
    /// scraper racing a restarting dashboard); the numbers are garbage.
    CorruptObservation {
        /// Which metrics were non-finite.
        context: String,
    },
}

/// Whether an error is worth retrying.
///
/// Transient faults (flaky metric scrapes, mid-flight deploy failures,
/// corrupt observations) are expected to clear on a retry of the *same*
/// deployment at the *same* epoch; permanent faults (malformed requests,
/// exhausted traces, unsupported capabilities) never will.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Retrying the same call may succeed.
    Transient,
    /// Retrying is pointless; surface immediately.
    Permanent,
}

impl BackendError {
    /// Classify this error for retry policies.
    pub fn class(&self) -> FaultClass {
        match self {
            BackendError::Io { .. }
            | BackendError::DeployFailed { .. }
            | BackendError::CorruptObservation { .. } => FaultClass::Transient,
            BackendError::AssignmentShape { .. }
            | BackendError::ExceedsMaxParallelism { .. }
            | BackendError::TraceExhausted { .. }
            | BackendError::TraceFlowMismatch { .. }
            | BackendError::TraceMiss { .. }
            | BackendError::Unsupported { .. }
            | BackendError::Format { .. } => FaultClass::Permanent,
        }
    }

    /// Whether a bounded retry of the same call may clear this error.
    pub fn is_transient(&self) -> bool {
        self.class() == FaultClass::Transient
    }
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::AssignmentShape { expected, actual } => write!(
                f,
                "assignment covers {actual} operator(s) but the flow has {expected}"
            ),
            BackendError::ExceedsMaxParallelism { degree, max } => write!(
                f,
                "parallelism degree {degree} exceeds the backend maximum {max}"
            ),
            BackendError::TraceExhausted { served } => {
                write!(f, "trace exhausted after {served} recorded deployment(s)")
            }
            BackendError::TraceFlowMismatch {
                recorded,
                requested,
            } => write!(
                f,
                "trace was recorded for {recorded} but replay was asked to serve {requested}"
            ),
            BackendError::TraceMiss { degrees, epoch } => write!(
                f,
                "no recorded deployment matches assignment {degrees:?} at epoch {epoch}"
            ),
            BackendError::Unsupported { what } => {
                write!(f, "backend does not support {what}")
            }
            BackendError::Io { context, message } => write!(f, "{context}: {message}"),
            BackendError::Format { context, message } => {
                write!(f, "cannot parse {context}: {message}")
            }
            BackendError::DeployFailed { epoch } => {
                write!(f, "reconfiguration failed mid-flight at epoch {epoch}")
            }
            BackendError::CorruptObservation { context } => {
                write!(f, "observation has non-finite metrics: {context}")
            }
        }
    }
}

impl std::error::Error for BackendError {}

/// A tuning run that could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum TuneError {
    /// A deployment through the session failed.
    Backend(BackendError),
    /// The tuner was handed a flow it cannot tune.
    InvalidFlow {
        /// Why the flow is untunable.
        reason: String,
    },
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::Backend(e) => write!(f, "deployment failed: {e}"),
            TuneError::InvalidFlow { reason } => write!(f, "invalid flow: {reason}"),
        }
    }
}

impl std::error::Error for TuneError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TuneError::Backend(e) => Some(e),
            TuneError::InvalidFlow { .. } => None,
        }
    }
}

impl From<BackendError> for TuneError {
    fn from(e: BackendError) -> Self {
        TuneError::Backend(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        let e = BackendError::AssignmentShape {
            expected: 3,
            actual: 1,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('1'));
        let e = BackendError::TraceMiss {
            degrees: vec![2, 4],
            epoch: 7,
        };
        assert!(e.to_string().contains("epoch 7"));
    }

    #[test]
    fn classification_separates_transient_from_permanent() {
        let transient = [
            BackendError::Io {
                context: "scrape".to_string(),
                message: "timed out".to_string(),
            },
            BackendError::DeployFailed { epoch: 3 },
            BackendError::CorruptObservation {
                context: "processed_rate".to_string(),
            },
        ];
        for e in &transient {
            assert!(e.is_transient(), "{e} must classify transient");
        }
        let permanent = [
            BackendError::TraceExhausted { served: 2 },
            BackendError::Unsupported {
                what: "latencies".to_string(),
            },
            BackendError::Format {
                context: "trace".to_string(),
                message: "truncated".to_string(),
            },
        ];
        for e in &permanent {
            assert_eq!(e.class(), FaultClass::Permanent, "{e} must be permanent");
        }
    }

    #[test]
    fn tune_error_chains_backend_source() {
        use std::error::Error;
        let e = TuneError::from(BackendError::TraceExhausted { served: 5 });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("deployment failed"));
    }
}
