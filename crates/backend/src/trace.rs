//! Trace recording and replay: tuning against canned production metrics.
//!
//! [`TraceRecorder`] wraps any [`ExecutionBackend`] and captures every
//! served deployment into a serde-serializable [`TraceLog`].
//! [`ReplayBackend`] then serves those observations back — so a tuner can
//! be driven against metrics captured from a prior session (or, in a
//! production deployment, scraped from a real engine's dashboard) with no
//! simulator in the loop.
//!
//! Replay matching is keyed, not blindly sequential: a deployment request
//! is served by the first unconsumed entry with the same assignment and
//! epoch, falling back to the first unconsumed entry with the same
//! assignment (fresh noise epochs are fine — the observation is what it
//! is). A request for an assignment the trace never saw is a
//! [`BackendError::TraceMiss`]: replay cannot invent metrics.

use crate::error::BackendError;
use crate::observation::{EngineMode, SimulationReport};
use crate::session::{BackendConstraints, ExecutionBackend};
use serde::{Deserialize, Serialize};
use streamtune_dataflow::{Dataflow, ParallelismAssignment};

/// Identity of the job a trace was recorded for: enough to refuse a
/// replay against a different flow (or the same flow at a different
/// source rate), where (assignment, epoch) matching alone would silently
/// serve another job's metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceFlowInfo {
    /// The flow's name.
    pub name: String,
    /// Operators in the flow.
    pub num_ops: usize,
    /// Source rates at recording time (captures the rate multiplier).
    pub source_rates: Vec<f64>,
}

impl TraceFlowInfo {
    /// Capture the identity of `flow`.
    pub fn of(flow: &Dataflow) -> Self {
        TraceFlowInfo {
            name: flow.name().to_string(),
            num_ops: flow.num_ops(),
            source_rates: flow.sources().iter().map(|s| s.rate).collect(),
        }
    }

    fn matches(&self, other: &TraceFlowInfo) -> bool {
        self.name == other.name
            && self.num_ops == other.num_ops
            && self.source_rates.len() == other.source_rates.len()
            && self
                .source_rates
                .iter()
                .zip(&other.source_rates)
                .all(|(a, b)| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0))
    }

    fn describe(&self) -> String {
        format!(
            "{} ({} op(s), rates {:?})",
            self.name, self.num_ops, self.source_rates
        )
    }
}

/// One recorded deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Observation epoch the deployment was served at.
    pub epoch: u64,
    /// The deployed assignment.
    pub assignment: ParallelismAssignment,
    /// The full report the backend produced.
    pub report: SimulationReport,
}

/// One recorded epoch-latency request (Fig. 8 measurements).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyEntry {
    /// The deployed assignment.
    pub assignment: ParallelismAssignment,
    /// Number of epochs that were simulated.
    pub epochs: usize,
    /// Per-epoch latencies.
    pub latencies: Vec<f64>,
}

/// A serializable log of everything a backend served during a session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceLog {
    /// Engine family of the recorded backend.
    pub engine_mode: EngineMode,
    /// Deployment limits of the recorded backend.
    pub constraints: BackendConstraints,
    /// Identity of the recorded job (set on the first served deployment;
    /// `None` in hand-built logs, which replay then cannot validate).
    pub flow: Option<TraceFlowInfo>,
    /// Recorded deployments, in service order.
    pub deploys: Vec<TraceEntry>,
    /// Recorded epoch-latency requests.
    pub latencies: Vec<LatencyEntry>,
}

impl TraceLog {
    /// An empty log for a backend with the given mode and constraints.
    pub fn new(engine_mode: EngineMode, constraints: BackendConstraints) -> Self {
        TraceLog {
            engine_mode,
            constraints,
            flow: None,
            deploys: Vec::new(),
            latencies: Vec::new(),
        }
    }

    /// Render the log as JSON.
    pub fn to_json(&self) -> Result<String, BackendError> {
        serde_json::to_string(self).map_err(|e| BackendError::Format {
            context: "trace log".to_string(),
            message: e.to_string(),
        })
    }

    /// Parse a log from JSON.
    pub fn from_json(text: &str) -> Result<Self, BackendError> {
        serde_json::from_str(text).map_err(|e| BackendError::Format {
            context: "trace log".to_string(),
            message: e.to_string(),
        })
    }

    /// Write the log to a JSON file.
    pub fn save(&self, path: &str) -> Result<(), BackendError> {
        let json = self.to_json()?;
        std::fs::write(path, json).map_err(|e| BackendError::Io {
            context: format!("write {path}"),
            message: e.to_string(),
        })
    }

    /// Read a log from a JSON file.
    pub fn load(path: &str) -> Result<Self, BackendError> {
        let text = std::fs::read_to_string(path).map_err(|e| BackendError::Io {
            context: format!("read {path}"),
            message: e.to_string(),
        })?;
        Self::from_json(&text)
    }
}

/// Wraps a backend and records everything it serves.
#[derive(Debug)]
pub struct TraceRecorder<B: ExecutionBackend> {
    inner: B,
    log: TraceLog,
}

impl<B: ExecutionBackend> TraceRecorder<B> {
    /// Start recording on top of `inner`.
    pub fn new(inner: B) -> Self {
        let log = TraceLog::new(inner.engine_mode(), inner.constraints());
        TraceRecorder { inner, log }
    }

    /// The log captured so far.
    pub fn log(&self) -> &TraceLog {
        &self.log
    }

    /// Stop recording, returning the captured log.
    pub fn into_log(self) -> TraceLog {
        self.log
    }

    /// Borrow the wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: ExecutionBackend> ExecutionBackend for TraceRecorder<B> {
    fn engine_mode(&self) -> EngineMode {
        self.inner.engine_mode()
    }

    fn constraints(&self) -> BackendConstraints {
        self.inner.constraints()
    }

    fn deploy(
        &mut self,
        flow: &Dataflow,
        assignment: &ParallelismAssignment,
        epoch: u64,
    ) -> Result<SimulationReport, BackendError> {
        let report = self.inner.deploy(flow, assignment, epoch)?;
        if self.log.flow.is_none() {
            self.log.flow = Some(TraceFlowInfo::of(flow));
        }
        self.log.deploys.push(TraceEntry {
            epoch,
            assignment: assignment.clone(),
            report: report.clone(),
        });
        Ok(report)
    }

    fn epoch_latencies(
        &mut self,
        flow: &Dataflow,
        assignment: &ParallelismAssignment,
        epochs: usize,
    ) -> Result<Vec<f64>, BackendError> {
        let latencies = self.inner.epoch_latencies(flow, assignment, epochs)?;
        self.log.latencies.push(LatencyEntry {
            assignment: assignment.clone(),
            epochs,
            latencies: latencies.clone(),
        });
        Ok(latencies)
    }
}

/// Serves observations out of a recorded [`TraceLog`] — no engine, no
/// simulator, just the canned metrics.
#[derive(Debug, Clone)]
pub struct ReplayBackend {
    log: TraceLog,
    consumed: Vec<bool>,
    served: usize,
}

impl ReplayBackend {
    /// Replay `log` from the beginning.
    pub fn new(log: TraceLog) -> Self {
        let consumed = vec![false; log.deploys.len()];
        ReplayBackend {
            log,
            consumed,
            served: 0,
        }
    }

    /// Load a trace file and replay it.
    pub fn from_file(path: &str) -> Result<Self, BackendError> {
        Ok(ReplayBackend::new(TraceLog::load(path)?))
    }

    /// Deployments served so far.
    pub fn served(&self) -> usize {
        self.served
    }

    /// Recorded deployments remaining.
    pub fn remaining(&self) -> usize {
        self.consumed.iter().filter(|&&c| !c).count()
    }

    /// Refuse to serve a flow other than the recorded one: matching on
    /// (assignment, epoch) alone would silently hand another job's
    /// metrics to the tuner.
    fn check_flow(&self, flow: &Dataflow) -> Result<(), BackendError> {
        let Some(recorded) = &self.log.flow else {
            return Ok(()); // pre-identity log: nothing to validate against
        };
        let requested = TraceFlowInfo::of(flow);
        if recorded.matches(&requested) {
            Ok(())
        } else {
            Err(BackendError::TraceFlowMismatch {
                recorded: recorded.describe(),
                requested: requested.describe(),
            })
        }
    }

    /// Find the best unconsumed entry for a request: exact
    /// (assignment, epoch) match first, same-assignment fallback second.
    fn match_entry(&self, assignment: &ParallelismAssignment, epoch: u64) -> Option<usize> {
        let mut fallback = None;
        for (i, entry) in self.log.deploys.iter().enumerate() {
            if self.consumed[i] || entry.assignment != *assignment {
                continue;
            }
            if entry.epoch == epoch {
                return Some(i);
            }
            if fallback.is_none() {
                fallback = Some(i);
            }
        }
        fallback
    }
}

impl ExecutionBackend for ReplayBackend {
    fn engine_mode(&self) -> EngineMode {
        self.log.engine_mode
    }

    fn constraints(&self) -> BackendConstraints {
        self.log.constraints
    }

    fn deploy(
        &mut self,
        flow: &Dataflow,
        assignment: &ParallelismAssignment,
        epoch: u64,
    ) -> Result<SimulationReport, BackendError> {
        self.check_flow(flow)?;
        if self.remaining() == 0 {
            return Err(BackendError::TraceExhausted {
                served: self.served,
            });
        }
        let Some(i) = self.match_entry(assignment, epoch) else {
            return Err(BackendError::TraceMiss {
                degrees: assignment.as_slice().to_vec(),
                epoch,
            });
        };
        self.consumed[i] = true;
        self.served += 1;
        Ok(self.log.deploys[i].report.clone())
    }

    fn epoch_latencies(
        &mut self,
        flow: &Dataflow,
        assignment: &ParallelismAssignment,
        epochs: usize,
    ) -> Result<Vec<f64>, BackendError> {
        self.check_flow(flow)?;
        // Latency lookups are idempotent (they are measurements of a fixed
        // deployment), so replay does not consume them.
        self.log
            .latencies
            .iter()
            .find(|e| e.assignment == *assignment && e.epochs == epochs)
            .map(|e| e.latencies.clone())
            .ok_or_else(|| BackendError::Unsupported {
                what: format!(
                    "epoch latencies for assignment {:?} ({} epochs) absent from the trace",
                    assignment.as_slice(),
                    epochs
                ),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Observation;
    use streamtune_dataflow::{DataflowBuilder, Operator};

    fn tiny_flow() -> Dataflow {
        let mut b = DataflowBuilder::new("trace-test");
        let s = b.add_source("s", 100.0);
        let m = b.add_op("m", Operator::map(8, 8));
        b.connect_source(s, m);
        b.build().unwrap()
    }

    fn fake_report(scale: f64, p: u32) -> SimulationReport {
        SimulationReport {
            observation: Observation {
                mode: EngineMode::Flink,
                per_op: Vec::new(),
                job_backpressure: scale < 0.9,
                throughput_scale: scale,
                cpu_utilization: 0.5,
                total_parallelism: u64::from(p),
            },
            true_pa: vec![100.0],
            demand_input: vec![100.0],
            saturated: vec![scale < 1.0],
        }
    }

    fn fake_log() -> TraceLog {
        let constraints = BackendConstraints {
            max_parallelism: 16,
            reconfig_wait_minutes: 10.0,
        };
        let mut log = TraceLog::new(EngineMode::Flink, constraints);
        for (epoch, p) in [(1u64, 1u32), (2, 2), (3, 2)] {
            log.deploys.push(TraceEntry {
                epoch,
                assignment: ParallelismAssignment::from_vec(vec![p]),
                report: fake_report(if p == 1 { 0.5 } else { 1.0 }, p),
            });
        }
        log
    }

    #[test]
    fn replay_serves_exact_epoch_matches() {
        let flow = tiny_flow();
        let mut replay = ReplayBackend::new(fake_log());
        let a2 = ParallelismAssignment::from_vec(vec![2]);
        let r = replay.deploy(&flow, &a2, 3).unwrap();
        assert_eq!(r.observation.total_parallelism, 2);
        assert_eq!(replay.remaining(), 2);
        // The epoch-3 entry was taken; epoch 2 remains for the same
        // assignment.
        let r = replay.deploy(&flow, &a2, 99).unwrap();
        assert_eq!(r.observation.total_parallelism, 2);
        assert_eq!(replay.remaining(), 1);
    }

    #[test]
    fn replay_misses_on_unknown_assignment() {
        let flow = tiny_flow();
        let mut replay = ReplayBackend::new(fake_log());
        let unknown = ParallelismAssignment::from_vec(vec![7]);
        match replay.deploy(&flow, &unknown, 1) {
            Err(BackendError::TraceMiss { degrees, .. }) => assert_eq!(degrees, vec![7]),
            other => panic!("expected TraceMiss, got {other:?}"),
        }
    }

    #[test]
    fn replay_exhausts() {
        let flow = tiny_flow();
        let mut replay = ReplayBackend::new(fake_log());
        let a1 = ParallelismAssignment::from_vec(vec![1]);
        let a2 = ParallelismAssignment::from_vec(vec![2]);
        replay.deploy(&flow, &a1, 1).unwrap();
        replay.deploy(&flow, &a2, 2).unwrap();
        replay.deploy(&flow, &a2, 3).unwrap();
        match replay.deploy(&flow, &a2, 4) {
            Err(BackendError::TraceExhausted { served }) => assert_eq!(served, 3),
            other => panic!("expected TraceExhausted, got {other:?}"),
        }
    }

    #[test]
    fn replay_rejects_wrong_flow() {
        let flow = tiny_flow();
        let mut log = fake_log();
        log.flow = Some(TraceFlowInfo::of(&flow));

        // Same structure, different source rate (a different multiplier).
        let mut b = DataflowBuilder::new("trace-test");
        let s = b.add_source("s", 200.0);
        let m = b.add_op("m", Operator::map(8, 8));
        b.connect_source(s, m);
        let other = b.build().unwrap();

        let mut replay = ReplayBackend::new(log);
        let a = ParallelismAssignment::from_vec(vec![1]);
        match replay.deploy(&other, &a, 1) {
            Err(BackendError::TraceFlowMismatch { .. }) => {}
            other => panic!("expected TraceFlowMismatch, got {other:?}"),
        }
        // The recorded flow itself is still served.
        assert!(replay.deploy(&flow, &a, 1).is_ok());
    }

    #[test]
    fn trace_log_json_roundtrip() {
        let mut log = fake_log();
        log.flow = Some(TraceFlowInfo::of(&tiny_flow()));
        let json = log.to_json().unwrap();
        assert!(json.contains("\"flow\""), "flow identity must persist");
        let back = TraceLog::from_json(&json).unwrap();
        assert_eq!(back, log);
    }
}
