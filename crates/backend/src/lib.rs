//! Backend-agnostic execution API for parallelism tuning.
//!
//! The paper tunes *real engines* (Apache Flink and Timely Dataflow); this
//! workspace historically tuned only the simulator, with every tuner
//! hard-wired to `SimCluster`. This crate breaks that coupling: an
//! execution backend — simulator, trace replayer, or (eventually) a real
//! engine connector — is anything implementing [`ExecutionBackend`], and
//! tuners drive deployments only through a [`TuningSession`] over
//! `&mut dyn ExecutionBackend`.
//!
//! The crate owns everything a tuner can see or produce:
//!
//! * the observation model ([`Observation`], [`OpObservation`],
//!   [`SimulationReport`], [`EngineMode`]) — moved here from the simulator
//!   so that observations are engine-neutral dashboard signals, not
//!   simulator internals;
//! * the [`ExecutionBackend`] trait and its [`BackendConstraints`];
//! * [`TuningSession`] bookkeeping (reconfiguration counting, stabilization
//!   time, CPU traces) and the [`Tuner`] trait with [`TuneOutcome`];
//! * error types ([`BackendError`], [`TuneError`]) so deployment failures
//!   surface as `Result`s instead of panics;
//! * two first-class backends that need no simulator:
//!   [`TraceRecorder`], which wraps any backend and captures a
//!   serializable [`TraceLog`], and [`ReplayBackend`], which serves
//!   observations back out of such a log — canned production metrics,
//!   no engine in the loop;
//! * the fault-tolerance layer: [`ChaosBackend`] injects deterministic,
//!   seeded faults from a [`FaultPlan`] (transient I/O errors, failed
//!   deploys, NaN/stale observations, crash-at-epoch), errors classify
//!   as transient vs permanent ([`FaultClass`]), and sessions absorb
//!   transient faults through a [`RetryPolicy`] with deterministic
//!   virtual backoff — without perturbing the tuning outcome.

pub mod chaos;
pub mod error;
pub mod observation;
pub mod retry;
pub mod session;
pub mod trace;

pub use chaos::{ChaosBackend, FaultCounters, FaultPhase, FaultPlan, FaultRates, MAX_FAULT_PHASES};
pub use error::{BackendError, FaultClass, TuneError};
pub use observation::{
    EngineMode, Observation, OpObservation, SimulationReport, BACKPRESSURE_VISIBILITY,
};
pub use retry::{RetryPolicy, RetryStats};
pub use session::{BackendConstraints, ExecutionBackend, TuneOutcome, Tuner, TuningSession};
pub use trace::{ReplayBackend, TraceEntry, TraceFlowInfo, TraceLog, TraceRecorder};
