//! The [`ExecutionBackend`] trait, [`TuningSession`] bookkeeping and the
//! [`Tuner`] interface.
//!
//! A tuning session wraps one tuning run of one job on *some* backend:
//! every `deploy` is a stop-and-restart reconfiguration (the paper's
//! reconfiguration mechanism, §V-A) that costs a stabilization wait,
//! increments the reconfiguration counter, records the CPU-utilization
//! trace (Fig. 10) and counts backpressure occurrences (Table III). The
//! session neither knows nor cares whether observations come from the
//! simulator, a recorded trace, or a live engine.

use crate::error::{BackendError, TuneError};
use crate::observation::{EngineMode, Observation, SimulationReport};
use crate::retry::{RetryPolicy, RetryStats};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;
use streamtune_dataflow::{Dataflow, ParallelismAssignment};

/// Process-wide retry telemetry (observational only — [`RetryStats`]
/// remains the per-session source of truth). Virtual backoff is recorded
/// as virtual nanoseconds (`minutes × 60·10⁹`) so one histogram pipeline
/// serves wall-clock and virtual durations alike.
struct RetryTelemetry {
    transient: streamtune_telemetry::Counter,
    retries: streamtune_telemetry::Counter,
    exhausted: streamtune_telemetry::Counter,
    permanent: streamtune_telemetry::Counter,
    backoff: streamtune_telemetry::Histogram,
}

impl RetryTelemetry {
    fn get() -> &'static RetryTelemetry {
        static CELL: OnceLock<RetryTelemetry> = OnceLock::new();
        CELL.get_or_init(|| {
            let r = streamtune_telemetry::global();
            RetryTelemetry {
                transient: r.counter(
                    "streamtune_backend_transient_faults_total",
                    "Transient backend errors observed by tuning sessions (including ones absorbed by retries).",
                ),
                retries: r.counter(
                    "streamtune_backend_retries_total",
                    "Deployment attempts retried after a transient backend error.",
                ),
                exhausted: r.counter(
                    "streamtune_backend_retries_exhausted_total",
                    "Transient backend errors that exhausted the retry budget and surfaced.",
                ),
                permanent: r.counter(
                    "streamtune_backend_permanent_failures_total",
                    "Permanent (non-retryable) backend errors surfaced immediately.",
                ),
                backoff: r.histogram(
                    "streamtune_backend_backoff_virtual_nanoseconds",
                    "Per-retry virtual backoff (never slept), in virtual nanoseconds.",
                ),
            }
        })
    }
}

/// Deployment limits a backend imposes on tuners.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackendConstraints {
    /// Maximum parallelism per operator (paper §V-A: 100 on the Flink
    /// testbed, worker count in Timely).
    pub max_parallelism: u32,
    /// Minutes the system needs to stabilize after a reconfiguration
    /// (paper §V-A: a 10-minute wait is enforced between reconfigurations).
    pub reconfig_wait_minutes: f64,
}

/// An execution substrate that can deploy a dataflow at a parallelism
/// assignment and report what its dashboard would show.
///
/// Implementations: the simulator's `SimCluster` (Flink and Timely modes),
/// [`crate::ReplayBackend`] over a recorded [`crate::TraceLog`], the
/// [`crate::TraceRecorder`] wrapper — and, eventually, real-engine
/// connectors. The trait is object-safe; tuners receive it as
/// `&mut dyn ExecutionBackend` through a [`TuningSession`].
pub trait ExecutionBackend {
    /// Engine family whose metrics dialect the observations use.
    fn engine_mode(&self) -> EngineMode;

    /// The backend's deployment limits.
    fn constraints(&self) -> BackendConstraints;

    /// Deploy `assignment` for `flow` and observe the steady state.
    ///
    /// `epoch` identifies the observation interval: backends key
    /// measurement noise on it (redeploying at a later epoch sees fresh
    /// measurement error; replaying an epoch is deterministic).
    fn deploy(
        &mut self,
        flow: &Dataflow,
        assignment: &ParallelismAssignment,
        epoch: u64,
    ) -> Result<SimulationReport, BackendError>;

    /// Per-epoch latencies for a deployment (Timely evaluation, Fig. 8).
    ///
    /// Backends without a latency model report
    /// [`BackendError::Unsupported`].
    fn epoch_latencies(
        &mut self,
        flow: &Dataflow,
        assignment: &ParallelismAssignment,
        epochs: usize,
    ) -> Result<Vec<f64>, BackendError>;
}

impl<B: ExecutionBackend + ?Sized> ExecutionBackend for &mut B {
    fn engine_mode(&self) -> EngineMode {
        (**self).engine_mode()
    }

    fn constraints(&self) -> BackendConstraints {
        (**self).constraints()
    }

    fn deploy(
        &mut self,
        flow: &Dataflow,
        assignment: &ParallelismAssignment,
        epoch: u64,
    ) -> Result<SimulationReport, BackendError> {
        (**self).deploy(flow, assignment, epoch)
    }

    fn epoch_latencies(
        &mut self,
        flow: &Dataflow,
        assignment: &ParallelismAssignment,
        epochs: usize,
    ) -> Result<Vec<f64>, BackendError> {
        (**self).epoch_latencies(flow, assignment, epochs)
    }
}

/// Bookkeeping for one tuning run of one job on a backend.
pub struct TuningSession<'a> {
    backend: &'a mut dyn ExecutionBackend,
    flow: &'a Dataflow,
    constraints: BackendConstraints,
    reconfigurations: u32,
    backpressure_events: u32,
    elapsed_minutes: f64,
    cpu_trace: Vec<f64>,
    parallelism_trace: Vec<u64>,
    current: Option<ParallelismAssignment>,
    epoch: u64,
    retry: RetryPolicy,
    retry_stats: RetryStats,
}

impl std::fmt::Debug for TuningSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TuningSession")
            .field("flow", &self.flow.name())
            .field("reconfigurations", &self.reconfigurations)
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

impl<'a> TuningSession<'a> {
    /// Start a session for `flow` on `backend`.
    pub fn new(backend: &'a mut dyn ExecutionBackend, flow: &'a Dataflow) -> Self {
        let constraints = backend.constraints();
        TuningSession {
            backend,
            flow,
            constraints,
            reconfigurations: 0,
            backpressure_events: 0,
            elapsed_minutes: 0.0,
            cpu_trace: Vec::new(),
            parallelism_trace: Vec::new(),
            current: None,
            epoch: 0,
            retry: RetryPolicy::default(),
            retry_stats: RetryStats::default(),
        }
    }

    /// Replace the retry policy (builder-style). The default absorbs a
    /// few transient faults per deployment; [`RetryPolicy::none`] makes
    /// every backend error surface immediately.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Start a session where `initial` is already deployed (a running job
    /// whose source rate just changed): the first re-deploy of the same
    /// assignment does not count as a reconfiguration.
    pub fn with_initial(
        backend: &'a mut dyn ExecutionBackend,
        flow: &'a Dataflow,
        initial: ParallelismAssignment,
        epoch: u64,
    ) -> Self {
        let mut s = TuningSession::new(backend, flow);
        s.current = Some(initial);
        s.epoch = epoch;
        s
    }

    /// The job under tuning.
    pub fn flow(&self) -> &Dataflow {
        self.flow
    }

    /// Engine family of the underlying backend.
    pub fn engine_mode(&self) -> EngineMode {
        self.backend.engine_mode()
    }

    /// Maximum per-operator parallelism allowed.
    pub fn max_parallelism(&self) -> u32 {
        self.constraints.max_parallelism
    }

    /// Deploy `assignment` (stop-and-restart reconfiguration) and observe.
    ///
    /// Re-deploying an identical assignment is *not* counted as a
    /// reconfiguration (the job keeps running), but still yields a fresh
    /// observation after the monitoring interval.
    pub fn deploy(
        &mut self,
        assignment: &ParallelismAssignment,
    ) -> Result<Observation, BackendError> {
        if assignment.len() != self.flow.num_ops() {
            return Err(BackendError::AssignmentShape {
                expected: self.flow.num_ops(),
                actual: assignment.len(),
            });
        }
        let changed = self.current.as_ref() != Some(assignment);
        self.epoch += 1;
        let mut span = streamtune_telemetry::child_span("backend.session", "deploy");
        span.add_field("epoch", self.epoch);
        span.add_field("total", assignment.total());
        let report = self.deploy_with_retry(assignment)?;
        drop(span);
        // Bookkeeping only after a successful deployment: a rejected
        // assignment neither reconfigures nor costs stabilization time.
        if changed {
            self.reconfigurations += 1;
            self.elapsed_minutes += self.constraints.reconfig_wait_minutes;
            self.current = Some(assignment.clone());
        } else {
            // Pure monitoring interval.
            self.elapsed_minutes += self.constraints.reconfig_wait_minutes / 2.0;
        }
        // Backpressure occurrences (paper Table III) are attributed to the
        // tuner's own reconfigurations: observing an inherited deployment
        // that the environment's rate change already backpressured is
        // monitoring, not a tuning mistake.
        if report.observation.job_backpressure && changed {
            self.backpressure_events += 1;
        }
        self.cpu_trace.push(report.observation.cpu_utilization);
        self.parallelism_trace.push(assignment.total());
        Ok(report.observation)
    }

    /// Deploy at the current epoch, retrying transient faults per the
    /// session's [`RetryPolicy`].
    ///
    /// Retries re-attempt the *same* epoch: backends key measurement
    /// noise on the epoch, so a retried deployment observes exactly what
    /// the fault-free call would have — which, together with retries
    /// never touching the tuning bookkeeping (reconfigurations, elapsed
    /// minutes, traces), keeps outcomes of transient-fault runs
    /// bit-identical to fault-free runs. Backoff is virtual: accounted in
    /// [`RetryStats`], never slept, never billed to the outcome.
    fn deploy_with_retry(
        &mut self,
        assignment: &ParallelismAssignment,
    ) -> Result<SimulationReport, BackendError> {
        let mut attempt: u32 = 1;
        let tel = RetryTelemetry::get();
        loop {
            let result = self
                .backend
                .deploy(self.flow, assignment, self.epoch)
                .and_then(|report| report.observation.validate().map(|()| report));
            match result {
                Ok(report) => return Ok(report),
                Err(e) if e.is_transient() => {
                    self.retry_stats.transient_faults += 1;
                    tel.transient.inc();
                    if attempt >= self.retry.max_attempts.max(1) {
                        self.retry_stats.exhausted += 1;
                        tel.exhausted.inc();
                        return Err(e);
                    }
                    self.retry_stats.retries += 1;
                    let backoff = self.retry.backoff_minutes(attempt);
                    self.retry_stats.backoff_minutes += backoff;
                    tel.retries.inc();
                    tel.backoff.record((backoff * 60e9) as u64);
                    // A marker span per absorbed fault, so retries show up
                    // in the deploy span's subtree.
                    let mut retry_span =
                        streamtune_telemetry::child_span("backend.session", "retry");
                    retry_span.add_field("attempt", attempt);
                    retry_span.add_field("backoff_minutes", backoff);
                    drop(retry_span);
                    attempt += 1;
                }
                Err(e) => {
                    self.retry_stats.permanent_failures += 1;
                    tel.permanent.inc();
                    return Err(e);
                }
            }
        }
    }

    /// What the retry loop absorbed or gave up on so far.
    pub fn retry_stats(&self) -> RetryStats {
        self.retry_stats
    }

    /// Number of reconfigurations performed so far.
    pub fn reconfigurations(&self) -> u32 {
        self.reconfigurations
    }

    /// Number of deployments that exhibited job-level backpressure.
    pub fn backpressure_events(&self) -> u32 {
        self.backpressure_events
    }

    /// Simulated wall-clock minutes spent (reconfiguration + stabilization).
    pub fn elapsed_minutes(&self) -> f64 {
        self.elapsed_minutes
    }

    /// Cluster CPU utilization after each deployment (Fig. 10 trace).
    pub fn cpu_trace(&self) -> &[f64] {
        &self.cpu_trace
    }

    /// Total parallelism after each deployment.
    pub fn parallelism_trace(&self) -> &[u64] {
        &self.parallelism_trace
    }

    /// The currently deployed assignment, if any.
    pub fn current_assignment(&self) -> Option<&ParallelismAssignment> {
        self.current.as_ref()
    }

    /// Assemble a [`TuneOutcome`] from the session's bookkeeping.
    pub fn outcome(
        &self,
        final_assignment: ParallelismAssignment,
        iterations: u32,
        converged: bool,
    ) -> TuneOutcome {
        TuneOutcome {
            final_assignment,
            reconfigurations: self.reconfigurations(),
            backpressure_events: self.backpressure_events(),
            elapsed_minutes: self.elapsed_minutes(),
            iterations,
            converged,
        }
    }
}

/// The result of running a tuner to convergence on one session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneOutcome {
    /// The parallelism assignment the tuner settled on.
    pub final_assignment: ParallelismAssignment,
    /// Reconfigurations performed (Fig. 7a metric).
    pub reconfigurations: u32,
    /// Deployments that exhibited job-level backpressure (Table III metric).
    pub backpressure_events: u32,
    /// Simulated minutes spent tuning (Fig. 7b metric).
    pub elapsed_minutes: f64,
    /// Tuning iterations executed.
    pub iterations: u32,
    /// Whether the tuner reached its own convergence criterion (as opposed
    /// to hitting an iteration cap).
    pub converged: bool,
}

/// A parallelism tuner: given a tuning session for one job, drive
/// deployments until its convergence criterion is met. Implemented by
/// StreamTune and every baseline (DS2, ContTune, ZeroTune).
pub trait Tuner {
    /// Short display name ("DS2", "StreamTune", …).
    fn name(&self) -> &str;

    /// Run the tuning loop on `session`.
    fn tune(&mut self, session: &mut TuningSession<'_>) -> Result<TuneOutcome, TuneError>;
}
