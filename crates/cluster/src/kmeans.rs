//! K-means over graphs with GED distance and similarity-center centroids.
//!
//! All distance queries go through a corpus-level [`GedCache`]: structures
//! are interned (duplicates collapse to one id with a multiplicity weight)
//! and every pair's A\* search runs at most once across farthest-first
//! seeding, every assignment step, the similarity-center updates and the
//! whole elbow sweep. Pairwise batches are back-filled with deterministic
//! scoped-thread fan-out ([`Parallelism`]).

use serde::{Deserialize, Serialize};
use streamtune_dataflow::GraphSignature;
use streamtune_ged::{ged_with, Bound, GedCache, GraphView, Parallelism, StructId};

/// Configuration of the DAG clustering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Fixed number of clusters, or `None` to choose k via the elbow method.
    pub k: Option<usize>,
    /// Maximum k considered by the elbow sweep.
    pub k_max: usize,
    /// GED threshold τ for similarity search in the centroid update
    /// (paper §V-A sets τ = 5).
    pub tau: usize,
    /// Distances larger than this are capped (keeps A\* bounded on very
    /// dissimilar graphs; the cap only matters for far-away assignments).
    pub ged_cap: usize,
    /// Maximum k-means iterations.
    pub max_iters: usize,
    /// Elbow sensitivity: stop increasing k once the relative inertia
    /// improvement falls below this fraction.
    pub elbow_epsilon: f64,
    /// Seed for the farthest-first initialization.
    pub seed: u64,
    /// Worker threads for pairwise GED batches.
    pub parallelism: Parallelism,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            k: None,
            k_max: 8,
            tau: 5,
            ged_cap: 24,
            max_iters: 12,
            elbow_epsilon: 0.15,
            seed: 17,
            parallelism: Parallelism::Auto,
        }
    }
}

/// Result of clustering a DAG corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagClustering {
    /// Chosen number of clusters.
    pub k: usize,
    /// Cluster index per input graph.
    pub assignments: Vec<usize>,
    /// Center graph index (into the input corpus) per cluster.
    pub centers: Vec<usize>,
    /// Sum of member→center distances (inertia). Weighted runs count each
    /// structure with its multiplicity.
    pub inertia: f64,
}

impl DagClustering {
    /// Members of cluster `c` as corpus indices.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == c)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Farthest-first growth: the next center is the point maximizing
/// `weight × distance-to-nearest-center` (weighted farthest-first — with
/// unit weights this is the classic criterion). Membership is tracked with
/// a boolean vector, ties break toward the lower index, and the candidate
/// distances are pre-filled in one parallel batch. Returns `None` when
/// every point is already a center.
fn grow_center(
    cache: &mut GedCache,
    ids: &[StructId],
    weights: &[f64],
    centers: &[usize],
    par: Parallelism,
) -> Option<usize> {
    let n = ids.len();
    let mut is_center = vec![false; n];
    for &c in centers {
        is_center[c] = true;
    }
    let pairs: Vec<(StructId, StructId)> = (0..n)
        .filter(|&i| !is_center[i])
        .flat_map(|i| centers.iter().map(move |&c| (ids[i], ids[c])))
        .collect();
    let cap = cache.cap();
    cache.ensure_dists(&pairs, cap, par);
    let mut best: (f64, Option<usize>) = (0.0, None); // (score, index)
    for i in 0..n {
        if is_center[i] {
            continue;
        }
        let d = centers
            .iter()
            .map(|&c| cache.dist(ids[i], ids[c]))
            .min()
            .expect("at least one center");
        let score = weights[i] * d as f64;
        // Tie-break on lower index for determinism.
        if score > best.0 {
            best = (score, Some(i));
        }
    }
    best.1.or_else(|| {
        // All remaining graphs coincide with some center; duplicate any.
        is_center.iter().position(|&c| !c)
    })
}

/// Weighted similarity center (paper Def. 2 over a multiset): the member
/// appearing most often across the τ-similarity search results of all
/// members, each query weighted by its structure's multiplicity. Ties break
/// toward the lower member position (deterministic). Distances come from
/// the shared cache — no graph is cloned and no pair is searched twice.
///
/// A candidate's *own* multiplicity deliberately does not scale its count:
/// Def. 2's `C_g` counts the queries whose result set contains `g`, so
/// every copy of a duplicated structure has the same count and the
/// structure-level argmax with first-occurrence tie-break equals the
/// instance-level argmax over the raw multiset.
fn weighted_similarity_center(
    cache: &mut GedCache,
    ids: &[StructId],
    weights: &[f64],
    members: &[usize],
    tau: usize,
    par: Parallelism,
) -> Option<usize> {
    if members.is_empty() {
        return None;
    }
    // Pre-fill every member pair up to τ (the signature filter and prior
    // knowledge are applied inside the cache).
    let mut pairs = Vec::new();
    for (i, &mi) in members.iter().enumerate() {
        for &mj in &members[i + 1..] {
            pairs.push((ids[mi], ids[mj]));
        }
    }
    cache.ensure_dists(&pairs, tau, par);
    let mut counts = vec![0.0f64; members.len()];
    for &mq in members {
        let w = weights[mq];
        for (gi, &mg) in members.iter().enumerate() {
            if cache.within(ids[mq], ids[mg], tau) {
                counts[gi] += w;
            }
        }
    }
    counts
        .iter()
        .enumerate()
        .max_by(|a, b| {
            a.1.partial_cmp(b.1)
                .expect("finite counts")
                .then(b.0.cmp(&a.0))
        })
        .map(|(i, _)| i)
}

/// One weighted k-means run from explicit initial centers. Center updates
/// use the similarity center; an update is accepted only if the weighted
/// inertia does not rise (medoid-update guard).
fn run_kmeans(
    cache: &mut GedCache,
    ids: &[StructId],
    weights: &[f64],
    mut centers: Vec<usize>,
    cfg: &ClusterConfig,
) -> DagClustering {
    let n = ids.len();
    let par = cfg.parallelism;
    let k = centers.len();
    let mut assignments = vec![0usize; n];

    let assign = |cache: &mut GedCache, centers: &[usize], assignments: &mut [usize]| -> f64 {
        let pairs: Vec<(StructId, StructId)> = (0..n)
            .flat_map(|i| centers.iter().map(move |&c| (i, c)))
            .map(|(i, c)| (ids[i], ids[c]))
            .collect();
        let cap = cache.cap();
        cache.ensure_dists(&pairs, cap, par);
        let mut inertia = 0.0;
        for (i, assignment) in assignments.iter_mut().enumerate() {
            let (best_c, d) = centers
                .iter()
                .enumerate()
                .map(|(c, &g)| (c, cache.dist(ids[i], ids[g])))
                .min_by_key(|&(c, d)| (d, c))
                .expect("k >= 1");
            *assignment = best_c;
            inertia += weights[i] * d as f64;
        }
        inertia
    };

    let mut inertia = assign(cache, &centers, &mut assignments);
    for _ in 0..cfg.max_iters {
        // Update step: similarity centers from the current assignment.
        let mut new_centers = centers.clone();
        for (c, nc) in new_centers.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assignments[i] == c).collect();
            if let Some(sc) =
                weighted_similarity_center(cache, ids, weights, &members, cfg.tau, par)
            {
                *nc = members[sc];
            }
        }
        if new_centers == centers {
            break;
        }
        // Medoid-update guard: the similarity center is a structural mode,
        // not an inertia minimizer, so a center move can worsen the weighted
        // objective (heavily duplicated structures amplify this). Accept a
        // move only if it keeps inertia from rising — this keeps the per-k
        // inertia curve well-behaved for the elbow sweep.
        let mut new_assignments = vec![0usize; n];
        let new_inertia = assign(cache, &new_centers, &mut new_assignments);
        if new_inertia > inertia {
            break;
        }
        centers = new_centers;
        assignments = new_assignments;
        inertia = new_inertia;
    }

    DagClustering {
        k,
        assignments,
        centers,
        inertia,
    }
}

/// Pick k with the elbow method: the smallest k whose marginal relative
/// inertia improvement over k−1 falls below `epsilon` (paper §V-A cites
/// Ketchen & Shook).
pub fn choose_k_elbow(inertias: &[f64], epsilon: f64) -> usize {
    assert!(!inertias.is_empty());
    for k in 1..inertias.len() {
        let prev = inertias[k - 1];
        if prev <= f64::EPSILON {
            return k; // already perfect with k clusters
        }
        let improvement = (prev - inertias[k]) / prev;
        if improvement < epsilon {
            return k; // k (1-based count = index) clusters suffice
        }
    }
    inertias.len()
}

/// Cluster interned structures through a shared [`GedCache`].
///
/// `ids[i]` is the interned structure of corpus entry `i` and `weights[i]`
/// its multiplicity (how many raw records share that structure). The cache
/// persists across the entire call — including the full elbow sweep when
/// `cfg.k` is `None` — so every distance is searched at most once.
///
/// The sweep is *incremental* (greedy global-k-means style): the run for k
/// starts from the **converged** centers of k−1 plus the weighted-farthest
/// point, and center updates never raise inertia, so the per-k inertia
/// curve is non-increasing by construction — exactly what the elbow method
/// assumes. A fixed `cfg.k` runs the same chain up to k and keeps the last
/// run: the intermediate runs are what seeds it well, and their distance
/// queries all hit the shared cache, so repeated fixed-k calls also stay
/// monotone in k.
pub fn cluster_dags_cached(
    cache: &mut GedCache,
    ids: &[StructId],
    weights: &[f64],
    cfg: &ClusterConfig,
) -> DagClustering {
    assert!(!ids.is_empty(), "cannot cluster an empty corpus");
    assert_eq!(ids.len(), weights.len(), "one weight per structure");
    let n = ids.len();
    let k_target = cfg.k.unwrap_or(cfg.k_max).clamp(1, n);
    let mut centers = vec![(cfg.seed as usize) % n];
    let mut runs: Vec<DagClustering> = Vec::with_capacity(k_target);
    loop {
        let run = run_kmeans(cache, ids, weights, centers.clone(), cfg);
        centers = run.centers.clone();
        runs.push(run);
        if runs.len() >= k_target {
            break;
        }
        match grow_center(cache, ids, weights, &centers, cfg.parallelism) {
            Some(next) => centers.push(next),
            None => break, // every structure is already a center
        }
    }
    match cfg.k {
        Some(_) => runs.pop().expect("at least one run"),
        None => {
            let inertias: Vec<f64> = runs.iter().map(|r| r.inertia).collect();
            let k = choose_k_elbow(&inertias, cfg.elbow_epsilon);
            runs.into_iter().nth(k - 1).expect("k within range")
        }
    }
}

/// Cluster a corpus of dataflow DAG views.
///
/// Structurally identical graphs are deduplicated before k-means (distinct
/// structures are clustered with their multiplicities), then the result is
/// expanded back to per-input assignments: duplicates always land in the
/// same cluster, and the reported inertia counts every copy. Seeding and
/// centroid updates operate on the deduped, weighted view (the initial
/// center is `seed % distinct_count` and growth maximizes
/// `weight × distance`), so center choices can differ from a naive run
/// over the raw corpus — by design: multiplicity is signal, not noise.
pub fn cluster_dags(graphs: &[(GraphView, GraphSignature)], cfg: &ClusterConfig) -> DagClustering {
    assert!(!graphs.is_empty(), "cannot cluster an empty corpus");
    let mut cache = GedCache::new(Bound::LabelSet, cfg.ged_cap);
    let structure_of: Vec<StructId> = graphs.iter().map(|(v, s)| cache.intern(v, s)).collect();
    // Interned ids are dense and in first-occurrence order.
    let distinct: Vec<StructId> = (0..cache.len()).collect();
    let weights = cache.multiplicities(&structure_of);
    let dc = cluster_dags_cached(&mut cache, &distinct, &weights, cfg);
    // Expand distinct-structure assignments back to input positions.
    let mut first_pos = vec![usize::MAX; cache.len()];
    for (pos, &s) in structure_of.iter().enumerate() {
        if first_pos[s] == usize::MAX {
            first_pos[s] = pos;
        }
    }
    DagClustering {
        k: dc.k,
        assignments: structure_of.iter().map(|&s| dc.assignments[s]).collect(),
        centers: dc.centers.iter().map(|&d| first_pos[distinct[d]]).collect(),
        inertia: dc.inertia,
    }
}

/// Assign a query DAG to its nearest center (Algorithm 2, line 1). Returns
/// `(cluster index, distance)`.
pub fn nearest_center(query: &GraphView, centers: &[GraphView], ged_cap: usize) -> (usize, usize) {
    assert!(!centers.is_empty());
    centers
        .iter()
        .enumerate()
        .map(|(c, g)| (c, ged_with(query, g, Bound::LabelSet, ged_cap).capped()))
        .min_by_key(|&(c, d)| (d, c))
        .expect("non-empty centers")
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamtune_dataflow::OperatorKind::{self, *};

    fn chain(labels: &[OperatorKind]) -> (GraphView, GraphSignature) {
        let edges: Vec<(usize, usize)> = (0..labels.len().saturating_sub(1))
            .map(|i| (i, i + 1))
            .collect();
        let view = GraphView::new(labels.to_vec(), edges.clone());
        let mut kinds = labels.to_vec();
        kinds.sort();
        let mut degrees: Vec<(u8, u8)> = (0..labels.len())
            .map(|i| (u8::from(i > 0), u8::from(i + 1 < labels.len())))
            .collect();
        degrees.sort();
        let mut edge_kinds: Vec<_> = edges.iter().map(|&(a, b)| (labels[a], labels[b])).collect();
        edge_kinds.sort();
        let sig = GraphSignature {
            num_ops: labels.len(),
            num_edges: edges.len(),
            kinds,
            degrees,
            edge_kinds,
        };
        (view, sig)
    }

    /// Two obvious families: short filter chains and long join pipelines.
    fn corpus() -> Vec<(GraphView, GraphSignature)> {
        vec![
            chain(&[Filter, Map, Sink]),
            chain(&[Filter, FlatMap, Sink]),
            chain(&[Filter, Map, Map, Sink]),
            chain(&[WindowJoin, Aggregate, KeyBy, FlatMap, Map, Sink]),
            chain(&[WindowJoin, Aggregate, KeyBy, Map, Map, Sink]),
            chain(&[WindowJoin, WindowAggregate, KeyBy, FlatMap, Map, Sink]),
        ]
    }

    #[test]
    fn two_families_separate_at_k2() {
        let graphs = corpus();
        let cfg = ClusterConfig {
            k: Some(2),
            ..Default::default()
        };
        let result = cluster_dags(&graphs, &cfg);
        assert_eq!(result.k, 2);
        // All short chains together, all join pipelines together.
        assert_eq!(result.assignments[0], result.assignments[1]);
        assert_eq!(result.assignments[0], result.assignments[2]);
        assert_eq!(result.assignments[3], result.assignments[4]);
        assert_eq!(result.assignments[3], result.assignments[5]);
        assert_ne!(result.assignments[0], result.assignments[3]);
    }

    #[test]
    fn elbow_prefers_small_k_for_homogeneous_corpus() {
        let graphs = vec![
            chain(&[Filter, Map, Sink]),
            chain(&[Filter, Map, Sink]),
            chain(&[Filter, FlatMap, Sink]),
            chain(&[Filter, Map, Sink]),
        ];
        let result = cluster_dags(&graphs, &ClusterConfig::default());
        assert!(
            result.k <= 2,
            "homogeneous corpus needs few clusters, got {}",
            result.k
        );
    }

    #[test]
    fn inertia_non_increasing_in_k() {
        let graphs = corpus();
        let mut prev = f64::INFINITY;
        for k in 1..=4 {
            let cfg = ClusterConfig {
                k: Some(k),
                ..Default::default()
            };
            let r = cluster_dags(&graphs, &cfg);
            assert!(
                r.inertia <= prev + 1e-9,
                "inertia rose at k={k}: {} > {prev}",
                r.inertia
            );
            prev = r.inertia;
        }
    }

    #[test]
    fn choose_k_elbow_basics() {
        // Sharp elbow at 2: improvements 0.8 then 0.05.
        assert_eq!(choose_k_elbow(&[100.0, 20.0, 19.0, 18.5], 0.15), 2);
        // No elbow → max k.
        assert_eq!(choose_k_elbow(&[100.0, 50.0, 25.0], 0.15), 3);
        // Perfect at k=1 (inertia 0) → 1.
        assert_eq!(choose_k_elbow(&[0.0, 0.0], 0.15), 1);
    }

    #[test]
    fn nearest_center_picks_closest() {
        let (q, _) = chain(&[Filter, Map, Sink]);
        let centers = vec![
            chain(&[WindowJoin, Aggregate, KeyBy, FlatMap, Map, Sink]).0,
            chain(&[Filter, FlatMap, Sink]).0,
        ];
        let (c, d) = nearest_center(&q, &centers, 24);
        assert_eq!(c, 1);
        assert_eq!(d, 1);
    }

    #[test]
    fn members_listing() {
        let graphs = corpus();
        let cfg = ClusterConfig {
            k: Some(2),
            ..Default::default()
        };
        let r = cluster_dags(&graphs, &cfg);
        let total: usize = (0..r.k).map(|c| r.members(c).len()).sum();
        assert_eq!(total, graphs.len());
    }

    #[test]
    fn centers_are_members_of_their_cluster() {
        let graphs = corpus();
        let cfg = ClusterConfig {
            k: Some(2),
            ..Default::default()
        };
        let r = cluster_dags(&graphs, &cfg);
        for (c, &g) in r.centers.iter().enumerate() {
            assert_eq!(
                r.assignments[g], c,
                "center graph {g} must belong to its own cluster {c}"
            );
        }
    }

    #[test]
    fn k_capped_at_corpus_size() {
        let graphs = vec![chain(&[Map, Sink]), chain(&[Filter, Sink])];
        let cfg = ClusterConfig {
            k: Some(10),
            ..Default::default()
        };
        let r = cluster_dags(&graphs, &cfg);
        assert!(r.k <= 2);
    }

    #[test]
    fn duplicates_collapse_but_assignments_expand() {
        // Three copies of one structure + one outlier family.
        let graphs = vec![
            chain(&[Filter, Map, Sink]),
            chain(&[Filter, Map, Sink]),
            chain(&[Filter, Map, Sink]),
            chain(&[WindowJoin, Aggregate, KeyBy, FlatMap, Map, Sink]),
        ];
        let cfg = ClusterConfig {
            k: Some(2),
            ..Default::default()
        };
        let r = cluster_dags(&graphs, &cfg);
        assert_eq!(r.assignments.len(), 4);
        assert_eq!(r.assignments[0], r.assignments[1]);
        assert_eq!(r.assignments[0], r.assignments[2]);
        assert_ne!(r.assignments[0], r.assignments[3]);
        // Inertia counts every copy: all copies sit on their center (0) and
        // the outlier is its own center, so inertia must be 0 here.
        assert_eq!(r.inertia, 0.0);
    }

    #[test]
    fn serial_and_parallel_clustering_agree() {
        let graphs = corpus();
        let mk = |par: Parallelism| {
            let cfg = ClusterConfig {
                parallelism: par,
                ..Default::default()
            };
            cluster_dags(&graphs, &cfg)
        };
        let serial = mk(Parallelism::Serial);
        for threads in [2, 4, 16] {
            assert_eq!(
                mk(Parallelism::Fixed(threads)),
                serial,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn cached_clustering_never_repeats_a_search() {
        let graphs = corpus();
        let mut cache = GedCache::new(Bound::LabelSet, 24);
        let ids: Vec<StructId> = graphs.iter().map(|(v, s)| cache.intern(v, s)).collect();
        let weights = vec![1.0; ids.len()];
        let cfg = ClusterConfig::default();
        let _ = cluster_dags_cached(&mut cache, &ids, &weights, &cfg);
        let stats = cache.stats();
        // Each canonical pair is searched at most once per threshold level:
        // once at τ (similarity) and once at the cap (metric escalation).
        let max_pairs = (ids.len() * (ids.len() - 1) / 2) as u64;
        assert!(
            stats.searches <= 2 * max_pairs,
            "{} searches for {} canonical pairs — cache must dedup the sweep",
            stats.searches,
            max_pairs
        );
        assert!(stats.lookups > stats.searches, "cache must be hit");
    }
}
