//! K-means over graphs with GED distance and similarity-center centroids.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use streamtune_dataflow::GraphSignature;
use streamtune_ged::{ged_with, similarity_center, Bound, GraphView};

/// Configuration of the DAG clustering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Fixed number of clusters, or `None` to choose k via the elbow method.
    pub k: Option<usize>,
    /// Maximum k considered by the elbow sweep.
    pub k_max: usize,
    /// GED threshold τ for similarity search in the centroid update
    /// (paper §V-A sets τ = 5).
    pub tau: usize,
    /// Distances larger than this are capped (keeps A\* bounded on very
    /// dissimilar graphs; the cap only matters for far-away assignments).
    pub ged_cap: usize,
    /// Maximum k-means iterations.
    pub max_iters: usize,
    /// Elbow sensitivity: stop increasing k once the relative inertia
    /// improvement falls below this fraction.
    pub elbow_epsilon: f64,
    /// Seed for the farthest-first initialization.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            k: None,
            k_max: 8,
            tau: 5,
            ged_cap: 24,
            max_iters: 12,
            elbow_epsilon: 0.15,
            seed: 17,
        }
    }
}

/// Result of clustering a DAG corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagClustering {
    /// Chosen number of clusters.
    pub k: usize,
    /// Cluster index per input graph.
    pub assignments: Vec<usize>,
    /// Center graph index (into the input corpus) per cluster.
    pub centers: Vec<usize>,
    /// Sum of member→center distances (inertia).
    pub inertia: f64,
}

impl DagClustering {
    /// Members of cluster `c` as corpus indices.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == c)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Lazily cached capped-GED oracle over a corpus.
struct DistCache<'a> {
    graphs: &'a [(GraphView, GraphSignature)],
    cap: usize,
    cache: HashMap<(usize, usize), usize>,
}

impl DistCache<'_> {
    fn dist(&mut self, a: usize, b: usize) -> usize {
        if a == b {
            return 0;
        }
        let key = (a.min(b), a.max(b));
        if let Some(&d) = self.cache.get(&key) {
            return d;
        }
        let d = ged_with(
            &self.graphs[a].0,
            &self.graphs[b].0,
            Bound::LabelSet,
            self.cap,
        )
        .capped();
        self.cache.insert(key, d);
        d
    }
}

/// Farthest-first initialization: pick a deterministic seed point, then
/// repeatedly pick the graph farthest from its nearest chosen center.
fn farthest_first(cache: &mut DistCache<'_>, n: usize, k: usize, seed: u64) -> Vec<usize> {
    let mut centers = vec![(seed as usize) % n];
    while centers.len() < k {
        let mut best = (0usize, 0usize); // (distance, index)
        for i in 0..n {
            if centers.contains(&i) {
                continue;
            }
            let d = centers.iter().map(|&c| cache.dist(i, c)).min().unwrap();
            // Tie-break on lower index for determinism.
            if d > best.0 {
                best = (d, i);
            }
        }
        if best.0 == 0 {
            // All remaining graphs coincide with some center; duplicate any.
            let extra = (0..n).find(|i| !centers.contains(i));
            match extra {
                Some(i) => centers.push(i),
                None => break,
            }
        } else {
            centers.push(best.1);
        }
    }
    centers
}

fn run_kmeans(
    graphs: &[(GraphView, GraphSignature)],
    cache: &mut DistCache<'_>,
    k: usize,
    cfg: &ClusterConfig,
) -> DagClustering {
    let n = graphs.len();
    let mut centers = farthest_first(cache, n, k.min(n), cfg.seed);
    let k = centers.len();
    let mut assignments = vec![0usize; n];

    for _ in 0..cfg.max_iters {
        // Assignment step.
        for (i, assignment) in assignments.iter_mut().enumerate() {
            let (best_c, _) = centers
                .iter()
                .enumerate()
                .map(|(c, &g)| (c, cache.dist(i, g)))
                .min_by_key(|&(c, d)| (d, c))
                .expect("k >= 1");
            *assignment = best_c;
        }
        // Update step: similarity centers.
        let mut new_centers = centers.clone();
        for (c, nc) in new_centers.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assignments[i] == c).collect();
            if members.is_empty() {
                continue;
            }
            let cluster_graphs: Vec<(GraphView, GraphSignature)> =
                members.iter().map(|&i| graphs[i].clone()).collect();
            if let Some(sc) = similarity_center(&cluster_graphs, cfg.tau, Bound::LabelSet) {
                *nc = members[sc.center];
            }
        }
        if new_centers == centers {
            break;
        }
        centers = new_centers;
    }

    // Final assignment against the converged centers + inertia.
    let mut inertia = 0.0;
    for (i, assignment) in assignments.iter_mut().enumerate() {
        let (best_c, d) = centers
            .iter()
            .enumerate()
            .map(|(c, &g)| (c, cache.dist(i, g)))
            .min_by_key(|&(c, d)| (d, c))
            .expect("k >= 1");
        *assignment = best_c;
        inertia += d as f64;
    }

    DagClustering {
        k,
        assignments,
        centers,
        inertia,
    }
}

/// Pick k with the elbow method: the smallest k whose marginal relative
/// inertia improvement over k−1 falls below `epsilon` (paper §V-A cites
/// Ketchen & Shook).
pub fn choose_k_elbow(inertias: &[f64], epsilon: f64) -> usize {
    assert!(!inertias.is_empty());
    for k in 1..inertias.len() {
        let prev = inertias[k - 1];
        if prev <= f64::EPSILON {
            return k; // already perfect with k clusters
        }
        let improvement = (prev - inertias[k]) / prev;
        if improvement < epsilon {
            return k; // k (1-based count = index) clusters suffice
        }
    }
    inertias.len()
}

/// Cluster a corpus of dataflow DAG views.
pub fn cluster_dags(graphs: &[(GraphView, GraphSignature)], cfg: &ClusterConfig) -> DagClustering {
    assert!(!graphs.is_empty(), "cannot cluster an empty corpus");
    let mut cache = DistCache {
        graphs,
        cap: cfg.ged_cap,
        cache: HashMap::new(),
    };
    match cfg.k {
        Some(k) => run_kmeans(graphs, &mut cache, k.max(1), cfg),
        None => {
            let k_max = cfg.k_max.min(graphs.len()).max(1);
            let runs: Vec<DagClustering> = (1..=k_max)
                .map(|k| run_kmeans(graphs, &mut cache, k, cfg))
                .collect();
            let inertias: Vec<f64> = runs.iter().map(|r| r.inertia).collect();
            let k = choose_k_elbow(&inertias, cfg.elbow_epsilon);
            runs.into_iter().nth(k - 1).expect("k within range")
        }
    }
}

/// Assign a query DAG to its nearest center (Algorithm 2, line 1). Returns
/// `(cluster index, distance)`.
pub fn nearest_center(query: &GraphView, centers: &[GraphView], ged_cap: usize) -> (usize, usize) {
    assert!(!centers.is_empty());
    centers
        .iter()
        .enumerate()
        .map(|(c, g)| (c, ged_with(query, g, Bound::LabelSet, ged_cap).capped()))
        .min_by_key(|&(c, d)| (d, c))
        .expect("non-empty centers")
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamtune_dataflow::OperatorKind::{self, *};

    fn chain(labels: &[OperatorKind]) -> (GraphView, GraphSignature) {
        let edges: Vec<(usize, usize)> = (0..labels.len().saturating_sub(1))
            .map(|i| (i, i + 1))
            .collect();
        let view = GraphView::new(labels.to_vec(), edges.clone());
        let mut kinds = labels.to_vec();
        kinds.sort();
        let mut degrees: Vec<(u8, u8)> = (0..labels.len())
            .map(|i| (u8::from(i > 0), u8::from(i + 1 < labels.len())))
            .collect();
        degrees.sort();
        let mut edge_kinds: Vec<_> = edges.iter().map(|&(a, b)| (labels[a], labels[b])).collect();
        edge_kinds.sort();
        let sig = GraphSignature {
            num_ops: labels.len(),
            num_edges: edges.len(),
            kinds,
            degrees,
            edge_kinds,
        };
        (view, sig)
    }

    /// Two obvious families: short filter chains and long join pipelines.
    fn corpus() -> Vec<(GraphView, GraphSignature)> {
        vec![
            chain(&[Filter, Map, Sink]),
            chain(&[Filter, FlatMap, Sink]),
            chain(&[Filter, Map, Map, Sink]),
            chain(&[WindowJoin, Aggregate, KeyBy, FlatMap, Map, Sink]),
            chain(&[WindowJoin, Aggregate, KeyBy, Map, Map, Sink]),
            chain(&[WindowJoin, WindowAggregate, KeyBy, FlatMap, Map, Sink]),
        ]
    }

    #[test]
    fn two_families_separate_at_k2() {
        let graphs = corpus();
        let cfg = ClusterConfig {
            k: Some(2),
            ..Default::default()
        };
        let result = cluster_dags(&graphs, &cfg);
        assert_eq!(result.k, 2);
        // All short chains together, all join pipelines together.
        assert_eq!(result.assignments[0], result.assignments[1]);
        assert_eq!(result.assignments[0], result.assignments[2]);
        assert_eq!(result.assignments[3], result.assignments[4]);
        assert_eq!(result.assignments[3], result.assignments[5]);
        assert_ne!(result.assignments[0], result.assignments[3]);
    }

    #[test]
    fn elbow_prefers_small_k_for_homogeneous_corpus() {
        let graphs = vec![
            chain(&[Filter, Map, Sink]),
            chain(&[Filter, Map, Sink]),
            chain(&[Filter, FlatMap, Sink]),
            chain(&[Filter, Map, Sink]),
        ];
        let result = cluster_dags(&graphs, &ClusterConfig::default());
        assert!(
            result.k <= 2,
            "homogeneous corpus needs few clusters, got {}",
            result.k
        );
    }

    #[test]
    fn inertia_non_increasing_in_k() {
        let graphs = corpus();
        let mut prev = f64::INFINITY;
        for k in 1..=4 {
            let cfg = ClusterConfig {
                k: Some(k),
                ..Default::default()
            };
            let r = cluster_dags(&graphs, &cfg);
            assert!(
                r.inertia <= prev + 1e-9,
                "inertia rose at k={k}: {} > {prev}",
                r.inertia
            );
            prev = r.inertia;
        }
    }

    #[test]
    fn choose_k_elbow_basics() {
        // Sharp elbow at 2: improvements 0.8 then 0.05.
        assert_eq!(choose_k_elbow(&[100.0, 20.0, 19.0, 18.5], 0.15), 2);
        // No elbow → max k.
        assert_eq!(choose_k_elbow(&[100.0, 50.0, 25.0], 0.15), 3);
        // Perfect at k=1 (inertia 0) → 1.
        assert_eq!(choose_k_elbow(&[0.0, 0.0], 0.15), 1);
    }

    #[test]
    fn nearest_center_picks_closest() {
        let (q, _) = chain(&[Filter, Map, Sink]);
        let centers = vec![
            chain(&[WindowJoin, Aggregate, KeyBy, FlatMap, Map, Sink]).0,
            chain(&[Filter, FlatMap, Sink]).0,
        ];
        let (c, d) = nearest_center(&q, &centers, 24);
        assert_eq!(c, 1);
        assert_eq!(d, 1);
    }

    #[test]
    fn members_listing() {
        let graphs = corpus();
        let cfg = ClusterConfig {
            k: Some(2),
            ..Default::default()
        };
        let r = cluster_dags(&graphs, &cfg);
        let total: usize = (0..r.k).map(|c| r.members(c).len()).sum();
        assert_eq!(total, graphs.len());
    }

    #[test]
    fn centers_are_members_of_their_cluster() {
        let graphs = corpus();
        let cfg = ClusterConfig {
            k: Some(2),
            ..Default::default()
        };
        let r = cluster_dags(&graphs, &cfg);
        for (c, &g) in r.centers.iter().enumerate() {
            assert_eq!(
                r.assignments[g], c,
                "center graph {g} must belong to its own cluster {c}"
            );
        }
    }

    #[test]
    fn k_capped_at_corpus_size() {
        let graphs = vec![chain(&[Map, Sink]), chain(&[Filter, Sink])];
        let cfg = ClusterConfig {
            k: Some(10),
            ..Default::default()
        };
        let r = cluster_dags(&graphs, &cfg);
        assert!(r.k <= 2);
    }
}
