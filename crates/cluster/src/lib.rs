//! GED-based k-means clustering of dataflow DAGs (paper §IV-C).
//!
//! Historical dataflow DAGs are grouped by Graph Edit Distance so that one
//! GNN encoder can be pre-trained per structurally homogeneous cluster.
//! Because graphs cannot be averaged, the centroid-update step uses the
//! paper's *similarity center* (Def. 2): the member graph appearing most
//! often in the τ-similarity search results of all members — an
//! approximate median graph computable with threshold-pruned GED.
//!
//! The number of clusters is chosen with the elbow method (paper §V-A).

pub mod kmeans;

pub use kmeans::{
    choose_k_elbow, cluster_dags, cluster_dags_cached, nearest_center, ClusterConfig, DagClustering,
};
