//! Logical dataflow DAG model for the StreamTune reproduction.
//!
//! This crate defines the *logical* Directed Acyclic Graph abstraction used
//! throughout the workspace (paper §II-A): operators with the static feature
//! set of Table I, external data sources with source rates, directed edges
//! carrying data dependencies, and the feature encoding (one-hot
//! categorical plus min-max numeric scaling) that forms the initial node
//! vectors `h_v^(0)` of the GNN encoder (paper §IV-A, "Initial Feature
//! Vector Construction").
//!
//! Parallelism is deliberately **not** part of the [`Dataflow`] — it is a
//! dynamic feature handled separately by the tuners (paper §III, "Strategy
//! for Handling Operator Parallelism"). A concrete deployment is expressed
//! as a [`ParallelismAssignment`] next to the graph.

pub mod builder;
pub mod features;
pub mod graph;
pub mod op;
pub mod signature;

pub use builder::DataflowBuilder;
pub use features::{encode_operator, FeatureEncoder, FEATURE_DIM};
pub use graph::{Dataflow, DataflowError, Edge, OpId, SourceId};
pub use op::{
    AggregateClass, AggregateFunction, DataSource, JoinKeyClass, Operator, OperatorKind,
    StaticFeatures, TupleDataType, WindowPolicy, WindowType,
};
pub use signature::GraphSignature;

/// A per-operator parallelism assignment for one deployment of a dataflow.
///
/// Indexed by [`OpId`] position; `degrees[op.index()]` is the parallelism of
/// that operator. Degrees are ≥ 1.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ParallelismAssignment {
    degrees: Vec<u32>,
}

/// A degree vector that cannot form a valid [`ParallelismAssignment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignmentError {
    /// A degree of 0 at the given operator index (degrees are ≥ 1).
    ZeroDegree {
        /// Position of the offending degree.
        index: usize,
    },
}

impl std::fmt::Display for AssignmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssignmentError::ZeroDegree { index } => write!(
                f,
                "parallelism degrees must be >= 1 (degree 0 at operator index {index})"
            ),
        }
    }
}

impl std::error::Error for AssignmentError {}

impl ParallelismAssignment {
    /// Uniform assignment of `p` for every operator of `dataflow`.
    ///
    /// Panics when `p` is 0; use [`Self::try_from_vec`] for a fallible path.
    pub fn uniform(dataflow: &Dataflow, p: u32) -> Self {
        Self::try_from_vec(vec![p; dataflow.num_ops()]).expect("parallelism degrees must be >= 1")
    }

    /// Build from an explicit degree vector (one entry per operator).
    ///
    /// Panics on a zero degree; use [`Self::try_from_vec`] for a fallible path.
    pub fn from_vec(degrees: Vec<u32>) -> Self {
        Self::try_from_vec(degrees).expect("parallelism degrees must be >= 1")
    }

    /// Build from an explicit degree vector, rejecting zero degrees with an
    /// [`AssignmentError`] instead of panicking.
    pub fn try_from_vec(degrees: Vec<u32>) -> Result<Self, AssignmentError> {
        match degrees.iter().position(|&d| d == 0) {
            Some(index) => Err(AssignmentError::ZeroDegree { index }),
            None => Ok(Self { degrees }),
        }
    }

    /// Parallelism of operator `op`.
    pub fn degree(&self, op: OpId) -> u32 {
        self.degrees[op.index()]
    }

    /// Set the parallelism of operator `op`.
    pub fn set_degree(&mut self, op: OpId, p: u32) {
        assert!(p >= 1, "parallelism degrees must be >= 1");
        self.degrees[op.index()] = p;
    }

    /// Number of operators covered by this assignment.
    pub fn len(&self) -> usize {
        self.degrees.len()
    }

    /// True when the assignment covers no operators.
    pub fn is_empty(&self) -> bool {
        self.degrees.is_empty()
    }

    /// Sum of all degrees — the "total parallelism" metric of paper Fig. 6.
    pub fn total(&self) -> u64 {
        self.degrees.iter().map(|&d| u64::from(d)).sum()
    }

    /// Iterate `(OpId, degree)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (OpId, u32)> + '_ {
        self.degrees
            .iter()
            .enumerate()
            .map(|(i, &d)| (OpId::new(i), d))
    }

    /// The raw degree slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.degrees
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_op_flow() -> Dataflow {
        let mut b = DataflowBuilder::new("t");
        let s = b.add_source("src", 1000.0);
        let f = b.add_op("filter", Operator::filter(0.5, 8, 8));
        let m = b.add_op("map", Operator::map(8, 8));
        b.connect_source(s, f);
        b.connect(f, m);
        b.build().unwrap()
    }

    #[test]
    fn uniform_assignment_covers_all_ops() {
        let g = two_op_flow();
        let p = ParallelismAssignment::uniform(&g, 4);
        assert_eq!(p.len(), 2);
        assert_eq!(p.total(), 8);
        for (_, d) in p.iter() {
            assert_eq!(d, 4);
        }
    }

    #[test]
    fn set_degree_roundtrip() {
        let g = two_op_flow();
        let mut p = ParallelismAssignment::uniform(&g, 1);
        let op = g.op_ids().next().unwrap();
        p.set_degree(op, 17);
        assert_eq!(p.degree(op), 17);
        assert_eq!(p.total(), 18);
    }

    #[test]
    #[should_panic(expected = "parallelism degrees must be >= 1")]
    fn zero_degree_rejected() {
        ParallelismAssignment::from_vec(vec![1, 0]);
    }

    #[test]
    fn try_from_vec_reports_offending_index() {
        assert_eq!(
            ParallelismAssignment::try_from_vec(vec![2, 0, 3]),
            Err(AssignmentError::ZeroDegree { index: 1 })
        );
        let ok = ParallelismAssignment::try_from_vec(vec![2, 1, 3]).unwrap();
        assert_eq!(ok.total(), 6);
    }
}
