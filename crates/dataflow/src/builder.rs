//! Fluent construction of [`Dataflow`] graphs.

use crate::graph::{Dataflow, DataflowError, Edge, OpId, SourceId};
use crate::op::{DataSource, Operator};

/// Incrementally assembles a [`Dataflow`]; `build` validates (acyclicity,
/// reachability, no duplicate edges) and freezes the graph.
///
/// ```
/// use streamtune_dataflow::{DataflowBuilder, Operator};
///
/// let mut b = DataflowBuilder::new("example");
/// let src = b.add_source("bids", 1000.0);
/// let filter = b.add_op("filter", Operator::filter(0.5, 32, 32));
/// let sink = b.add_op("sink", Operator::sink(32));
/// b.connect_source(src, filter);
/// b.connect(filter, sink);
/// let flow = b.build().unwrap();
/// assert_eq!(flow.num_ops(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DataflowBuilder {
    name: String,
    ops: Vec<Operator>,
    op_names: Vec<String>,
    sources: Vec<DataSource>,
    edges: Vec<Edge>,
    source_edges: Vec<(SourceId, OpId)>,
}

impl DataflowBuilder {
    /// Start a new builder for a job called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        DataflowBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Add an external source producing `rate` records/second.
    pub fn add_source(&mut self, name: impl Into<String>, rate: f64) -> SourceId {
        let id = SourceId::new(self.sources.len());
        self.sources.push(DataSource::new(name, rate));
        id
    }

    /// Add an operator; returns its id.
    pub fn add_op(&mut self, name: impl Into<String>, op: Operator) -> OpId {
        let id = OpId::new(self.ops.len());
        self.ops.push(op);
        self.op_names.push(name.into());
        id
    }

    /// Connect two operators with a directed edge `from → to`.
    pub fn connect(&mut self, from: OpId, to: OpId) -> &mut Self {
        self.edges.push(Edge { from, to });
        self
    }

    /// Connect a source to a first-level downstream operator.
    pub fn connect_source(&mut self, source: SourceId, to: OpId) -> &mut Self {
        self.source_edges.push((source, to));
        self
    }

    /// Number of operators added so far.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Validate and freeze into a [`Dataflow`].
    pub fn build(self) -> Result<Dataflow, DataflowError> {
        Dataflow::validated(
            self.name,
            self.ops,
            self.op_names,
            self.sources,
            self.edges,
            self.source_edges,
        )
    }
}

/// Build a simple linear chain `source → op_1 → … → op_n`, a shape shared by
/// many PQP "Linear" queries and useful in tests.
pub fn linear_chain(
    name: &str,
    source_rate: f64,
    ops: Vec<(String, Operator)>,
) -> Result<Dataflow, DataflowError> {
    let mut b = DataflowBuilder::new(name);
    let s = b.add_source(format!("{name}-src"), source_rate);
    let mut prev: Option<OpId> = None;
    for (op_name, op) in ops {
        let id = b.add_op(op_name, op);
        match prev {
            None => {
                b.connect_source(s, id);
            }
            Some(p) => {
                b.connect(p, id);
            }
        }
        prev = Some(id);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OperatorKind;

    #[test]
    fn linear_chain_shape() {
        let g = linear_chain(
            "chain",
            500.0,
            vec![
                ("f".into(), Operator::filter(0.5, 8, 8)),
                ("m".into(), Operator::map(8, 8)),
                ("s".into(), Operator::sink(8)),
            ],
        )
        .unwrap();
        assert_eq!(g.num_ops(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.sinks().len(), 1);
        assert_eq!(g.op(g.topo_order()[0]).kind(), OperatorKind::Filter);
    }

    #[test]
    fn empty_build_fails() {
        let b = DataflowBuilder::new("empty");
        assert_eq!(b.build().unwrap_err(), DataflowError::Empty);
    }

    #[test]
    fn builder_num_ops_tracks() {
        let mut b = DataflowBuilder::new("x");
        assert_eq!(b.num_ops(), 0);
        b.add_op("a", Operator::map(8, 8));
        assert_eq!(b.num_ops(), 1);
    }
}
