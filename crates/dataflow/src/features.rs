//! Initial node feature vectors `h_v^(0)` for the GNN encoder.
//!
//! Paper §IV-A, "Initial Feature Vector Construction": categorical features
//! of Table I are one-hot encoded; numeric features are min-max scaled to
//! `[0, 1]`; the single dynamic feature included is the (direct) source
//! rate. Operator parallelism is *excluded* here — it enters later through
//! the FUSE update (Eq. 3).

use crate::graph::{Dataflow, OpId};
use crate::op::{OperatorKind, StaticFeatures};
use serde::{Deserialize, Serialize};

/// One-hot slot counts per categorical feature.
const KIND_SLOTS: usize = OperatorKind::ALL.len(); // 9
const WINDOW_TYPE_SLOTS: usize = 3;
const WINDOW_POLICY_SLOTS: usize = 3;
const JOIN_KEY_SLOTS: usize = 4;
const AGG_CLASS_SLOTS: usize = 4;
const AGG_KEY_SLOTS: usize = 4;
const AGG_FUNC_SLOTS: usize = 6;
const TUPLE_TYPE_SLOTS: usize = 4;
/// Numeric features: window length, sliding length, tuple width in,
/// tuple width out, source rate.
const NUMERIC_SLOTS: usize = 5;

/// Total dimensionality of the encoded operator feature vector.
pub const FEATURE_DIM: usize = KIND_SLOTS
    + WINDOW_TYPE_SLOTS
    + WINDOW_POLICY_SLOTS
    + JOIN_KEY_SLOTS
    + AGG_CLASS_SLOTS
    + AGG_KEY_SLOTS
    + AGG_FUNC_SLOTS
    + TUPLE_TYPE_SLOTS
    + NUMERIC_SLOTS;

/// Min-max normalization bounds for the numeric features (paper uses
/// min-max uniform scaling to `[0,1]`, citing LlamaTune's normalization).
///
/// Bounds are corpus-level constants so that encodings are comparable across
/// jobs and clusters; values outside the bounds are clamped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureEncoder {
    /// Upper bound for window length (seconds or records).
    pub max_window_length: f64,
    /// Upper bound for sliding length.
    pub max_sliding_length: f64,
    /// Upper bound for tuple widths (bytes).
    pub max_tuple_width: f64,
    /// Upper bound for source rate (records/second).
    pub max_source_rate: f64,
}

impl Default for FeatureEncoder {
    fn default() -> Self {
        FeatureEncoder {
            max_window_length: 600.0,
            max_sliding_length: 600.0,
            max_tuple_width: 512.0,
            max_source_rate: 10_000_000.0,
        }
    }
}

impl FeatureEncoder {
    /// Clamp-and-scale a numeric value to `[0,1]`.
    fn scale(value: f64, max: f64) -> f64 {
        if max <= 0.0 {
            return 0.0;
        }
        (value / max).clamp(0.0, 1.0)
    }

    /// Encode one operator's static features plus its direct source rate.
    pub fn encode(&self, f: &StaticFeatures, source_rate: f64) -> Vec<f64> {
        let mut v = vec![0.0; FEATURE_DIM];
        let mut base = 0;
        v[base + f.kind.index()] = 1.0;
        base += KIND_SLOTS;
        v[base + f.window_type.index()] = 1.0;
        base += WINDOW_TYPE_SLOTS;
        v[base + f.window_policy.index()] = 1.0;
        base += WINDOW_POLICY_SLOTS;
        v[base + f.join_key_class.index()] = 1.0;
        base += JOIN_KEY_SLOTS;
        v[base + f.aggregate_class.index()] = 1.0;
        base += AGG_CLASS_SLOTS;
        v[base + f.aggregate_key_class.index()] = 1.0;
        base += AGG_KEY_SLOTS;
        v[base + f.aggregate_function.index()] = 1.0;
        base += AGG_FUNC_SLOTS;
        v[base + f.tuple_data_type.index()] = 1.0;
        base += TUPLE_TYPE_SLOTS;
        v[base] = Self::scale(f.window_length, self.max_window_length);
        v[base + 1] = Self::scale(f.sliding_length, self.max_sliding_length);
        v[base + 2] = Self::scale(f.tuple_width_in, self.max_tuple_width);
        v[base + 3] = Self::scale(f.tuple_width_out, self.max_tuple_width);
        v[base + 4] = Self::scale(source_rate, self.max_source_rate);
        v
    }

    /// Encode every operator of `flow`, indexed by `OpId` position.
    pub fn encode_dataflow(&self, flow: &Dataflow) -> Vec<Vec<f64>> {
        flow.op_ids()
            .map(|id| self.encode(&flow.op(id).features, flow.direct_source_rate(id)))
            .collect()
    }
}

/// Encode a single operator of `flow` with the default encoder bounds.
pub fn encode_operator(flow: &Dataflow, id: OpId) -> Vec<f64> {
    FeatureEncoder::default().encode(&flow.op(id).features, flow.direct_source_rate(id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DataflowBuilder;
    use crate::op::{
        AggregateClass, AggregateFunction, JoinKeyClass, Operator, WindowPolicy, WindowType,
    };

    #[test]
    fn dimension_is_consistent() {
        let f = StaticFeatures::stateless(OperatorKind::Map, 1.0, 8, 8);
        let v = FeatureEncoder::default().encode(&f, 0.0);
        assert_eq!(v.len(), FEATURE_DIM);
    }

    #[test]
    fn one_hot_sums() {
        // Exactly 8 one-hot groups → exactly 8 ones among categorical slots.
        let op = Operator::window_aggregate(
            AggregateFunction::Avg,
            AggregateClass::Float,
            JoinKeyClass::Int,
            WindowType::Sliding,
            WindowPolicy::Time,
            60.0,
            10.0,
            0.01,
        );
        let v = FeatureEncoder::default().encode(&op.features, 0.0);
        let categorical = &v[..FEATURE_DIM - NUMERIC_SLOTS];
        let ones = categorical.iter().filter(|&&x| x == 1.0).count();
        assert_eq!(ones, 8);
        assert!(categorical.iter().all(|&x| x == 0.0 || x == 1.0));
    }

    #[test]
    fn numeric_features_in_unit_interval() {
        let op = Operator::window_join(
            JoinKeyClass::Composite,
            WindowType::Tumbling,
            WindowPolicy::Time,
            1e9, // far above bound → clamped
            50.0,
            2.0,
        );
        let v = FeatureEncoder::default().encode(&op.features, 5e8);
        for &x in &v[FEATURE_DIM - NUMERIC_SLOTS..] {
            assert!((0.0..=1.0).contains(&x), "numeric feature {x} out of range");
        }
        // window length clamps to exactly 1.0
        assert_eq!(v[FEATURE_DIM - NUMERIC_SLOTS], 1.0);
    }

    #[test]
    fn source_rate_only_for_first_level() {
        let mut b = DataflowBuilder::new("t");
        let s = b.add_source("src", 1000.0);
        let a = b.add_op("a", Operator::map(8, 8));
        let c = b.add_op("b", Operator::sink(8));
        b.connect_source(s, a);
        b.connect(a, c);
        let g = b.build().unwrap();
        let enc = FeatureEncoder::default().encode_dataflow(&g);
        let rate_slot = FEATURE_DIM - 1;
        assert!(
            enc[0][rate_slot] > 0.0,
            "first-level op sees the source rate"
        );
        assert_eq!(enc[1][rate_slot], 0.0, "downstream op has zero source rate");
    }

    #[test]
    fn different_kinds_differ() {
        let a = FeatureEncoder::default().encode(
            &StaticFeatures::stateless(OperatorKind::Map, 1.0, 8, 8),
            0.0,
        );
        let b = FeatureEncoder::default().encode(
            &StaticFeatures::stateless(OperatorKind::Filter, 1.0, 8, 8),
            0.0,
        );
        assert_ne!(a, b);
    }
}
