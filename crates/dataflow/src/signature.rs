//! Cheap structural signatures for dataflow DAGs.
//!
//! The GED-based clustering (paper §IV-C) repeatedly compares graphs; a
//! signature gives an O(1) equality pre-check and a coarse distance proxy
//! used to order candidates before exact GED verification (the standard
//! filtering-and-verification pattern the paper cites).

use crate::graph::Dataflow;
use crate::op::OperatorKind;
use serde::{Deserialize, Serialize};

/// A canonical, order-independent structural summary of a dataflow DAG.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GraphSignature {
    /// Number of operators.
    pub num_ops: usize,
    /// Number of operator→operator edges.
    pub num_edges: usize,
    /// Sorted multiset of operator kinds.
    pub kinds: Vec<OperatorKind>,
    /// Sorted multiset of (in-degree, out-degree) pairs.
    pub degrees: Vec<(u8, u8)>,
    /// Sorted multiset of (upstream kind, downstream kind) edge labels.
    pub edge_kinds: Vec<(OperatorKind, OperatorKind)>,
}

impl GraphSignature {
    /// Compute the signature of `flow`.
    pub fn of(flow: &Dataflow) -> Self {
        let kinds = flow.kind_multiset();
        let mut degrees: Vec<(u8, u8)> = flow
            .op_ids()
            .map(|o| {
                (
                    u8::try_from(flow.preds(o).len().min(255)).unwrap(),
                    u8::try_from(flow.succs(o).len().min(255)).unwrap(),
                )
            })
            .collect();
        degrees.sort();
        let mut edge_kinds: Vec<(OperatorKind, OperatorKind)> = flow
            .edges()
            .iter()
            .map(|e| (flow.op(e.from).kind(), flow.op(e.to).kind()))
            .collect();
        edge_kinds.sort();
        GraphSignature {
            num_ops: flow.num_ops(),
            num_edges: flow.num_edges(),
            kinds,
            degrees,
            edge_kinds,
        }
    }

    /// A cheap lower bound on the graph edit distance between two graphs
    /// with these signatures (label-multiset bound): any GED must pay at
    /// least the node-count difference plus the label-multiset mismatch, and
    /// at least the edge-count difference.
    pub fn ged_lower_bound(&self, other: &GraphSignature) -> usize {
        let node_diff = self.num_ops.abs_diff(other.num_ops);
        let label_mismatch = multiset_mismatch(&self.kinds, &other.kinds);
        // Substituting a label costs 1; inserting/deleting a node costs 1 and
        // also fixes one label mismatch, so the node bound is:
        let node_bound = node_diff.max(
            label_mismatch
                .div_ceil(2)
                .max(label_mismatch - node_diff.min(label_mismatch)),
        );
        let edge_bound = self.num_edges.abs_diff(other.num_edges);
        node_bound.max(node_diff) + edge_bound
    }
}

/// Number of elements that appear in one sorted multiset but not the other
/// (size of the symmetric difference), divided by... no: we return the count
/// of unmatched elements on the larger side after maximal matching.
fn multiset_mismatch<T: Ord>(a: &[T], b: &[T]) -> usize {
    let mut i = 0;
    let mut j = 0;
    let mut matched = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                matched += 1;
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    a.len().max(b.len()) - matched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{linear_chain, DataflowBuilder};
    use crate::op::Operator;

    fn chain(n: usize) -> Dataflow {
        let ops = (0..n)
            .map(|i| {
                if i + 1 == n {
                    (format!("op{i}"), Operator::sink(8))
                } else {
                    (format!("op{i}"), Operator::map(8, 8))
                }
            })
            .collect();
        linear_chain(&format!("chain{n}"), 100.0, ops).unwrap()
    }

    #[test]
    fn identical_graphs_have_equal_signature() {
        assert_eq!(GraphSignature::of(&chain(4)), GraphSignature::of(&chain(4)));
    }

    #[test]
    fn node_count_difference_bounds_ged() {
        let s3 = GraphSignature::of(&chain(3));
        let s5 = GraphSignature::of(&chain(5));
        // chain5 → chain3 needs at least 2 node deletions + 2 edge deletions.
        assert!(s3.ged_lower_bound(&s5) >= 2);
        assert_eq!(s3.ged_lower_bound(&s5), s5.ged_lower_bound(&s3));
    }

    #[test]
    fn label_mismatch_detected() {
        let mut b = DataflowBuilder::new("x");
        let s = b.add_source("s", 1.0);
        let a = b.add_op("a", Operator::filter(0.5, 8, 8));
        let c = b.add_op("b", Operator::sink(8));
        b.connect_source(s, a);
        b.connect(a, c);
        let filter_flow = b.build().unwrap();

        let map_flow = chain(2);
        let lb = GraphSignature::of(&filter_flow).ged_lower_bound(&GraphSignature::of(&map_flow));
        assert!(lb >= 1, "one label substitution needed, lb = {lb}");
    }

    #[test]
    fn multiset_mismatch_basics() {
        assert_eq!(multiset_mismatch::<u32>(&[], &[]), 0);
        assert_eq!(multiset_mismatch(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(multiset_mismatch(&[1, 2, 3], &[1, 2, 4]), 1);
        assert_eq!(multiset_mismatch(&[1, 1, 1], &[1]), 2);
    }
}
