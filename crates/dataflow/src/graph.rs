//! The logical dataflow DAG: operators, sources, edges, validation and
//! topological traversal.

use crate::op::{DataSource, Operator, OperatorKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an operator within one [`Dataflow`] (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpId(u32);

impl OpId {
    /// Construct from a dense index.
    pub fn new(index: usize) -> Self {
        OpId(u32::try_from(index).expect("operator index fits u32"))
    }

    /// Dense index of this operator.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "O{}", self.0)
    }
}

/// Identifier of an external data source within one [`Dataflow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SourceId(u32);

impl SourceId {
    /// Construct from a dense index.
    pub fn new(index: usize) -> Self {
        SourceId(u32::try_from(index).expect("source index fits u32"))
    }

    /// Dense index of this source.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A directed operator→operator edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Upstream operator.
    pub from: OpId,
    /// Downstream operator.
    pub to: OpId,
}

/// Errors produced while validating a dataflow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataflowError {
    /// The operator graph contains a directed cycle.
    Cyclic,
    /// An edge references an operator id that does not exist.
    DanglingEdge,
    /// A source edge references a missing source or operator.
    DanglingSourceEdge,
    /// The dataflow has no operators.
    Empty,
    /// An operator has no path from any source (disconnected input).
    UnreachableOperator(OpId),
    /// Duplicate edge between the same pair of operators.
    DuplicateEdge(OpId, OpId),
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataflowError::Cyclic => write!(f, "operator graph contains a cycle"),
            DataflowError::DanglingEdge => write!(f, "edge references unknown operator"),
            DataflowError::DanglingSourceEdge => {
                write!(f, "source edge references unknown endpoint")
            }
            DataflowError::Empty => write!(f, "dataflow has no operators"),
            DataflowError::UnreachableOperator(o) => {
                write!(f, "operator {o} is unreachable from any source")
            }
            DataflowError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
        }
    }
}

impl std::error::Error for DataflowError {}

/// A validated logical dataflow DAG (paper §II-A, Fig. 1).
///
/// Operators are stored densely and addressed by [`OpId`]. External sources
/// feed *first-level downstream operators* through `source_edges`; source
/// rates are dynamic features, mutable via [`Dataflow::set_source_rate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataflow {
    name: String,
    ops: Vec<Operator>,
    op_names: Vec<String>,
    sources: Vec<DataSource>,
    edges: Vec<Edge>,
    source_edges: Vec<(SourceId, OpId)>,
    // Cached adjacency (rebuilt on construction).
    preds: Vec<Vec<OpId>>,
    succs: Vec<Vec<OpId>>,
    topo: Vec<OpId>,
}

impl Dataflow {
    /// Validate and construct. Called by [`crate::DataflowBuilder::build`].
    pub(crate) fn validated(
        name: String,
        ops: Vec<Operator>,
        op_names: Vec<String>,
        sources: Vec<DataSource>,
        edges: Vec<Edge>,
        source_edges: Vec<(SourceId, OpId)>,
    ) -> Result<Self, DataflowError> {
        if ops.is_empty() {
            return Err(DataflowError::Empty);
        }
        let n = ops.len();
        for e in &edges {
            if e.from.index() >= n || e.to.index() >= n {
                return Err(DataflowError::DanglingEdge);
            }
        }
        {
            let mut seen = std::collections::HashSet::new();
            for e in &edges {
                if !seen.insert((e.from, e.to)) {
                    return Err(DataflowError::DuplicateEdge(e.from, e.to));
                }
            }
        }
        for &(s, o) in &source_edges {
            if s.index() >= sources.len() || o.index() >= n {
                return Err(DataflowError::DanglingSourceEdge);
            }
        }

        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for e in &edges {
            succs[e.from.index()].push(e.to);
            preds[e.to.index()].push(e.from);
        }

        // Kahn's algorithm: topological order + cycle detection.
        let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut queue: Vec<OpId> = (0..n).filter(|&i| indeg[i] == 0).map(OpId::new).collect();
        queue.sort();
        let mut topo = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            topo.push(u);
            for &v in &succs[u.index()] {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    queue.push(v);
                }
            }
        }
        if topo.len() != n {
            return Err(DataflowError::Cyclic);
        }

        // Reachability from sources: every operator must (transitively)
        // receive data, otherwise its input rate is undefined.
        let mut reachable = vec![false; n];
        let mut stack: Vec<OpId> = source_edges.iter().map(|&(_, o)| o).collect();
        while let Some(u) = stack.pop() {
            if reachable[u.index()] {
                continue;
            }
            reachable[u.index()] = true;
            for &v in &succs[u.index()] {
                stack.push(v);
            }
        }
        if let Some(i) = reachable.iter().position(|&r| !r) {
            return Err(DataflowError::UnreachableOperator(OpId::new(i)));
        }

        Ok(Dataflow {
            name,
            ops,
            op_names,
            sources,
            edges,
            source_edges,
            preds,
            succs,
            topo,
        })
    }

    /// Name of the streaming job.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of operators.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of operator→operator edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of external sources.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// Operator by id.
    pub fn op(&self, id: OpId) -> &Operator {
        &self.ops[id.index()]
    }

    /// Operator name by id.
    pub fn op_name(&self, id: OpId) -> &str {
        &self.op_names[id.index()]
    }

    /// Iterate operator ids in dense order.
    pub fn op_ids(&self) -> impl Iterator<Item = OpId> + '_ {
        (0..self.ops.len()).map(OpId::new)
    }

    /// All operators with ids.
    pub fn ops(&self) -> impl Iterator<Item = (OpId, &Operator)> + '_ {
        self.ops.iter().enumerate().map(|(i, o)| (OpId::new(i), o))
    }

    /// All operator→operator edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// All (source, first-level operator) edges.
    pub fn source_edges(&self) -> &[(SourceId, OpId)] {
        &self.source_edges
    }

    /// The external sources.
    pub fn sources(&self) -> &[DataSource] {
        &self.sources
    }

    /// Source by id.
    pub fn source(&self, id: SourceId) -> &DataSource {
        &self.sources[id.index()]
    }

    /// Update the rate of one source (records/second).
    pub fn set_source_rate(&mut self, id: SourceId, rate: f64) {
        assert!(rate >= 0.0, "source rate must be non-negative");
        self.sources[id.index()].rate = rate;
    }

    /// Scale every source to `unit * multiplier` where `unit` is the
    /// per-source base rate unit (paper Table II); convenience for the
    /// periodic pattern of §V-A.
    pub fn set_all_source_rates(&mut self, rates: &[f64]) {
        assert_eq!(rates.len(), self.sources.len());
        for (s, &r) in self.sources.iter_mut().zip(rates) {
            assert!(r >= 0.0);
            s.rate = r;
        }
    }

    /// Upstream operators of `id`.
    pub fn preds(&self, id: OpId) -> &[OpId] {
        &self.preds[id.index()]
    }

    /// Downstream operators of `id`.
    pub fn succs(&self, id: OpId) -> &[OpId] {
        &self.succs[id.index()]
    }

    /// Operators in topological (upstream→downstream) order — the
    /// recommendation order of paper Algorithm 2, line 6.
    pub fn topo_order(&self) -> &[OpId] {
        &self.topo
    }

    /// Total source rate feeding operator `id` directly (0 for operators
    /// that are not first-level downstream of any source). This is the
    /// dynamic "source rate" node feature of §IV-A.
    pub fn direct_source_rate(&self, id: OpId) -> f64 {
        self.source_edges
            .iter()
            .filter(|&&(_, o)| o == id)
            .map(|&(s, _)| self.sources[s.index()].rate)
            .sum()
    }

    /// Whether `id` is a first-level downstream operator (receives data
    /// directly from a source; paper §II-A).
    pub fn is_first_level(&self, id: OpId) -> bool {
        self.source_edges.iter().any(|&(_, o)| o == id)
    }

    /// Sum of all source rates.
    pub fn total_source_rate(&self) -> f64 {
        self.sources.iter().map(|s| s.rate).sum()
    }

    /// Multiset of operator kinds, sorted — used by GED lower bounds.
    pub fn kind_multiset(&self) -> Vec<OperatorKind> {
        let mut v: Vec<OperatorKind> = self.ops.iter().map(|o| o.kind()).collect();
        v.sort();
        v
    }

    /// Sinks: operators with no downstream operators.
    pub fn sinks(&self) -> Vec<OpId> {
        self.op_ids()
            .filter(|&o| self.succs(o).is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DataflowBuilder;
    use crate::op::Operator;

    fn diamond() -> Dataflow {
        // src -> a -> {b, c} -> d
        let mut b = DataflowBuilder::new("diamond");
        let s = b.add_source("src", 100.0);
        let a = b.add_op("a", Operator::map(8, 8));
        let x = b.add_op("b", Operator::filter(0.5, 8, 8));
        let y = b.add_op("c", Operator::filter(0.2, 8, 8));
        let d = b.add_op("d", Operator::sink(8));
        b.connect_source(s, a);
        b.connect(a, x);
        b.connect(a, y);
        b.connect(x, d);
        b.connect(y, d);
        b.build().unwrap()
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = diamond();
        let pos: Vec<usize> = {
            let mut pos = vec![0; g.num_ops()];
            for (i, &o) in g.topo_order().iter().enumerate() {
                pos[o.index()] = i;
            }
            pos
        };
        for e in g.edges() {
            assert!(pos[e.from.index()] < pos[e.to.index()]);
        }
    }

    #[test]
    fn cycle_is_rejected() {
        let mut b = DataflowBuilder::new("cyc");
        let s = b.add_source("s", 1.0);
        let a = b.add_op("a", Operator::map(8, 8));
        let c = b.add_op("b", Operator::map(8, 8));
        b.connect_source(s, a);
        b.connect(a, c);
        b.connect(c, a);
        assert_eq!(b.build().unwrap_err(), DataflowError::Cyclic);
    }

    #[test]
    fn unreachable_operator_rejected() {
        let mut b = DataflowBuilder::new("unreach");
        let s = b.add_source("s", 1.0);
        let a = b.add_op("a", Operator::map(8, 8));
        let _orphan = b.add_op("orphan", Operator::map(8, 8));
        b.connect_source(s, a);
        assert!(matches!(
            b.build().unwrap_err(),
            DataflowError::UnreachableOperator(_)
        ));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut b = DataflowBuilder::new("dup");
        let s = b.add_source("s", 1.0);
        let a = b.add_op("a", Operator::map(8, 8));
        let c = b.add_op("b", Operator::map(8, 8));
        b.connect_source(s, a);
        b.connect(a, c);
        b.connect(a, c);
        assert!(matches!(
            b.build().unwrap_err(),
            DataflowError::DuplicateEdge(_, _)
        ));
    }

    #[test]
    fn first_level_and_source_rates() {
        let g = diamond();
        let first: Vec<OpId> = g.op_ids().filter(|&o| g.is_first_level(o)).collect();
        assert_eq!(first.len(), 1);
        assert_eq!(g.direct_source_rate(first[0]), 100.0);
        let non_first = g.op_ids().find(|&o| !g.is_first_level(o)).unwrap();
        assert_eq!(g.direct_source_rate(non_first), 0.0);
    }

    #[test]
    fn set_source_rate_updates_total() {
        let mut g = diamond();
        g.set_source_rate(SourceId::new(0), 500.0);
        assert_eq!(g.total_source_rate(), 500.0);
    }

    #[test]
    fn sinks_found() {
        let g = diamond();
        let sinks = g.sinks();
        assert_eq!(sinks.len(), 1);
        assert_eq!(g.op_name(sinks[0]), "d");
    }
}
