//! Operator kinds and the static feature set of paper Table I.

use serde::{Deserialize, Serialize};

/// The computational kind of a dataflow operator.
///
/// Nodes of the logical DAG (paper Fig. 1). The set covers every operator
/// used by the Nexmark queries (Q1/Q2/Q3/Q5/Q8) and the PQP templates of the
/// evaluation (§V-A), plus `Sink` as a terminal no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OperatorKind {
    /// Stateless 1:1 transformation (Nexmark Q1).
    Map,
    /// Stateless 1:N transformation.
    FlatMap,
    /// Stateless predicate (Nexmark Q2).
    Filter,
    /// Stateful record-at-a-time two-input incremental join (Nexmark Q3).
    IncrementalJoin,
    /// Windowed two-input join (Nexmark Q5/Q8, PQP joins).
    WindowJoin,
    /// Windowed aggregation.
    WindowAggregate,
    /// Unwindowed (running) aggregation.
    Aggregate,
    /// Key-based repartitioning.
    KeyBy,
    /// Terminal sink (writes results out).
    Sink,
}

impl OperatorKind {
    /// All kinds, in one-hot encoding order.
    pub const ALL: [OperatorKind; 9] = [
        OperatorKind::Map,
        OperatorKind::FlatMap,
        OperatorKind::Filter,
        OperatorKind::IncrementalJoin,
        OperatorKind::WindowJoin,
        OperatorKind::WindowAggregate,
        OperatorKind::Aggregate,
        OperatorKind::KeyBy,
        OperatorKind::Sink,
    ];

    /// Index of this kind within [`OperatorKind::ALL`].
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&k| k == self)
            .expect("kind in ALL")
    }

    /// Whether the operator keeps state across records.
    pub fn is_stateful(self) -> bool {
        matches!(
            self,
            OperatorKind::IncrementalJoin
                | OperatorKind::WindowJoin
                | OperatorKind::WindowAggregate
                | OperatorKind::Aggregate
        )
    }

    /// Whether the operator consumes two upstream inputs.
    pub fn is_binary(self) -> bool {
        matches!(
            self,
            OperatorKind::IncrementalJoin | OperatorKind::WindowJoin
        )
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            OperatorKind::Map => "map",
            OperatorKind::FlatMap => "flatmap",
            OperatorKind::Filter => "filter",
            OperatorKind::IncrementalJoin => "inc-join",
            OperatorKind::WindowJoin => "win-join",
            OperatorKind::WindowAggregate => "win-agg",
            OperatorKind::Aggregate => "agg",
            OperatorKind::KeyBy => "keyby",
            OperatorKind::Sink => "sink",
        }
    }
}

/// Window shifting strategy (Table I "Window Type").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum WindowType {
    /// The operator is not windowed.
    #[default]
    None,
    /// Non-overlapping fixed windows.
    Tumbling,
    /// Overlapping windows advancing by a slide interval.
    Sliding,
}

impl WindowType {
    /// One-hot index (3 slots).
    pub fn index(self) -> usize {
        match self {
            WindowType::None => 0,
            WindowType::Tumbling => 1,
            WindowType::Sliding => 2,
        }
    }
}

/// Windowing strategy (Table I "Window Policy").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum WindowPolicy {
    /// Not windowed.
    #[default]
    None,
    /// Windows close after a fixed record count.
    Count,
    /// Windows close after a fixed time span.
    Time,
}

impl WindowPolicy {
    /// One-hot index (3 slots).
    pub fn index(self) -> usize {
        match self {
            WindowPolicy::None => 0,
            WindowPolicy::Count => 1,
            WindowPolicy::Time => 2,
        }
    }
}

/// Join key data type (Table I "Join Key Class").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum JoinKeyClass {
    /// Not a join.
    #[default]
    None,
    /// Integer key.
    Int,
    /// String key.
    String,
    /// Composite (multi-column) key.
    Composite,
}

impl JoinKeyClass {
    /// One-hot index (4 slots).
    pub fn index(self) -> usize {
        match self {
            JoinKeyClass::None => 0,
            JoinKeyClass::Int => 1,
            JoinKeyClass::String => 2,
            JoinKeyClass::Composite => 3,
        }
    }
}

/// Aggregation value data type (Table I "Aggregate Class").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AggregateClass {
    /// Not an aggregation.
    #[default]
    None,
    /// Integer values.
    Int,
    /// Floating point values.
    Float,
    /// String values.
    String,
}

impl AggregateClass {
    /// One-hot index (4 slots).
    pub fn index(self) -> usize {
        match self {
            AggregateClass::None => 0,
            AggregateClass::Int => 1,
            AggregateClass::Float => 2,
            AggregateClass::String => 3,
        }
    }
}

/// Aggregation function (Table I "Aggregate Function").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AggregateFunction {
    /// Not an aggregation.
    #[default]
    None,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Arithmetic mean.
    Avg,
    /// Sum.
    Sum,
    /// Count.
    Count,
}

impl AggregateFunction {
    /// One-hot index (6 slots).
    pub fn index(self) -> usize {
        match self {
            AggregateFunction::None => 0,
            AggregateFunction::Min => 1,
            AggregateFunction::Max => 2,
            AggregateFunction::Avg => 3,
            AggregateFunction::Sum => 4,
            AggregateFunction::Count => 5,
        }
    }
}

/// Tuple payload type (Table I "Tuple Data Type").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TupleDataType {
    /// Mixed/row tuples.
    #[default]
    Row,
    /// Primitive numeric tuples.
    Numeric,
    /// Text tuples.
    Text,
    /// Nested/JSON-like tuples.
    Nested,
}

impl TupleDataType {
    /// One-hot index (4 slots).
    pub fn index(self) -> usize {
        match self {
            TupleDataType::Row => 0,
            TupleDataType::Numeric => 1,
            TupleDataType::Text => 2,
            TupleDataType::Nested => 3,
        }
    }
}

/// The static (transferable, execution-invariant) features of a dataflow
/// operator — exactly the rows of paper Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticFeatures {
    /// Type of operator (categorical).
    pub kind: OperatorKind,
    /// Shifting strategy (tumbling/sliding).
    pub window_type: WindowType,
    /// Windowing strategy (count/time).
    pub window_policy: WindowPolicy,
    /// Size of the window (records for count windows, seconds for time windows).
    pub window_length: f64,
    /// Size of the sliding interval (same unit as `window_length`).
    pub sliding_length: f64,
    /// Join key data type.
    pub join_key_class: JoinKeyClass,
    /// Aggregation value data type.
    pub aggregate_class: AggregateClass,
    /// Aggregation key data type.
    pub aggregate_key_class: JoinKeyClass,
    /// Aggregation function.
    pub aggregate_function: AggregateFunction,
    /// Input tuple width (bytes).
    pub tuple_width_in: f64,
    /// Output tuple width (bytes).
    pub tuple_width_out: f64,
    /// Type of tuple payload.
    pub tuple_data_type: TupleDataType,
    /// Expected output records per input record.
    ///
    /// Selectivity drives rate propagation in the simulator. It is *not*
    /// encoded as a tuner-visible feature in the paper (tuners observe only
    /// rates), but it is part of the logical query definition.
    pub selectivity: f64,
}

impl StaticFeatures {
    /// Features for a plain stateless operator of `kind`.
    pub fn stateless(kind: OperatorKind, selectivity: f64, width_in: u32, width_out: u32) -> Self {
        StaticFeatures {
            kind,
            window_type: WindowType::None,
            window_policy: WindowPolicy::None,
            window_length: 0.0,
            sliding_length: 0.0,
            join_key_class: JoinKeyClass::None,
            aggregate_class: AggregateClass::None,
            aggregate_key_class: JoinKeyClass::None,
            aggregate_function: AggregateFunction::None,
            tuple_width_in: f64::from(width_in),
            tuple_width_out: f64::from(width_out),
            tuple_data_type: TupleDataType::Row,
            selectivity,
        }
    }
}

/// A dataflow operator: a named node of the logical DAG plus its Table I
/// static features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operator {
    /// Static, context-independent features (Table I).
    pub features: StaticFeatures,
}

impl Operator {
    /// Construct from explicit features.
    pub fn new(features: StaticFeatures) -> Self {
        Operator { features }
    }

    /// The operator kind.
    pub fn kind(&self) -> OperatorKind {
        self.features.kind
    }

    /// Selectivity (output records per input record).
    pub fn selectivity(&self) -> f64 {
        self.features.selectivity
    }

    /// Stateless map (1:1).
    pub fn map(width_in: u32, width_out: u32) -> Self {
        Operator::new(StaticFeatures::stateless(
            OperatorKind::Map,
            1.0,
            width_in,
            width_out,
        ))
    }

    /// Stateless flatmap with output fan-out `selectivity`.
    pub fn flatmap(selectivity: f64, width_in: u32, width_out: u32) -> Self {
        Operator::new(StaticFeatures::stateless(
            OperatorKind::FlatMap,
            selectivity,
            width_in,
            width_out,
        ))
    }

    /// Filter passing a `selectivity` fraction of records.
    pub fn filter(selectivity: f64, width_in: u32, width_out: u32) -> Self {
        Operator::new(StaticFeatures::stateless(
            OperatorKind::Filter,
            selectivity,
            width_in,
            width_out,
        ))
    }

    /// Key-based repartitioning.
    pub fn key_by(width: u32) -> Self {
        Operator::new(StaticFeatures::stateless(
            OperatorKind::KeyBy,
            1.0,
            width,
            width,
        ))
    }

    /// Terminal sink.
    pub fn sink(width: u32) -> Self {
        Operator::new(StaticFeatures::stateless(
            OperatorKind::Sink,
            1.0,
            width,
            width,
        ))
    }

    /// Record-at-a-time incremental join (Nexmark Q3 style).
    pub fn incremental_join(key: JoinKeyClass, selectivity: f64, width_out: u32) -> Self {
        let mut f =
            StaticFeatures::stateless(OperatorKind::IncrementalJoin, selectivity, 64, width_out);
        f.join_key_class = key;
        Operator::new(f)
    }

    /// Windowed join with explicit window configuration.
    pub fn window_join(
        key: JoinKeyClass,
        window_type: WindowType,
        policy: WindowPolicy,
        window_length: f64,
        sliding_length: f64,
        selectivity: f64,
    ) -> Self {
        let mut f = StaticFeatures::stateless(OperatorKind::WindowJoin, selectivity, 64, 96);
        f.join_key_class = key;
        f.window_type = window_type;
        f.window_policy = policy;
        f.window_length = window_length;
        f.sliding_length = sliding_length;
        Operator::new(f)
    }

    /// Windowed aggregation.
    #[allow(clippy::too_many_arguments)] // mirrors the Table I feature list
    pub fn window_aggregate(
        func: AggregateFunction,
        class: AggregateClass,
        key: JoinKeyClass,
        window_type: WindowType,
        policy: WindowPolicy,
        window_length: f64,
        sliding_length: f64,
        selectivity: f64,
    ) -> Self {
        let mut f = StaticFeatures::stateless(OperatorKind::WindowAggregate, selectivity, 48, 32);
        f.aggregate_function = func;
        f.aggregate_class = class;
        f.aggregate_key_class = key;
        f.window_type = window_type;
        f.window_policy = policy;
        f.window_length = window_length;
        f.sliding_length = sliding_length;
        Operator::new(f)
    }

    /// Running (unwindowed) aggregation.
    pub fn aggregate(
        func: AggregateFunction,
        class: AggregateClass,
        key: JoinKeyClass,
        selectivity: f64,
    ) -> Self {
        let mut f = StaticFeatures::stateless(OperatorKind::Aggregate, selectivity, 48, 32);
        f.aggregate_function = func;
        f.aggregate_class = class;
        f.aggregate_key_class = key;
        Operator::new(f)
    }
}

/// An external data source feeding the dataflow (paper §II-A "Data Sources &
/// Source Rates"). Sources are not tunable operators; their rate is a
/// dynamic input controlled by the environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataSource {
    /// Human-readable name (e.g. "bids").
    pub name: String,
    /// Records per second currently produced by this source.
    pub rate: f64,
}

impl DataSource {
    /// New source with the given name and rate.
    pub fn new(name: impl Into<String>, rate: f64) -> Self {
        DataSource {
            name: name.into(),
            rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indices_are_unique_and_dense() {
        let mut seen = vec![false; OperatorKind::ALL.len()];
        for k in OperatorKind::ALL {
            let i = k.index();
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn binary_kinds_are_stateful() {
        for k in OperatorKind::ALL {
            if k.is_binary() {
                assert!(k.is_stateful(), "{k:?} binary implies stateful");
            }
        }
    }

    #[test]
    fn stateless_helper_zeroes_window_fields() {
        let f = StaticFeatures::stateless(OperatorKind::Filter, 0.3, 16, 16);
        assert_eq!(f.window_type, WindowType::None);
        assert_eq!(f.window_length, 0.0);
        assert_eq!(f.selectivity, 0.3);
    }

    #[test]
    fn window_join_carries_window_config() {
        let op = Operator::window_join(
            JoinKeyClass::Int,
            WindowType::Sliding,
            WindowPolicy::Time,
            10.0,
            2.0,
            0.8,
        );
        assert_eq!(op.features.window_type, WindowType::Sliding);
        assert_eq!(op.features.window_length, 10.0);
        assert_eq!(op.features.sliding_length, 2.0);
        assert!(op.kind().is_binary());
    }

    #[test]
    fn one_hot_indices_within_bounds() {
        assert!(WindowType::Sliding.index() < 3);
        assert!(WindowPolicy::Time.index() < 3);
        assert!(JoinKeyClass::Composite.index() < 4);
        assert!(AggregateClass::String.index() < 4);
        assert!(AggregateFunction::Count.index() < 6);
        assert!(TupleDataType::Nested.index() < 4);
    }
}
