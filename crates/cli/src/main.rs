//! `streamtune` — command-line interface for the StreamTune reproduction.
//!
//! Subcommands:
//!
//! * `pretrain --out bundle.json [--jobs N] [--seed S] [--engine flink|timely]`
//!   — generate a history corpus on the simulated cluster and pre-train the
//!   clustered GNN encoders; writes the serialized [`Pretrained`] bundle.
//! * `tune --bundle bundle.json --query <name> [--multiplier M]
//!   [--backend sim|replay:<trace.json>|flink:<url>|ingest:<dump.jsonl>]
//!   [--record <trace.json>]`
//!   — load a bundle and tune a named workload online, printing the
//!   per-operator recommendation. `--backend replay:<path>` drives the
//!   tuner from a recorded trace instead of the simulator; `flink:<url>`
//!   tunes a live job through the Flink REST connector; `ingest:<path>`
//!   admits the deployment recorded in a JSONL metrics dump; `--record`
//!   captures the session into a trace file for later replay.
//! * `ingest --input dump.jsonl [--out trace.json] [--window SECS]
//!   [--sources a,b] [--max-parallelism N] [--engine flink|timely]`
//!   — stream a JSONL metrics dump into a replayable trace plus a
//!   monitor-ready rate schedule, reporting how many rows were kept,
//!   skipped or malformed.
//! * `inspect --bundle bundle.json` — summarize a bundle (clusters, warm-up
//!   sizes, encoder losses).
//! * `workloads` — list the named workloads usable with `tune`.
//! * `serve [--store DIR] [--listen ADDR] [--threads N] [--jobs N]
//!   [--seed S] [--engine flink|timely] [--fast] [--ledger-cap N]
//!   [--monitor-interval SECS]` — run the long-lived tuning daemon: load
//!   the model store (or pre-train and persist it, warm-started from any
//!   persisted GED-cache snapshot), resume any journaled jobs that a
//!   previous process died holding, then answer the line-delimited JSON
//!   control protocol (`submit`/`status`/`recommend`/`cancel`/`watch`/
//!   `unwatch`/`drift_status`/`tick`/`health`/`metrics`/`snapshot`/
//!   `drain`/`trace`/`explain`/`metrics_history`/`shutdown`) on
//!   stdin/stdout, or on a TCP listener with `--listen` — one session per
//!   client, with `--monitor-interval` running the background drift
//!   monitor between accepts. Overload knobs: `--session-cap` bounds
//!   concurrent sessions and `--request-deadline` bounds the wait for the
//!   daemon lock; excess load is shed with a structured `overloaded`
//!   response carrying `--retry-after-ms`. On SIGTERM the daemon drains:
//!   it stops accepting, finishes in-flight work and flushes the store,
//!   bounded by `--drain-timeout`. The `--slo-*` flags set alarm
//!   thresholds over the `health` counters (`off` disables one).
//!   Observability knobs: `--metrics-listen ADDR` serves the telemetry
//!   registry as Prometheus text on `GET /metrics` (JSON on
//!   `/metrics.json`) from a thread that never touches the daemon lock,
//!   and `--trace-log FILE` appends every structured event as one JSONL
//!   line (`--trace-log-cap BYTES` rotates the file at that size so a
//!   long-lived daemon never fills the disk). Both are strictly
//!   observational — tuning outcomes are bit-identical with or without
//!   them.
//! * `client --connect ADDR [--script FILE]` — send protocol lines (from
//!   the script file or stdin) to a serving daemon and print each response.
//! * `trace --connect ADDR [--label VERB] [--export FILE]` — fetch the
//!   flight recorder's newest complete span tree from a serving daemon
//!   (optionally the newest whose root is labeled `VERB`), print it
//!   indented by causal depth, and with `--export` write it as Chrome
//!   trace-event JSON (loadable in `chrome://tracing` or Perfetto).
//! * `top --connect METRICS_ADDR [--interval SECS] [--iterations N]
//!   [--once]` — poll a daemon's `/metrics/history.json` endpoint (the
//!   `--metrics-listen` address) and print each new frame: per-verb
//!   request-rate deltas and latency quantiles over the last interval.
//! * `monitor --query NAME [--multiplier M] [--shift-to M2] [--shift-at T]
//!   [--ticks N] [--seed S] [--store DIR] [--fast]` — an in-process
//!   demonstration of the observe→detect→adapt loop: tune a job, watch it
//!   with a scripted rate shift, tick the monitor and report the
//!   automatic re-tune.
//!
//! The default backend is the simulated cluster (see DESIGN.md §1); every
//! tuner runs through the backend-agnostic `ExecutionBackend` API, so the
//! same commands also drive the Flink REST connector (`--backend
//! flink:<url>`). Fault knobs apply everywhere: `--retry-attempts` /
//! `--retry-backoff` bound the transient-fault retry loop, and `--chaos
//! <seed>` injects a deterministic fault storm (on `serve`/`monitor` it
//! wraps every simulator-backed job, seeded `chaos ^ job seed`).

use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;
use streamtune_backend::{
    ChaosBackend, EngineMode, ExecutionBackend, FaultPlan, ReplayBackend, RetryPolicy, RetryStats,
    TraceRecorder, TuneOutcome, TuningSession,
};
use streamtune_baselines::Tuner;
use streamtune_connect::{ingest_file, FlinkBackend, IngestConfig};
use streamtune_core::{
    Parallelism, PretrainConfig, Pretrained, Pretrainer, StreamTune, TuneConfig,
};
use streamtune_serve::{ModelStore, Request, Response, Server, ServerConfig, TcpConfig};
use streamtune_sim::SimCluster;
use streamtune_workloads::history::HistoryGenerator;
use streamtune_workloads::named_workloads;
use streamtune_workloads::rates::Engine;

mod args;
mod error;
mod flight;
use args::Args;
use error::CliError;

fn cmd_workloads() -> ExitCode {
    println!("available workloads (use with `tune --query <name>`):");
    for w in named_workloads(Engine::Flink) {
        println!(
            "  {:<16} {} operator(s), {} source(s), Wu {:?}",
            w.name,
            w.flow.num_ops(),
            w.flow.num_sources(),
            w.wu
        );
    }
    ExitCode::SUCCESS
}

fn cmd_pretrain(args: &Args) -> Result<(), CliError> {
    let out = args.required("out")?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let jobs: usize = args.parse_or("jobs", 60)?;
    let engine = args.engine()?;
    let cluster = match engine {
        Engine::Flink => SimCluster::flink_defaults(seed),
        Engine::Timely => SimCluster::timely_defaults(seed),
    };
    eprintln!("generating {jobs}-job corpus (seed {seed})…");
    let mut gen = HistoryGenerator::new(seed).with_jobs(jobs);
    gen.engine = engine;
    let corpus = gen.generate(&cluster);
    eprintln!("pre-training on {} runs…", corpus.len());
    let config = if args.flag("fast") {
        PretrainConfig::fast()
    } else {
        PretrainConfig::default()
    };
    let pre = Pretrainer::new(config).run(&corpus);
    let json = serde_json::to_string(&pre).map_err(|e| CliError::Serde {
        context: "serialize bundle".to_string(),
        message: e.to_string(),
    })?;
    std::fs::write(&out, json).map_err(|e| CliError::Io {
        path: out.clone(),
        message: e.to_string(),
    })?;
    eprintln!(
        "wrote {} cluster(s), {} warm-up points → {out}",
        pre.clusters.len(),
        pre.total_warmup_points()
    );
    Ok(())
}

fn load_bundle(args: &Args) -> Result<Pretrained, CliError> {
    let path = args.required("bundle")?;
    let data = std::fs::read_to_string(&path).map_err(|e| CliError::Io {
        path: path.clone(),
        message: e.to_string(),
    })?;
    serde_json::from_str(&data).map_err(|e| CliError::Serde {
        context: format!("parse {path}"),
        message: e.to_string(),
    })
}

/// The `--backend` selection: the simulator, a recorded trace, a live
/// Flink REST endpoint, or a JSONL metrics dump.
enum BackendChoice {
    Sim,
    Replay(String),
    Flink(String),
    Ingest(String),
}

fn backend_choice(args: &Args) -> Result<BackendChoice, CliError> {
    let spec = match args.optional("backend") {
        None => return Ok(BackendChoice::Sim),
        Some(spec) => spec,
    };
    if spec == "sim" {
        return Ok(BackendChoice::Sim);
    }
    let choice = [
        (
            "replay:",
            BackendChoice::Replay as fn(String) -> BackendChoice,
        ),
        ("flink:", BackendChoice::Flink),
        ("ingest:", BackendChoice::Ingest),
    ]
    .iter()
    .find_map(|(prefix, make)| {
        spec.strip_prefix(prefix)
            .filter(|rest| !rest.is_empty())
            .map(|rest| make(rest.to_string()))
    });
    choice.ok_or_else(|| {
        CliError::Usage(format!(
            "--backend must be `sim`, `replay:<trace.json>`, `flink:<url>` or \
             `ingest:<dump.jsonl>`, got `{spec}`"
        ))
    })
}

/// Fold `--retry-attempts` / `--retry-backoff` over a base policy.
fn retry_policy(args: &Args, base: RetryPolicy) -> Result<RetryPolicy, CliError> {
    let policy = RetryPolicy {
        max_attempts: args.parse_or("retry-attempts", base.max_attempts)?,
        base_backoff_minutes: args.parse_or("retry-backoff", base.base_backoff_minutes)?,
    };
    if policy.max_attempts == 0 {
        return Err(CliError::Usage(
            "--retry-attempts must be at least 1 (1 = no retry)".to_string(),
        ));
    }
    if !policy.base_backoff_minutes.is_finite() || policy.base_backoff_minutes < 0.0 {
        return Err(CliError::Usage(format!(
            "--retry-backoff must be a finite non-negative number of minutes, got {}",
            policy.base_backoff_minutes
        )));
    }
    Ok(policy)
}

/// The optional `--chaos <seed>` fault-injection knob.
fn chaos_seed(args: &Args) -> Result<Option<u64>, CliError> {
    match args.optional("chaos") {
        None => Ok(None),
        Some(s) => s
            .parse::<u64>()
            .map(Some)
            .map_err(|e| CliError::Usage(format!("--chaos {s}: {e}"))),
    }
}

/// Tell the user what the retry loop absorbed, if anything.
fn report_faults(stats: &RetryStats) {
    if stats.any_faults() {
        eprintln!(
            "faults: {} transient absorbed over {} retry(ies) ({:.1} min virtual backoff), \
             {} exhausted, {} permanent",
            stats.transient_faults,
            stats.retries,
            stats.backoff_minutes,
            stats.exhausted,
            stats.permanent_failures
        );
    }
}

fn run_tuning(
    backend: &mut dyn ExecutionBackend,
    pre: &Pretrained,
    flow: &streamtune_dataflow::Dataflow,
    retry: RetryPolicy,
) -> Result<(TuneOutcome, RetryStats), CliError> {
    let mut tuner = StreamTune::new(pre, TuneConfig::default());
    let mut session = TuningSession::new(backend, flow).with_retry(retry);
    let outcome = tuner.tune(&mut session)?;
    let stats = session.retry_stats();
    Ok((outcome, stats))
}

/// Tune over an owned backend, wrapping it in a seeded [`ChaosBackend`]
/// when `--chaos` asked for a fault storm.
fn tune_with_faults<B: ExecutionBackend>(
    backend: B,
    pre: &Pretrained,
    flow: &streamtune_dataflow::Dataflow,
    retry: RetryPolicy,
    chaos: Option<u64>,
) -> Result<(TuneOutcome, RetryStats), CliError> {
    match chaos {
        Some(seed) => {
            let mut chaotic = ChaosBackend::new(backend, FaultPlan::transient(seed));
            run_tuning(&mut chaotic, pre, flow, retry)
        }
        None => {
            let mut backend = backend;
            run_tuning(&mut backend, pre, flow, retry)
        }
    }
}

fn cmd_tune(args: &Args) -> Result<(), CliError> {
    let pre = load_bundle(args)?;
    let query = args.required("query")?;
    let multiplier: f64 = args.parse_or("multiplier", 10.0)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let engine = args.engine()?;
    let workload = named_workloads(engine)
        .into_iter()
        .find(|w| w.name == query)
        .ok_or(CliError::UnknownWorkload {
            query: query.clone(),
        })?;
    let flow = workload.at(multiplier);

    let retry = retry_policy(args, RetryPolicy::default())?;
    let chaos = chaos_seed(args)?;
    let record_path = args.optional("record");
    let choice = backend_choice(args)?;
    if record_path.is_some() && !matches!(choice, BackendChoice::Sim) {
        return Err(CliError::Usage(
            "--record is only meaningful with --backend sim (other backends are already \
             recorded or live)"
                .to_string(),
        ));
    }
    match choice {
        BackendChoice::Sim => {
            let cluster = match engine {
                Engine::Flink => SimCluster::flink_defaults(seed),
                Engine::Timely => SimCluster::timely_defaults(seed),
            };
            let (outcome, stats) = if let Some(path) = &record_path {
                if chaos.is_some() {
                    return Err(CliError::Usage(
                        "--chaos cannot be combined with --record: traces record clean \
                         deployments"
                            .to_string(),
                    ));
                }
                let mut recorder = TraceRecorder::new(cluster.clone());
                let result = run_tuning(&mut recorder, &pre, &flow, retry)?;
                recorder.into_log().save(path)?;
                eprintln!("trace recorded → {path}");
                result
            } else {
                tune_with_faults(cluster.clone(), &pre, &flow, retry, chaos)?
            };
            // Score the recommendation against the simulator's ground truth.
            let rep = cluster.simulate(&flow, &outcome.final_assignment);
            print_outcome(&query, multiplier, &flow, &outcome);
            println!(
                "sustains sources: {:.1}%",
                rep.observation.throughput_scale * 100.0
            );
            report_faults(&stats);
        }
        BackendChoice::Replay(path) => {
            let replay = ReplayBackend::from_file(&path)?;
            let (outcome, stats, served) = match chaos {
                Some(seed) => {
                    let mut chaotic = ChaosBackend::new(replay, FaultPlan::transient(seed));
                    let (outcome, stats) = run_tuning(&mut chaotic, &pre, &flow, retry)?;
                    let served = chaotic.into_inner().served();
                    (outcome, stats, served)
                }
                None => {
                    let mut replay = replay;
                    let (outcome, stats) = run_tuning(&mut replay, &pre, &flow, retry)?;
                    let served = replay.served();
                    (outcome, stats, served)
                }
            };
            print_outcome(&query, multiplier, &flow, &outcome);
            println!("replayed {served} recorded deployment(s) from {path}");
            report_faults(&stats);
        }
        BackendChoice::Flink(url) => {
            let backend = FlinkBackend::connect(&url)?;
            eprintln!(
                "connected to {url}: job {} with {} vertex(es)",
                backend.job_id(),
                backend.vertex_names().len()
            );
            let (outcome, stats) = tune_with_faults(backend, &pre, &flow, retry, chaos)?;
            print_outcome(&query, multiplier, &flow, &outcome);
            report_faults(&stats);
        }
        BackendChoice::Ingest(path) => {
            // A dump records one fixed deployment per window — there is
            // nothing for a tuner to explore, so admit what the dump's
            // engine actually ran (the serve daemon does the same).
            let report = ingest_file(&path, &ingest_config(args)?)?;
            let last = report
                .log
                .deploys
                .last()
                .expect("ingest yields at least one window");
            if last.assignment.len() != flow.num_ops() {
                return Err(CliError::Usage(format!(
                    "ingested dump has {} operator(s) but workload `{query}` has {}",
                    last.assignment.len(),
                    flow.num_ops()
                )));
            }
            let backpressure_events = report
                .log
                .deploys
                .iter()
                .filter(|e| e.report.observation.job_backpressure)
                .count() as u32;
            let outcome = TuneOutcome {
                final_assignment: last.assignment.clone(),
                reconfigurations: 0,
                backpressure_events,
                elapsed_minutes: 0.0,
                iterations: report.log.deploys.len() as u32,
                converged: true,
            };
            print_outcome(&query, multiplier, &flow, &outcome);
            println!(
                "admitted the deployment recorded across {} window(s) of {path}",
                report.stats.windows
            );
        }
    }
    Ok(())
}

/// Build an [`IngestConfig`] from the shared dump-reading knobs.
fn ingest_config(args: &Args) -> Result<IngestConfig, CliError> {
    let base = IngestConfig::default();
    let window_secs: f64 = args.parse_or("window", base.window_secs)?;
    if !window_secs.is_finite() || window_secs <= 0.0 {
        return Err(CliError::Usage(format!(
            "--window must be a positive number of seconds, got {window_secs}"
        )));
    }
    Ok(IngestConfig {
        window_secs,
        max_parallelism: args.parse_or("max-parallelism", base.max_parallelism)?,
        engine: match args.engine()? {
            Engine::Flink => EngineMode::Flink,
            Engine::Timely => EngineMode::Timely,
        },
        source_operators: match args.optional("sources") {
            Some(sources) => sources
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect(),
            None => base.source_operators.clone(),
        },
        reconfig_wait_minutes: base.reconfig_wait_minutes,
    })
}

/// `streamtune ingest` — stream a JSONL metrics dump into a replayable
/// trace and a monitor-ready rate schedule.
fn cmd_ingest(args: &Args) -> Result<(), CliError> {
    let input = args.required("input")?;
    let report = ingest_file(&input, &ingest_config(args)?)?;
    let s = &report.stats;
    println!(
        "{input}: {} window(s) from {} row(s) ({} line(s) read)",
        s.windows, s.rows, s.lines
    );
    let skipped = s.bad_lines + s.late_rows + s.duplicate_rows + s.unknown_operator_rows;
    if skipped > 0 {
        println!(
            "skipped: {} malformed line(s), {} late row(s), {} duplicate(s), \
             {} for unknown operator(s)",
            s.bad_lines, s.late_rows, s.duplicate_rows, s.unknown_operator_rows
        );
    }
    println!("operators: {}", report.operators.join(", "));
    let lo = report
        .schedule
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let hi = report
        .schedule
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "rate schedule: {lo:.2}×–{hi:.2}× of the first window \
         (feed to `monitor` / the serve `watch` verb)"
    );
    if let Some(out) = args.optional("out") {
        report.log.save(&out)?;
        eprintln!("replayable trace → {out}");
    }
    Ok(())
}

fn print_outcome(
    query: &str,
    multiplier: f64,
    flow: &streamtune_dataflow::Dataflow,
    outcome: &TuneOutcome,
) {
    println!("{query} @ {multiplier}×Wu:");
    for (op, d) in outcome.final_assignment.iter() {
        println!("  {:<20} parallelism {d}", flow.op_name(op));
    }
    println!(
        "total {} | reconfigurations {} | simulated tuning time {:.0} min",
        outcome.final_assignment.total(),
        outcome.reconfigurations,
        outcome.elapsed_minutes
    );
}

/// The `--threads` selection for the serve worker pool (default `Auto`).
fn parallelism_choice(args: &Args) -> Result<Parallelism, CliError> {
    match args.optional("threads") {
        None => Ok(Parallelism::Auto),
        Some(t) => t
            .parse::<usize>()
            .map(Parallelism::Fixed)
            .map_err(|e| CliError::Usage(format!("--threads {t}: {e}"))),
    }
}

/// Build the `ServerConfig` common to `serve` and `monitor`.
fn server_config(args: &Args) -> Result<ServerConfig, CliError> {
    let parallelism = parallelism_choice(args)?;
    let mut config = if args.flag("fast") {
        ServerConfig::fast()
    } else {
        ServerConfig::default()
    }
    .with_parallelism(parallelism);
    config.ledger_cap = args.parse_or("ledger-cap", config.ledger_cap)?;
    config.retry = retry_policy(args, config.retry)?;
    config.chaos = chaos_seed(args)?;
    config.slo = slo_policy(args, config.slo)?;
    Ok(config)
}

/// Fold the `--slo-*` alarm thresholds over the default policy. A
/// threshold of `off` disables that alarm; absent flags keep the default.
fn slo_policy(
    args: &Args,
    base: streamtune_serve::SloPolicy,
) -> Result<streamtune_serve::SloPolicy, CliError> {
    fn threshold<T: std::str::FromStr>(
        args: &Args,
        key: &str,
        base: Option<T>,
    ) -> Result<Option<T>, CliError>
    where
        T::Err: std::fmt::Display,
    {
        match args.optional(key) {
            None => Ok(base),
            Some(s) if s == "off" => Ok(None),
            Some(s) => s
                .parse::<T>()
                .map(Some)
                .map_err(|e| CliError::Usage(format!("--{key} {s}: {e} (or `off`)"))),
        }
    }
    let policy = streamtune_serve::SloPolicy {
        max_retry_rate: threshold(args, "slo-retry-rate", base.max_retry_rate)?,
        max_degraded_watches: threshold(args, "slo-degraded-watches", base.max_degraded_watches)?,
        max_poll_failures: threshold(args, "slo-poll-failures", base.max_poll_failures)?,
        max_handler_panics: threshold(args, "slo-handler-panics", base.max_handler_panics)?,
    };
    if policy
        .max_retry_rate
        .is_some_and(|r| !r.is_finite() || r < 0.0)
    {
        return Err(CliError::Usage(
            "--slo-retry-rate must be a finite non-negative rate (or `off`)".to_string(),
        ));
    }
    Ok(policy)
}

/// Parse a `--key SECS` duration flag (positive seconds, fractions ok).
fn duration_secs(
    args: &Args,
    key: &str,
    base: std::time::Duration,
) -> Result<std::time::Duration, CliError> {
    match args.optional(key) {
        None => Ok(base),
        Some(secs) => {
            let value = secs
                .parse::<f64>()
                .map_err(|e| CliError::Usage(format!("--{key} {secs}: {e}")))?;
            if !value.is_finite() || value <= 0.0 {
                return Err(CliError::Usage(format!(
                    "--{key} must be a positive number of seconds, got {secs}"
                )));
            }
            Ok(std::time::Duration::from_secs_f64(value))
        }
    }
}

/// Bootstrap a server over the simulated cluster (shared by `serve` and
/// `monitor`).
fn bootstrap_server(args: &Args) -> Result<Server, CliError> {
    let seed: u64 = args.parse_or("seed", 42)?;
    let jobs: usize = args.parse_or("jobs", 60)?;
    let engine = args.engine()?;
    let store = args.optional("store").map(ModelStore::new);
    let config = server_config(args)?;

    let (server, report) = Server::bootstrap(store, config, || {
        let cluster = match engine {
            Engine::Flink => SimCluster::flink_defaults(seed),
            Engine::Timely => SimCluster::timely_defaults(seed),
        };
        eprintln!("generating {jobs}-job corpus (seed {seed})…");
        let mut gen = HistoryGenerator::new(seed).with_jobs(jobs);
        gen.engine = engine;
        let corpus = gen.generate(&cluster);
        eprintln!("pre-training on {} runs…", corpus.len());
        corpus
    })?;
    eprintln!(
        "model ready: {} cluster(s), {} warm-up points ({}{}{})",
        server.pretrained().clusters.len(),
        server.pretrained().total_warmup_points(),
        if report.loaded_from_store {
            "loaded from store, no retraining"
        } else if report.warm_started {
            "pre-trained warm-started from the persisted GED cache"
        } else {
            "pre-trained cold"
        },
        if report.restored_jobs > 0 {
            format!("; {} job(s) restored", report.restored_jobs)
        } else {
            String::new()
        },
        if report.resumed_jobs > 0 {
            format!(
                "; {} interrupted job(s) resumed from the journal",
                report.resumed_jobs
            )
        } else {
            String::new()
        },
    );
    Ok(server)
}

/// Build the [`TcpConfig`] for `serve --listen` from the admission-control
/// and drain knobs.
fn tcp_config(args: &Args) -> Result<TcpConfig, CliError> {
    let base = TcpConfig::default();
    let session_cap: usize = args.parse_or("session-cap", base.session_cap)?;
    if session_cap == 0 {
        return Err(CliError::Usage(
            "--session-cap must be at least 1".to_string(),
        ));
    }
    let monitor_interval = match args.optional("monitor-interval") {
        Some(_) => Some(duration_secs(
            args,
            "monitor-interval",
            std::time::Duration::from_secs(1),
        )?),
        None => None,
    };
    Ok(TcpConfig {
        session_cap,
        request_deadline: duration_secs(args, "request-deadline", base.request_deadline)?,
        retry_after_ms: args.parse_or("retry-after-ms", base.retry_after_ms)?,
        drain_timeout: duration_secs(args, "drain-timeout", base.drain_timeout)?,
        monitor_interval,
    })
}

fn cmd_serve(args: &Args) -> Result<(), CliError> {
    // Telemetry wiring comes first so bootstrap events (store recovery,
    // pretrain phase timings) land in the trace log and on stderr. The
    // daemon echoes operational (info-level) events; libraries keep the
    // quieter warn default.
    streamtune_telemetry::events().set_echo_level(Some(streamtune_telemetry::Level::Info));
    match (args.optional("trace-log"), args.optional("trace-log-cap")) {
        // Size-capped sink: rotate `path` → `path.1` at the cap, so a
        // long-lived daemon holds at most ~2×cap bytes of trace output.
        // Rotation needs to own the byte count, so the live file is
        // truncated at startup (the uncapped sink appends instead).
        (Some(path), Some(cap)) => {
            let cap: u64 = cap
                .parse()
                .map_err(|e| CliError::Usage(format!("--trace-log-cap {cap}: {e}")))?;
            if cap == 0 {
                return Err(CliError::Usage(
                    "--trace-log-cap must be a positive number of bytes".to_string(),
                ));
            }
            let writer = streamtune_telemetry::RotatingWriter::create(&path, cap).map_err(|e| {
                CliError::Io {
                    path: path.clone(),
                    message: e.to_string(),
                }
            })?;
            streamtune_telemetry::events().set_writer(Box::new(writer));
            eprintln!("tracing events to {path} (JSONL, rotating at {cap} bytes)");
        }
        (Some(path), None) => {
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| CliError::Io {
                    path: path.clone(),
                    message: e.to_string(),
                })?;
            streamtune_telemetry::events().set_writer(Box::new(file));
            eprintln!("tracing events to {path} (JSONL)");
        }
        (None, Some(_)) => {
            return Err(CliError::Usage(
                "--trace-log-cap needs --trace-log FILE to cap".to_string(),
            ));
        }
        (None, None) => {}
    }
    // Held for the daemon's lifetime: dropping it would stop the scraper.
    let _metrics_endpoint = match args.optional("metrics-listen") {
        Some(addr) => {
            let endpoint =
                streamtune_serve::spawn_metrics_endpoint(&addr).map_err(|e| CliError::Io {
                    path: addr.clone(),
                    message: e.to_string(),
                })?;
            // Resolved address, for scripts binding port 0.
            eprintln!(
                "metrics on http://{}/metrics (Prometheus text) and /metrics.json",
                endpoint.local_addr()
            );
            Some(endpoint)
        }
        None => None,
    };
    let mut server = bootstrap_server(args)?;
    match args.optional("listen") {
        Some(addr) => {
            let listener = std::net::TcpListener::bind(&addr).map_err(|e| CliError::Io {
                path: addr.clone(),
                message: e.to_string(),
            })?;
            let config = tcp_config(args)?;
            // Print the *resolved* address: `--listen 127.0.0.1:0` binds an
            // ephemeral port, and scripts need to know which one.
            let resolved = listener
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or(addr.clone());
            eprintln!(
                "listening on {resolved} — send line-delimited JSON requests \
                 (one session per client, at most {} concurrent{})",
                config.session_cap,
                if config.monitor_interval.is_some() {
                    ", background drift monitor running"
                } else {
                    ""
                }
            );
            let server = std::sync::Mutex::new(server);
            Server::serve_tcp_with(&server, &listener, config)?;
        }
        None => {
            eprintln!("serving line-delimited JSON on stdin/stdout");
            let stdin = std::io::stdin();
            server.serve(stdin.lock(), std::io::stdout())?;
        }
    }
    streamtune_telemetry::events().flush();
    eprintln!("server stopped");
    Ok(())
}

/// `streamtune monitor` — drive the observe→detect→adapt loop in-process:
/// tune one job, watch it with a scripted rate shift, tick the monitor,
/// and report what the adaptation policy did.
fn cmd_monitor(args: &Args) -> Result<(), CliError> {
    let query = args.required("query")?;
    let multiplier: f64 = args.parse_or("multiplier", 5.0)?;
    let shift_to: f64 = args.parse_or("shift-to", multiplier * 1.6)?;
    let shift_at: u64 = args.parse_or("shift-at", 10)?;
    let ticks: u64 = args.parse_or("ticks", 40)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let engine = args.engine()?;
    let mut server = bootstrap_server(args)?;

    let expect_ok = |response: Response| -> Result<Response, CliError> {
        match response {
            Response::Error { message } => Err(CliError::Usage(message)),
            other => Ok(other),
        }
    };
    let spec = streamtune_serve::JobSpec {
        name: "watched".to_string(),
        query: query.clone(),
        multiplier,
        seed,
        engine,
        backend: streamtune_serve::BackendSpec::Sim,
    };
    expect_ok(server.handle(&Request::Submit(spec)).0)?;
    let schedule: Vec<f64> = std::iter::repeat_n(multiplier, shift_at as usize)
        .chain([shift_to])
        .collect();
    eprintln!(
        "watching `{query}` at {multiplier}×Wu; the environment shifts to {shift_to}×Wu at \
         tick {shift_at}"
    );
    match expect_ok(
        server
            .handle(&Request::Watch {
                job: "watched".to_string(),
                schedule: Some(schedule),
            })
            .0,
    )? {
        Response::Watching { covered, .. } => {
            if !covered {
                eprintln!("DAG structure is uncovered — the first tick will grow the corpus");
            }
        }
        other => eprintln!("unexpected watch response: {other:?}"),
    }
    let Response::Ticked(report) = expect_ok(server.handle(&Request::Tick { steps: ticks }).0)?
    else {
        return Err(CliError::Usage("tick did not report".to_string()));
    };
    println!(
        "{} tick(s), {} adaptation(s):",
        report.steps,
        report.events.len()
    );
    for event in &report.events {
        println!("  {} [{}] {}", event.job, event.kind, event.detail);
    }
    if let Response::Drift { watches, alarms } = expect_ok(server.handle(&Request::DriftStatus).0)?
    {
        for l in watches {
            println!(
                "  {}: {} after {} tick(s) — multiplier {}, {} trigger(s), {} re-tune(s)",
                l.job, l.class, l.ticks, l.multiplier, l.triggers, l.retunes
            );
        }
        for a in alarms {
            println!(
                "  ALARM {}: {} ≥ {} — {}",
                a.alarm, a.value, a.threshold, a.detail
            );
        }
    }
    Ok(())
}

fn cmd_client(args: &Args) -> Result<(), CliError> {
    let addr = args.required("connect")?;
    let io_err = |path: &str, e: std::io::Error| CliError::Io {
        path: path.to_string(),
        message: e.to_string(),
    };
    let stream = std::net::TcpStream::connect(&addr).map_err(|e| io_err(&addr, e))?;
    let mut responses = BufReader::new(stream.try_clone().map_err(|e| io_err(&addr, e))?);
    let mut requests_out = stream;
    let requests: Box<dyn BufRead> = match args.optional("script") {
        Some(path) => Box::new(BufReader::new(
            std::fs::File::open(&path).map_err(|e| io_err(&path, e))?,
        )),
        None => Box::new(BufReader::new(std::io::stdin())),
    };
    for line in requests.lines() {
        let line = line.map_err(|e| io_err("request input", e))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        writeln!(requests_out, "{trimmed}").map_err(|e| io_err(&addr, e))?;
        requests_out.flush().map_err(|e| io_err(&addr, e))?;
        let mut response = String::new();
        let n = responses
            .read_line(&mut response)
            .map_err(|e| io_err(&addr, e))?;
        if n == 0 {
            eprintln!("server closed the connection");
            break;
        }
        print!("{response}");
    }
    Ok(())
}

fn cmd_inspect(args: &Args) -> Result<(), CliError> {
    let pre = load_bundle(args)?;
    println!(
        "bundle: {} cluster(s){}",
        pre.clusters.len(),
        if pre.global_fallback {
            " (global fallback)"
        } else {
            ""
        }
    );
    for (i, c) in pre.clusters.iter().enumerate() {
        println!(
            "  cluster {i}: center {} node(s) / {} edge(s), {} warm-up point(s), final loss {:.4}, {} parameters",
            c.center.num_nodes(),
            c.center.num_edges(),
            c.warmup.len(),
            c.final_loss,
            c.encoder.num_parameters()
        );
    }
    Ok(())
}

fn usage() -> &'static str {
    "usage: streamtune <command> [--key value]...\n\
     commands:\n\
       pretrain  --out FILE [--jobs N] [--seed S] [--engine flink|timely] [--fast]\n\
       tune      --bundle FILE --query NAME [--multiplier M] [--seed S] [--engine flink|timely]\n\
                 [--backend sim|replay:TRACE|flink:URL|ingest:DUMP] [--record TRACE]\n\
                 [--retry-attempts N] [--retry-backoff MIN] [--chaos SEED]\n\
       ingest    --input DUMP [--out TRACE] [--window SECS] [--sources a,b]\n\
                 [--max-parallelism N] [--engine flink|timely]\n\
       inspect   --bundle FILE\n\
       workloads\n\
       serve     [--store DIR] [--listen ADDR] [--threads N] [--jobs N] [--seed S]\n\
                 [--engine flink|timely] [--fast] [--ledger-cap N] [--monitor-interval SECS]\n\
                 [--retry-attempts N] [--retry-backoff MIN] [--chaos SEED]\n\
                 [--session-cap N] [--request-deadline SECS] [--retry-after-ms MS]\n\
                 [--drain-timeout SECS] [--slo-retry-rate R|off] [--slo-degraded-watches N|off]\n\
                 [--slo-poll-failures N|off] [--slo-handler-panics N|off]\n\
                 [--metrics-listen ADDR] [--trace-log FILE] [--trace-log-cap BYTES]\n\
       client    --connect ADDR [--script FILE]\n\
       trace     --connect ADDR [--label VERB] [--export FILE]\n\
       top       --connect METRICS_ADDR [--interval SECS] [--iterations N] [--once]\n\
       monitor   --query NAME [--multiplier M] [--shift-to M2] [--shift-at T] [--ticks N]\n\
                 [--seed S] [--store DIR] [--fast]\n\
                 [--retry-attempts N] [--retry-backoff MIN] [--chaos SEED]"
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let args = Args::parse(&argv[1..]);
    let result = match cmd.as_str() {
        "workloads" => return cmd_workloads(),
        "pretrain" => cmd_pretrain(&args),
        "tune" => cmd_tune(&args),
        "ingest" => cmd_ingest(&args),
        "inspect" => cmd_inspect(&args),
        "serve" => cmd_serve(&args),
        "client" => cmd_client(&args),
        "monitor" => cmd_monitor(&args),
        "trace" => flight::cmd_trace(&args),
        "top" => flight::cmd_top(&args),
        "-h" | "--help" | "help" => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        other => Err(CliError::Usage(format!(
            "unknown command '{other}'\n{}",
            usage()
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
