//! Tiny `--key value` / `--flag` argument parser (no external deps).

use std::collections::HashMap;
use streamtune_workloads::rates::Engine;

/// Parsed command-line arguments.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse `--key value` pairs and bare `--flag`s.
    pub fn parse(argv: &[String]) -> Self {
        let mut args = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            if let Some(key) = token.strip_prefix("--") {
                let next_is_value = argv
                    .get(i + 1)
                    .map(|n| !n.starts_with("--"))
                    .unwrap_or(false);
                if next_is_value {
                    args.values.insert(key.to_string(), argv[i + 1].clone());
                    i += 2;
                } else {
                    args.flags.push(key.to_string());
                    i += 1;
                }
            } else {
                i += 1; // ignore stray positionals
            }
        }
        args
    }

    /// A required `--key value`.
    pub fn required(&self, key: &str) -> Result<String, String> {
        self.values
            .get(key)
            .cloned()
            .ok_or_else(|| format!("missing required --{key}"))
    }

    /// Parse `--key` as `T`, defaulting when absent.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{key} {v}: {e}")),
        }
    }

    /// An optional `--key value`, `None` when absent.
    pub fn optional(&self, key: &str) -> Option<String> {
        self.values.get(key).cloned()
    }

    /// Whether a bare `--flag` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The `--engine` selection (default Flink).
    pub fn engine(&self) -> Result<Engine, String> {
        match self.values.get("engine").map(String::as_str) {
            None | Some("flink") => Ok(Engine::Flink),
            Some("timely") => Ok(Engine::Timely),
            Some(other) => Err(format!("--engine must be flink or timely, got {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_flags() {
        let a = Args::parse(&argv(&["--out", "x.json", "--fast", "--jobs", "12"]));
        assert_eq!(a.required("out").unwrap(), "x.json");
        assert!(a.flag("fast"));
        assert_eq!(a.parse_or("jobs", 0usize).unwrap(), 12);
        assert_eq!(a.parse_or("seed", 7u64).unwrap(), 7);
    }

    #[test]
    fn missing_required_errors() {
        let a = Args::parse(&argv(&["--fast"]));
        assert!(a.required("out").is_err());
    }

    #[test]
    fn engine_selection() {
        assert_eq!(
            Args::parse(&argv(&["--engine", "timely"]))
                .engine()
                .unwrap(),
            Engine::Timely
        );
        assert_eq!(Args::parse(&argv(&[])).engine().unwrap(), Engine::Flink);
        assert!(Args::parse(&argv(&["--engine", "spark"])).engine().is_err());
    }

    #[test]
    fn bad_number_errors() {
        let a = Args::parse(&argv(&["--jobs", "abc"]));
        assert!(a.parse_or("jobs", 0usize).is_err());
    }
}
