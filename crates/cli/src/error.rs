//! CLI error type: every failure mode the `streamtune` binary can hit,
//! propagated as a `Result` up to `main` (thiserror-idiom by hand — the
//! derive crate is unavailable offline).

use std::fmt;
use streamtune_backend::{BackendError, TuneError};
use streamtune_serve::ServeError;

/// A failed CLI invocation.
#[derive(Debug)]
pub enum CliError {
    /// Bad or missing command-line arguments.
    Usage(String),
    /// The requested workload name is unknown.
    UnknownWorkload {
        /// The name the user asked for.
        query: String,
    },
    /// A deployment/trace operation failed.
    Backend(BackendError),
    /// A tuning run failed.
    Tune(TuneError),
    /// A serve/client operation failed.
    Serve(ServeError),
    /// Reading or writing a file failed.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error rendered to text.
        message: String,
    },
    /// A bundle or trace failed to (de)serialize.
    Serde {
        /// What was being (de)serialized.
        context: String,
        /// The underlying error rendered to text.
        message: String,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => f.write_str(msg),
            CliError::UnknownWorkload { query } => {
                write!(f, "unknown workload '{query}' (try `streamtune workloads`)")
            }
            CliError::Backend(e) => write!(f, "backend: {e}"),
            CliError::Tune(e) => write!(f, "tuning: {e}"),
            CliError::Serve(e) => write!(f, "serve: {e}"),
            CliError::Io { path, message } => write!(f, "{path}: {message}"),
            CliError::Serde { context, message } => write!(f, "{context}: {message}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Backend(e) => Some(e),
            CliError::Tune(e) => Some(e),
            CliError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BackendError> for CliError {
    fn from(e: BackendError) -> Self {
        CliError::Backend(e)
    }
}

impl From<TuneError> for CliError {
    fn from(e: TuneError) -> Self {
        CliError::Tune(e)
    }
}

impl From<ServeError> for CliError {
    fn from(e: ServeError) -> Self {
        CliError::Serve(e)
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}
