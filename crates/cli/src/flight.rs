//! Flight-recorder subcommands: `streamtune trace` (span trees from a
//! serving daemon, optionally exported as Chrome trace-event JSON) and
//! `streamtune top` (a live view over the daemon's metrics-history ring).
//!
//! Both are read-only clients. `trace` speaks the line-delimited control
//! protocol (the `trace` verb) over TCP; `top` polls the HTTP metrics
//! endpoint (`--metrics-listen`) at `/metrics/history.json`, which never
//! touches the daemon lock — so watching a busy daemon is always safe.

use std::io::{BufRead, BufReader, Write};
use std::time::Duration;

use serde_json::Value;
use streamtune_connect::HttpClient;
use streamtune_serve::{Request, Response};

use crate::args::Args;
use crate::error::CliError;

fn io_err(path: &str, e: std::io::Error) -> CliError {
    CliError::Io {
        path: path.to_string(),
        message: e.to_string(),
    }
}

/// Send one protocol request to a serving daemon and parse the reply.
fn send_request(addr: &str, request: &Request) -> Result<Response, CliError> {
    let stream = std::net::TcpStream::connect(addr).map_err(|e| io_err(addr, e))?;
    let mut responses = BufReader::new(stream.try_clone().map_err(|e| io_err(addr, e))?);
    let mut requests_out = stream;
    let line = serde_json::to_string(request).map_err(|e| CliError::Serde {
        context: "serialize request".to_string(),
        message: e.to_string(),
    })?;
    writeln!(requests_out, "{line}").map_err(|e| io_err(addr, e))?;
    requests_out.flush().map_err(|e| io_err(addr, e))?;
    let mut response = String::new();
    let n = responses
        .read_line(&mut response)
        .map_err(|e| io_err(addr, e))?;
    if n == 0 {
        return Err(CliError::Usage(format!(
            "{addr}: server closed the connection without responding"
        )));
    }
    serde_json::from_str(&response).map_err(|e| CliError::Serde {
        context: format!("parse response from {addr}"),
        message: e.to_string(),
    })
}

// ---- lenient Value readers -------------------------------------------------
// The flight-recorder payloads are raw JSON values whose schemas grow
// release to release; a display client reads what it knows and shrugs at
// the rest instead of failing the whole command on one missing field.

fn get<'a>(v: &'a Value, name: &str) -> Option<&'a Value> {
    v.field(name).ok()
}

fn str_of(v: &Value) -> &str {
    match v {
        Value::String(s) => s,
        _ => "",
    }
}

fn u64_of(v: &Value) -> u64 {
    match v {
        Value::U64(n) => *n,
        Value::I64(n) => *n as u64,
        Value::F64(f) => *f as u64,
        _ => 0,
    }
}

fn f64_of(v: &Value) -> f64 {
    match v {
        Value::U64(n) => *n as f64,
        Value::I64(n) => *n as f64,
        Value::F64(f) => *f,
        _ => 0.0,
    }
}

fn bool_of(v: &Value) -> bool {
    matches!(v, Value::Bool(true))
}

fn array_of(v: &Value) -> &[Value] {
    match v {
        Value::Array(items) => items,
        _ => &[],
    }
}

/// Render nanoseconds human-first: ns under a microsecond, then µs/ms/s.
fn fmt_nanos(nanos: u64) -> String {
    match nanos {
        n if n < 1_000 => format!("{n}ns"),
        n if n < 1_000_000 => format!("{:.1}µs", n as f64 / 1e3),
        n if n < 1_000_000_000 => format!("{:.2}ms", n as f64 / 1e6),
        n => format!("{:.2}s", n as f64 / 1e9),
    }
}

/// `{key=value, ...}` for a label object, empty string when unlabeled.
fn fmt_labels(labels: Option<&Value>) -> String {
    let Some(Value::Object(entries)) = labels else {
        return String::new();
    };
    if entries.is_empty() {
        return String::new();
    }
    let body: Vec<String> = entries
        .iter()
        .map(|(k, v)| format!("{k}={}", str_of(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

// ---- streamtune trace ------------------------------------------------------

/// Print one span and its children, indented by tree depth. Spans arrive
/// sorted by start offset, so sibling order is causal order.
fn print_span_tree(spans: &[Value], parent: Option<u64>, depth: usize) {
    for span in spans {
        let this_parent = get(span, "parent").and_then(|p| match p {
            Value::Null => None,
            other => Some(u64_of(other)),
        });
        if this_parent != parent {
            continue;
        }
        let fields = match get(span, "fields") {
            Some(Value::Object(entries)) if !entries.is_empty() => {
                let body: Vec<String> = entries
                    .iter()
                    .map(|(k, v)| format!("{k}={}", str_of(v)))
                    .collect();
                format!("  [{}]", body.join(" "))
            }
            _ => String::new(),
        };
        println!(
            "  {:indent$}{} ({})  {}{}",
            "",
            get(span, "name").map(str_of).unwrap_or("?"),
            get(span, "target").map(str_of).unwrap_or("?"),
            fmt_nanos(get(span, "duration_nanos").map(u64_of).unwrap_or(0)),
            fields,
            indent = depth * 2,
        );
        if let Some(id) = get(span, "span").map(u64_of) {
            print_span_tree(spans, Some(id), depth + 1);
        }
    }
}

/// `streamtune trace` — fetch the newest complete span tree from a
/// serving daemon (optionally filtered by root label), print it, and
/// optionally export it as Chrome trace-event JSON.
pub fn cmd_trace(args: &Args) -> Result<(), CliError> {
    let addr = args.required("connect")?;
    let label = args.optional("label");
    let export = args.optional("export");
    let payload = match send_request(
        &addr,
        &Request::Trace {
            label: label.clone(),
        },
    )? {
        Response::Trace(value) => value,
        Response::Error { message } => return Err(CliError::Usage(message)),
        other => {
            return Err(CliError::Usage(format!(
                "unexpected response to `trace`: {other:?}"
            )))
        }
    };

    if !get(&payload, "enabled").map(bool_of).unwrap_or(false) {
        eprintln!("note: telemetry is disabled on the daemon — no new traces are recorded");
    }
    let summaries = get(&payload, "traces").map(array_of).unwrap_or(&[]);
    println!("{} recorded trace(s) (newest first):", summaries.len());
    for t in summaries {
        println!(
            "  #{:<6} {:<16} {:>4} span(s)  {:>10}{}{}",
            get(t, "id").map(u64_of).unwrap_or(0),
            get(t, "label").map(str_of).unwrap_or("?"),
            get(t, "spans").map(u64_of).unwrap_or(0),
            fmt_nanos(get(t, "duration_nanos").map(u64_of).unwrap_or(0)),
            if get(t, "complete").map(bool_of).unwrap_or(false) {
                ""
            } else {
                "  (in flight)"
            },
            match get(t, "dropped").map(u64_of).unwrap_or(0) {
                0 => String::new(),
                n => format!("  ({n} span(s) dropped)"),
            },
        );
    }

    let Some(trace) = get(&payload, "trace") else {
        let wanted = label
            .as_deref()
            .map(|l| format!(" labeled `{l}`"))
            .unwrap_or_default();
        if export.is_some() {
            return Err(CliError::Usage(format!(
                "nothing to export: the flight recorder holds no complete trace{wanted}"
            )));
        }
        println!("no complete trace{wanted} to show");
        return Ok(());
    };
    println!(
        "\ntrace #{} `{}`:",
        get(trace, "id").map(u64_of).unwrap_or(0),
        get(trace, "label").map(str_of).unwrap_or("?"),
    );
    let spans = get(trace, "spans").map(array_of).unwrap_or(&[]);
    print_span_tree(spans, None, 0);
    if let Some(dropped) = get(trace, "dropped").map(u64_of).filter(|d| *d > 0) {
        println!("  … {dropped} span(s) dropped at the per-trace cap");
    }

    if let Some(path) = export {
        let chrome = get(&payload, "chrome").map(str_of).unwrap_or("");
        if chrome.is_empty() {
            return Err(CliError::Usage(
                "daemon sent a trace without a chrome export (older daemon?)".to_string(),
            ));
        }
        std::fs::write(&path, chrome).map_err(|e| io_err(&path, e))?;
        eprintln!("chrome trace-event JSON → {path} (load in chrome://tracing or Perfetto)");
    }
    Ok(())
}

// ---- streamtune top --------------------------------------------------------

/// Print one history frame: the interval's counter deltas, gauge values
/// and histogram quantiles, one line per series.
fn print_frame(frame: &Value) {
    let interval = get(frame, "interval_nanos").map(u64_of).unwrap_or(0);
    let series = get(frame, "series").map(array_of).unwrap_or(&[]);
    println!(
        "frame #{} (interval {}, {} series):",
        get(frame, "seq").map(u64_of).unwrap_or(0),
        fmt_nanos(interval),
        series.len(),
    );
    for s in series {
        let name = get(s, "name").map(str_of).unwrap_or("?");
        let series_name = format!("{name}{}", fmt_labels(get(s, "labels")));
        match get(s, "kind").map(str_of).unwrap_or("") {
            "counter" => println!(
                "  {series_name:<44} +{:<8} (total {})",
                get(s, "delta").map(u64_of).unwrap_or(0),
                get(s, "total").map(u64_of).unwrap_or(0),
            ),
            "gauge" => println!(
                "  {series_name:<44} {}",
                get(s, "value").map(f64_of).unwrap_or(0.0),
            ),
            "histogram" => println!(
                "  {series_name:<44} +{:<8} p50 {} | p99 {} (total {})",
                get(s, "count").map(u64_of).unwrap_or(0),
                fmt_nanos(get(s, "p50").map(f64_of).unwrap_or(0.0) as u64),
                fmt_nanos(get(s, "p99").map(f64_of).unwrap_or(0.0) as u64),
                get(s, "total_count").map(u64_of).unwrap_or(0),
            ),
            other => println!("  {series_name} (unknown kind `{other}`)"),
        }
    }
}

/// `streamtune top` — poll a daemon's `/metrics/history.json` endpoint
/// (the `--metrics-listen` address) and print each new frame: a live,
/// dependency-free view of per-verb rates and latency quantiles.
pub fn cmd_top(args: &Args) -> Result<(), CliError> {
    let addr = args.required("connect")?;
    let interval_secs: f64 = args.parse_or("interval", 2.0)?;
    if !interval_secs.is_finite() || interval_secs <= 0.0 {
        return Err(CliError::Usage(format!(
            "--interval must be a positive number of seconds, got {interval_secs}"
        )));
    }
    // `--once` prints the newest frame and exits (scripts/tests);
    // `--iterations 0` (the default) polls until interrupted.
    let iterations: u64 = if args.flag("once") {
        1
    } else {
        args.parse_or("iterations", 0)?
    };
    let client = HttpClient::new(Duration::from_secs(5));
    let mut shown = 0u64;
    let mut last_seq: Option<u64> = None;
    loop {
        let response = client
            .request("GET", &addr, "/metrics/history.json", None)
            .map_err(|e| io_err(&addr, e))?;
        if !response.is_success() {
            return Err(CliError::Usage(format!(
                "{addr}/metrics/history.json answered HTTP {} — is this the daemon's \
                 --metrics-listen address?",
                response.status
            )));
        }
        let payload: Value = serde_json::from_str(&response.body).map_err(|e| CliError::Serde {
            context: format!("parse history from {addr}"),
            message: e.to_string(),
        })?;
        if !get(&payload, "enabled").map(bool_of).unwrap_or(false) {
            eprintln!("note: telemetry is disabled on the daemon — history is frozen");
        }
        // Each scrape appends a frame server-side, so the newest frame is
        // this poll's interval; skip reprints if the daemon restarted the
        // endpoint between polls and re-served an already-shown frame.
        if let Some(frame) = get(&payload, "frames").map(array_of).unwrap_or(&[]).last() {
            let seq = get(frame, "seq").map(u64_of);
            if seq != last_seq {
                print_frame(frame);
                last_seq = seq;
            }
        } else {
            println!("no history frames yet");
        }
        shown += 1;
        if iterations != 0 && shown >= iterations {
            return Ok(());
        }
        std::thread::sleep(Duration::from_secs_f64(interval_secs));
    }
}
