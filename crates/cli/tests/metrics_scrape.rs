//! Live-scrape drill against the *built binary*: `streamtune serve
//! --metrics-listen 127.0.0.1:0 --trace-log <file>` must expose
//! Prometheus text that the in-repo checker validates, a JSON mirror,
//! the `metrics` protocol verb, and a parseable JSONL trace stream.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use streamtune_serve::Response;
use streamtune_telemetry::check_prometheus;

struct Daemon {
    child: Child,
    addr: String,
    scrape: String,
}

/// Spawn the binary and parse both resolved addresses (protocol and
/// scrape endpoint) from its startup log.
fn spawn_daemon(trace_log: &std::path::Path) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_streamtune"))
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--metrics-listen",
            "127.0.0.1:0",
            "--trace-log",
            trace_log.to_str().expect("utf-8 trace path"),
            "--fast",
            "--jobs",
            "12",
            "--seed",
            "91",
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    let mut stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
    let mut addr = None;
    let mut scrape = None;
    while addr.is_none() || scrape.is_none() {
        let mut line = String::new();
        let n = stderr.read_line(&mut line).expect("daemon startup log");
        assert!(n > 0, "daemon exited before listening");
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("metrics on http://") {
            scrape = Some(
                rest.split("/metrics")
                    .next()
                    .expect("scrape address")
                    .to_string(),
            );
        } else if let Some(rest) = line.strip_prefix("listening on ") {
            addr = Some(
                rest.split_whitespace()
                    .next()
                    .expect("resolved address")
                    .to_string(),
            );
        }
    }
    // Keep draining stderr so the daemon never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while stderr.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
            sink.clear();
        }
    });
    Daemon {
        child,
        addr: addr.unwrap(),
        scrape: scrape.unwrap(),
    }
}

impl Daemon {
    fn request(&self, line: &str) -> Response {
        let stream = TcpStream::connect(&self.addr).expect("connect to daemon");
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        let mut writer = stream;
        writeln!(writer, "{line}").expect("send request");
        writer.flush().expect("flush request");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read response");
        serde_json::from_str(response.trim()).expect("valid response line")
    }

    fn scrape(&self, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(&self.scrape).expect("connect scraper");
        write!(stream, "GET {path} HTTP/1.0\r\n\r\n").expect("send scrape");
        stream.flush().expect("flush scrape");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read scrape");
        let (head, body) = raw.split_once("\r\n\r\n").expect("headers end");
        let status = head.lines().next().expect("status line").to_string();
        (status, body.to_string())
    }

    fn wait_exit(mut self, budget: Duration) {
        let start = Instant::now();
        loop {
            match self.child.try_wait().expect("poll daemon") {
                Some(status) => {
                    assert!(status.success(), "daemon exited with {status}");
                    return;
                }
                None if start.elapsed() > budget => {
                    self.child.kill().ok();
                    panic!("daemon did not exit within {budget:?}");
                }
                None => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }
}

#[test]
fn live_daemon_scrape_validates_and_traces_jsonl() {
    let trace_log = std::env::temp_dir().join(format!(
        "streamtune-scrape-drill-{}.jsonl",
        std::process::id()
    ));
    std::fs::remove_file(&trace_log).ok();
    let daemon = spawn_daemon(&trace_log);

    // Put real traffic on the wire so per-verb series have samples.
    assert!(matches!(
        daemon.request(
            "{\"submit\": {\"name\": \"observed\", \"query\": \"nexmark-q1\", \
             \"multiplier\": 6.0, \"seed\": 1, \"engine\": \"flink\", \
             \"backend\": \"sim\"}}"
        ),
        Response::Submitted { .. }
    ));
    assert!(matches!(daemon.request("\"status\""), Response::Status(_)));

    // The scrape is well-formed by the same checker the unit tests use,
    // and carries the series dashboards rely on — including pretraining
    // phases (this daemon booted from scratch) and the submit above.
    let (status, body) = daemon.scrape("/metrics");
    assert!(status.contains("200"), "scrape status: {status}");
    check_prometheus(&body).expect("live scrape must validate");
    for series in [
        "streamtune_build_info",
        "streamtune_uptime_seconds",
        "streamtune_requests_total",
        "streamtune_request_duration_nanoseconds",
        "streamtune_pretrain_phase_duration_nanoseconds",
    ] {
        assert!(body.contains(series), "scrape must carry {series}");
    }
    assert!(body.contains("verb=\"submit\""), "submit must be counted");

    // The JSON mirror parses; the protocol's `metrics` verb answers the
    // same registry in-band.
    let (status, body) = daemon.scrape("/metrics.json");
    assert!(status.contains("200"), "json status: {status}");
    serde_json::from_str::<serde_json::Value>(&body).expect("metrics.json parses");

    // The flight recorder's history endpoint serves ordered delta frames;
    // every scrape records one, so a second scrape must strictly advance.
    let mut newest_per_round = Vec::new();
    for _ in 0..2 {
        let (status, body) = daemon.scrape("/metrics/history.json");
        assert!(status.contains("200"), "history status: {status}");
        let history =
            serde_json::from_str::<serde_json::Value>(&body).expect("history.json parses");
        assert!(
            matches!(history.field("enabled"), Ok(serde_json::Value::Bool(true))),
            "history must report telemetry enabled"
        );
        let frames = match history.field("frames").expect("frames field") {
            serde_json::Value::Array(frames) => frames,
            other => panic!("frames must be an array, got {other:?}"),
        };
        assert!(!frames.is_empty(), "scrape must record a frame");
        let mut prev: Option<u64> = None;
        for frame in frames {
            let seq = match frame.field("seq").expect("frame seq") {
                serde_json::Value::U64(seq) => *seq,
                other => panic!("seq must be u64, got {other:?}"),
            };
            if let Some(prev) = prev {
                assert!(
                    seq > prev,
                    "frame seqs must strictly increase: {seq} ≤ {prev}"
                );
            }
            prev = Some(seq);
            assert!(
                matches!(frame.field("series"), Ok(serde_json::Value::Array(_))),
                "each frame carries a series array"
            );
        }
        newest_per_round.push(prev.unwrap());
    }
    assert!(
        newest_per_round[1] > newest_per_round[0],
        "each scrape must append a fresh frame: {newest_per_round:?}"
    );
    match daemon.request("\"metrics\"") {
        Response::Metrics(value) => {
            let line = serde_json::to_string(&value).expect("metrics serialize");
            assert!(line.contains("streamtune_requests_total"), "{line}");
        }
        other => panic!("expected metrics, got {other:?}"),
    }

    assert!(matches!(
        daemon.request("\"shutdown\""),
        Response::ShuttingDown
    ));
    daemon.wait_exit(Duration::from_secs(60));

    // The trace log is flushed on exit and every line is JSON.
    let trace = std::fs::read_to_string(&trace_log).expect("trace log exists");
    assert!(!trace.trim().is_empty(), "trace log captured events");
    for line in trace.lines() {
        serde_json::from_str::<serde_json::Value>(line).expect("trace line parses as JSON");
    }
    std::fs::remove_file(&trace_log).ok();
}
