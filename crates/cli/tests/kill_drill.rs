//! Kill drill: the built `streamtune` binary survives process death.
//!
//! A serving daemon is SIGKILLed at scripted points around a drain; a
//! restart on the same store resumes the interrupted job from its epoch
//! journal and recommends **bit-identically** to an uninterrupted run —
//! across worker-pool widths. A SIGTERM instead drains gracefully: the
//! daemon finishes in-flight work, flushes the store and exits cleanly.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use streamtune_serve::Response;

/// A `streamtune serve --listen 127.0.0.1:0` daemon plus its resolved
/// address (parsed from the startup log).
struct Daemon {
    child: Child,
    addr: String,
}

/// Corpus seed for the daemon's pretraining run. Overridable so CI can
/// repeat the drill across seed sets; the resume invariant must hold for
/// every one of them.
fn drill_seed() -> String {
    std::env::var("KILL_DRILL_SEED").unwrap_or_else(|_| "91".to_string())
}

fn spawn_daemon(store: &Path, threads: &str) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_streamtune"))
        .args([
            "serve",
            "--store",
            store.to_str().expect("utf-8 store path"),
            "--listen",
            "127.0.0.1:0",
            "--fast",
            "--jobs",
            "12",
            "--seed",
            &drill_seed(),
            "--threads",
            threads,
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    let mut stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
    let addr = loop {
        let mut line = String::new();
        let n = stderr.read_line(&mut line).expect("daemon startup log");
        assert!(n > 0, "daemon exited before listening");
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            break rest
                .split_whitespace()
                .next()
                .expect("resolved address")
                .to_string();
        }
    };
    // Keep draining stderr so the daemon never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while stderr.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
            sink.clear();
        }
    });
    Daemon { child, addr }
}

impl Daemon {
    fn connect(&self) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(&self.addr).expect("connect to daemon");
        (
            BufReader::new(stream.try_clone().expect("clone stream")),
            stream,
        )
    }

    fn request(&self, line: &str) -> Response {
        let (mut reader, mut writer) = self.connect();
        writeln!(writer, "{line}").expect("send request");
        writer.flush().expect("flush request");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read response");
        serde_json::from_str(response.trim()).expect("valid response line")
    }

    /// Wait for a clean exit, bounded.
    fn wait_exit(mut self, budget: Duration) {
        let start = Instant::now();
        loop {
            match self.child.try_wait().expect("poll daemon") {
                Some(status) => {
                    assert!(status.success(), "daemon exited with {status}");
                    return;
                }
                None if start.elapsed() > budget => {
                    self.child.kill().ok();
                    panic!("daemon did not exit within {budget:?}");
                }
                None => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }
}

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "streamtune-kill-drill-{}-{name}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A multi-epoch spec (several journaled deployments) so a mid-tune kill
/// actually leaves a partial journal to resume from.
fn submit_line(name: &str) -> String {
    format!(
        "{{\"submit\": {{\"name\": \"{name}\", \"query\": \"pqp-linear-3\", \
         \"multiplier\": 12.0, \"seed\": 5, \"engine\": \"flink\", \"backend\": \"sim\"}}}}"
    )
}

fn degrees(daemon: &Daemon, job: &str) -> Vec<u32> {
    match daemon.request(&format!("{{\"recommend\": {{\"job\": \"{job}\"}}}}")) {
        Response::Recommendation(rec) => rec.degrees,
        other => panic!("expected recommendation for {job}, got {other:?}"),
    }
}

#[test]
fn sigkill_around_a_drain_resumes_bit_identical_across_thread_counts() {
    let mut per_threads: Vec<Vec<u32>> = Vec::new();
    for threads in ["1", "4"] {
        let store = temp_store(&format!("kill-{threads}"));

        // The uninterrupted reference run (also pre-trains the store once;
        // every later boot loads it without retraining).
        let daemon = spawn_daemon(&store, threads);
        assert!(matches!(
            daemon.request(&submit_line("reference")),
            Response::Submitted { .. }
        ));
        let reference = degrees(&daemon, "reference");
        assert!(matches!(
            daemon.request("\"drain\""),
            Response::Draining { .. }
        ));
        daemon.wait_exit(Duration::from_secs(60));

        // SIGKILL at scripted points around the drain: immediately after
        // it is requested, and mid-flight. Whatever the journal holds —
        // nothing, a prefix, or every epoch — the restart must land on
        // the same recommendation.
        for (i, kill_after) in [Duration::ZERO, Duration::from_millis(40)]
            .into_iter()
            .enumerate()
        {
            let victim = format!("victim-{i}");
            let mut daemon = spawn_daemon(&store, threads);
            assert!(matches!(
                daemon.request(&submit_line(&victim)),
                Response::Submitted { .. }
            ));
            // Ask for the drain but never await the reply: the kill races
            // the tuning run itself.
            let (_reader, mut writer) = daemon.connect();
            writeln!(writer, "\"status\"").expect("send drain trigger");
            writer.flush().expect("flush drain trigger");
            std::thread::sleep(kill_after);
            daemon.child.kill().expect("SIGKILL");
            daemon.child.wait().expect("reap");

            let reborn = spawn_daemon(&store, threads);
            assert_eq!(
                degrees(&reborn, &victim),
                reference,
                "threads {threads}, kill point {i}: resumed outcome diverged"
            );
            assert!(matches!(
                reborn.request("\"drain\""),
                Response::Draining { .. }
            ));
            reborn.wait_exit(Duration::from_secs(60));
        }
        per_threads.push(reference);
        std::fs::remove_dir_all(&store).ok();
    }
    assert_eq!(
        per_threads[0], per_threads[1],
        "worker-pool width must not change the recommendation"
    );
}

#[test]
fn sigterm_drains_gracefully_and_a_restart_serves_the_flushed_result() {
    let store = temp_store("sigterm");
    let daemon = spawn_daemon(&store, "1");
    assert!(matches!(
        daemon.request(&submit_line("parting")),
        Response::Submitted { .. }
    ));

    // SIGTERM, not a protocol verb: the accept loop notices, finishes and
    // journals the queued work, flushes the store and exits cleanly
    // within the drain budget.
    let pid = daemon.child.id().to_string();
    let status = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("send SIGTERM");
    assert!(status.success());
    daemon.wait_exit(Duration::from_secs(60));

    // The drained store restores the finished job: the restart answers
    // `recommend` without re-running anything.
    let reborn = spawn_daemon(&store, "1");
    assert!(!degrees(&reborn, "parting").is_empty());
    assert!(matches!(
        reborn.request("\"shutdown\""),
        Response::ShuttingDown
    ));
    reborn.wait_exit(Duration::from_secs(60));
    std::fs::remove_dir_all(&store).ok();
}
