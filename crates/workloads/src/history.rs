//! Execution-history generation — the substitute for a production
//! cluster's accumulated past runs (paper §II-A "Dataflow Execution
//! Histories", §V-A "Pre-training Setup").
//!
//! Following the paper's setup: source rates are drawn uniformly from
//! `(1 Wu, 10 Wu)`, parallelism degrees uniformly from `[1, 60]` per
//! operator, and each deployment is executed (here: simulated) and its
//! observation recorded. The node-count mix of the corpus follows the
//! paper's Fig. 5 distribution.

use crate::rates::Engine;
use crate::{nexmark, pqp, Workload};
use serde::{Deserialize, Serialize};
use streamtune_dataflow::{
    AggregateClass, AggregateFunction, Dataflow, DataflowBuilder, JoinKeyClass, Operator,
    ParallelismAssignment, WindowPolicy, WindowType,
};
use streamtune_sim::{Observation, SimCluster};

/// One historical run of one streaming job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionRecord {
    /// The job's dataflow, with the source rates of this run.
    pub flow: Dataflow,
    /// The parallelism it ran at.
    pub assignment: ParallelismAssignment,
    /// What the engine's metrics showed.
    pub observation: Observation,
}

/// Fig. 5 node-count distribution of the pre-training corpus:
/// `(num_ops, fraction)`.
pub const FIG5_DISTRIBUTION: [(usize, f64); 9] = [
    (2, 0.0656),
    (3, 0.0820),
    (4, 0.0820),
    (5, 0.1148),
    (6, 0.1311),
    (7, 0.1639),
    (8, 0.1967),
    (9, 0.1311),
    (10, 0.0328),
];

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Rng64 {
    state: u64,
}

impl Rng64 {
    fn new(seed: u64) -> Self {
        Rng64 {
            state: splitmix(seed ^ 0xD15EA5E),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = splitmix(self.state);
        self.state
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Log-uniform integer in `[lo, hi]`: favors small values, matching the
    /// borderline deployments real clusters actually accumulate (and
    /// yielding informative bottleneck labels far more often than uniform
    /// sampling does).
    fn log_range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        let (a, b) = (f64::from(lo).ln(), f64::from(hi + 1).ln());
        let v = (a + self.unit() * (b - a)).exp();
        (v.floor() as u32).clamp(lo, hi)
    }

    fn range_f(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }
}

/// A randomized streaming job with `n_ops` operators, shaped like the
/// paper's corpus (chains plus occasional join fan-ins), used to fill the
/// Fig. 5 node-count distribution beyond the named benchmarks.
pub fn random_query(seed: u64, n_ops: usize) -> Workload {
    assert!((2..=16).contains(&n_ops));
    let mut rng = Rng64::new(seed);
    let name = format!("hist-{seed}-{n_ops}");
    let mut b = DataflowBuilder::new(&name);
    let wu = rng.range_f(20e3, 900e3);
    // Join-shaped when large enough and the coin says so.
    let join_shape = n_ops >= 5 && rng.unit() < 0.45;
    let mid_op = |rng: &mut Rng64, w: u32| -> Operator {
        match rng.next() % 5 {
            0 => Operator::map(w, w),
            1 => Operator::filter(rng.range_f(0.2, 0.9), w, w),
            2 => Operator::flatmap(rng.range_f(1.0, 2.0), w, w),
            3 => Operator::window_aggregate(
                AggregateFunction::Sum,
                AggregateClass::Int,
                JoinKeyClass::Int,
                WindowType::Tumbling,
                WindowPolicy::Time,
                rng.range_f(10.0, 120.0),
                0.0,
                rng.range_f(0.05, 0.4),
            ),
            _ => Operator::aggregate(
                AggregateFunction::Avg,
                AggregateClass::Float,
                JoinKeyClass::Int,
                rng.range_f(0.1, 0.6),
            ),
        }
    };
    let width = [32u32, 64, 128][(rng.next() % 3) as usize];
    let mut wu_list = vec![wu];
    if join_shape {
        let s1 = b.add_source("left", wu);
        let wu2 = rng.range_f(20e3, 900e3);
        wu_list.push(wu2);
        let s2 = b.add_source("right", wu2);
        let f1 = b.add_op("f-l", Operator::filter(rng.range_f(0.3, 0.9), width, width));
        let f2 = b.add_op("f-r", Operator::filter(rng.range_f(0.3, 0.9), width, width));
        b.connect_source(s1, f1);
        b.connect_source(s2, f2);
        let join = b.add_op(
            "join",
            Operator::window_join(
                JoinKeyClass::Int,
                WindowType::Tumbling,
                WindowPolicy::Time,
                rng.range_f(10.0, 60.0),
                0.0,
                rng.range_f(0.8, 1.8),
            ),
        );
        b.connect(f1, join);
        b.connect(f2, join);
        let mut prev = join;
        // f1, f2 and join are 3 ops; append n_ops - 3 more, ending in a sink.
        for i in 0..n_ops.saturating_sub(3) {
            let op = if i + 4 == n_ops {
                Operator::sink(32)
            } else {
                mid_op(&mut rng, width)
            };
            let id = b.add_op(format!("op{i}"), op);
            b.connect(prev, id);
            prev = id;
        }
    } else {
        let s = b.add_source("events", wu);
        let mut prev = None;
        for i in 0..n_ops {
            let op = if i + 1 == n_ops {
                Operator::sink(32)
            } else {
                mid_op(&mut rng, width)
            };
            let id = b.add_op(format!("op{i}"), op);
            match prev {
                None => {
                    b.connect_source(s, id);
                }
                Some(p) => {
                    b.connect(p, id);
                }
            }
            prev = Some(id);
        }
    }
    Workload::new(name, b.build().expect("valid random query"), wu_list)
}

/// Generates execution-history corpora on a simulated cluster.
#[derive(Debug, Clone)]
pub struct HistoryGenerator {
    /// RNG seed.
    pub seed: u64,
    /// Number of jobs (each job is run once at a random rate/parallelism;
    /// use `runs_per_job` for repeated runs).
    pub num_jobs: usize,
    /// Runs per job at independently random rates/parallelisms.
    pub runs_per_job: usize,
    /// Include the named Nexmark queries in the pool.
    pub include_nexmark: bool,
    /// Include the PQP templates in the pool.
    pub include_pqp: bool,
    /// Engine whose Table II units to use for named queries.
    pub engine: Engine,
    /// Workload names excluded from the pool (hold-out, paper §V-D).
    pub exclude: Vec<String>,
    /// Maximum parallelism sampled per operator (paper: `[1, 60]`).
    pub max_parallelism: u32,
}

impl HistoryGenerator {
    /// Defaults matching the paper's pre-training setup.
    pub fn new(seed: u64) -> Self {
        HistoryGenerator {
            seed,
            num_jobs: 60,
            runs_per_job: 2,
            include_nexmark: true,
            include_pqp: true,
            engine: Engine::Flink,
            exclude: Vec::new(),
            max_parallelism: 60,
        }
    }

    /// Set the number of jobs.
    pub fn with_jobs(mut self, n: usize) -> Self {
        self.num_jobs = n;
        self
    }

    /// Set runs per job.
    pub fn with_runs_per_job(mut self, n: usize) -> Self {
        self.runs_per_job = n.max(1);
        self
    }

    /// Exclude a workload by name (hold-out).
    pub fn excluding(mut self, name: impl Into<String>) -> Self {
        self.exclude.push(name.into());
        self
    }

    /// The job pool: named benchmarks plus Fig. 5-distributed random jobs.
    pub fn job_pool(&self) -> Vec<Workload> {
        let mut pool = Vec::new();
        if self.include_nexmark {
            pool.extend(nexmark::all(self.engine));
        }
        if self.include_pqp {
            pool.extend(pqp::linear_queries());
            pool.extend(pqp::two_way_join_queries());
            pool.extend(pqp::three_way_join_queries());
        }
        pool.retain(|w| !self.exclude.contains(&w.name));
        // Top up with random jobs following the Fig. 5 node-count mix.
        let mut rng = Rng64::new(self.seed);
        let mut i = 0u64;
        while pool.len() < self.num_jobs {
            let u = rng.unit();
            let mut acc = 0.0;
            let mut n_ops = 6;
            for &(n, frac) in &FIG5_DISTRIBUTION {
                acc += frac;
                if u <= acc {
                    n_ops = n;
                    break;
                }
            }
            pool.push(random_query(self.seed.wrapping_add(i * 7919), n_ops));
            i += 1;
        }
        pool.truncate(self.num_jobs);
        pool
    }

    /// Generate the corpus on `cluster`.
    pub fn generate(&self, cluster: &SimCluster) -> Vec<ExecutionRecord> {
        let pool = self.job_pool();
        let mut rng = Rng64::new(self.seed ^ 0xFEED);
        let mut out = Vec::with_capacity(pool.len() * self.runs_per_job);
        for (ji, w) in pool.iter().enumerate() {
            for run in 0..self.runs_per_job {
                // Rates uniform in (1 Wu, 10 Wu) — §V-A.
                let mult = rng.range_f(1.0, 10.0);
                let flow = w.at(mult);
                let degrees: Vec<u32> = (0..flow.num_ops())
                    .map(|_| rng.log_range_u32(1, self.max_parallelism))
                    .collect();
                let assignment = ParallelismAssignment::from_vec(degrees);
                let report = cluster.simulate_at(&flow, &assignment, (ji * 131 + run) as u64);
                out.push(ExecutionRecord {
                    flow,
                    assignment,
                    observation: report.observation,
                });
            }
        }
        out
    }
}

/// Synthesize `runs` execution records for one workload on `cluster`,
/// sampling rates and parallelisms exactly the way corpus generation does
/// (rates uniform in `(1 Wu, 10 Wu)`, log-uniform degrees in
/// `[1, max_parallelism]`). This is the *incremental corpus growth*
/// primitive: when a live job's DAG is structurally uncovered by the
/// pre-trained corpus, its records are appended and the model is
/// re-pretrained warm — only pairs involving the new structure pay A\*.
/// Deterministic in `(workload, cluster, seed, runs)`.
pub fn record_runs(
    cluster: &SimCluster,
    workload: &Workload,
    seed: u64,
    runs: usize,
    max_parallelism: u32,
) -> Vec<ExecutionRecord> {
    let mut rng = Rng64::new(seed ^ 0xFEED);
    let mut out = Vec::with_capacity(runs);
    for run in 0..runs {
        let mult = rng.range_f(1.0, 10.0);
        let flow = workload.at(mult);
        let degrees: Vec<u32> = (0..flow.num_ops())
            .map(|_| rng.log_range_u32(1, max_parallelism))
            .collect();
        let assignment = ParallelismAssignment::from_vec(degrees);
        let report = cluster.simulate_at(&flow, &assignment, (seed ^ run as u64) & 0xFFFF);
        out.push(ExecutionRecord {
            flow,
            assignment,
            observation: report.observation,
        });
    }
    out
}

/// Node-count histogram of a corpus (Fig. 5 reproduction).
pub fn node_count_histogram(records: &[ExecutionRecord]) -> Vec<(usize, usize)> {
    let mut counts = std::collections::BTreeMap::new();
    for r in records {
        *counts.entry(r.flow.num_ops()).or_insert(0usize) += 1;
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_volume() {
        let cluster = SimCluster::flink_defaults(7);
        let recs = HistoryGenerator::new(7)
            .with_jobs(20)
            .with_runs_per_job(3)
            .generate(&cluster);
        assert_eq!(recs.len(), 60);
    }

    #[test]
    fn rates_within_1_to_10_wu() {
        let cluster = SimCluster::flink_defaults(7);
        let gen = HistoryGenerator::new(9).with_jobs(10);
        let pool = gen.job_pool();
        let recs = gen.generate(&cluster);
        for (r, w) in recs
            .iter()
            .zip(pool.iter().flat_map(|w| std::iter::repeat_n(w, 2)))
        {
            for (s, &wu) in r.flow.sources().iter().zip(&w.wu) {
                let m = s.rate / wu;
                assert!((0.99..=10.01).contains(&m), "multiplier {m}");
            }
        }
    }

    #[test]
    fn parallelisms_within_1_to_60() {
        let cluster = SimCluster::flink_defaults(7);
        let recs = HistoryGenerator::new(3).with_jobs(15).generate(&cluster);
        for r in &recs {
            for (_, d) in r.assignment.iter() {
                assert!((1..=60).contains(&d));
            }
        }
    }

    #[test]
    fn excluding_removes_job() {
        let gen = HistoryGenerator::new(1)
            .with_jobs(70)
            .excluding("pqp-2way-0");
        assert!(gen.job_pool().iter().all(|w| w.name != "pqp-2way-0"));
    }

    #[test]
    fn deterministic_by_seed() {
        let cluster = SimCluster::flink_defaults(7);
        let a = HistoryGenerator::new(5).with_jobs(8).generate(&cluster);
        let b = HistoryGenerator::new(5).with_jobs(8).generate(&cluster);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].assignment, b[0].assignment);
    }

    #[test]
    fn random_query_is_valid_and_sized() {
        for n in 2..=10 {
            let w = random_query(n as u64 * 13, n);
            assert_eq!(w.flow.num_ops(), n, "requested {n} ops");
        }
    }

    #[test]
    fn record_runs_is_deterministic_and_in_range() {
        let cluster = SimCluster::flink_defaults(19);
        let w = crate::nexmark::q5(Engine::Flink);
        let a = record_runs(&cluster, &w, 77, 3, 60);
        let b = record_runs(&cluster, &w, 77, 3, 60);
        assert_eq!(a, b, "same inputs must grow identical records");
        assert_eq!(a.len(), 3);
        for r in &a {
            let m = r.flow.sources()[0].rate / w.wu[0];
            assert!((0.99..=10.01).contains(&m), "multiplier {m}");
            for (_, d) in r.assignment.iter() {
                assert!((1..=60).contains(&d));
            }
        }
        assert_ne!(
            record_runs(&cluster, &w, 78, 3, 60)[0].assignment,
            a[0].assignment,
            "different seeds must sample differently"
        );
    }

    #[test]
    fn histogram_covers_fig5_range() {
        let cluster = SimCluster::flink_defaults(7);
        let recs = HistoryGenerator::new(11)
            .with_jobs(120)
            .with_runs_per_job(1)
            .generate(&cluster);
        let hist = node_count_histogram(&recs);
        let sizes: Vec<usize> = hist.iter().map(|&(n, _)| n).collect();
        // The corpus must span the small-to-large range of Fig. 5.
        assert!(sizes.iter().any(|&n| n <= 3));
        assert!(sizes.iter().any(|&n| n >= 8));
    }
}
