//! Evaluation workloads (paper §V-A).
//!
//! * [`nexmark`] — logical DAGs for Nexmark Q1, Q2, Q3, Q5 and Q8, the
//!   queries used throughout the paper's evaluation;
//! * [`pqp`] — the PQP synthetic query templates from ZeroTune: Linear (8
//!   queries), 2-way-join (16) and 3-way-join (32);
//! * [`rates`] — Table II source-rate units and the periodic source-rate
//!   pattern (a fixed 10-step cycle, replicated and permuted into 120 rate
//!   changes per query);
//! * [`history`] — the execution-history generator that substitutes for a
//!   production cluster's past runs: randomized queries deployed at random
//!   rates and parallelisms on the simulator, recorded with observations.
//!
//! Source-rate calibration: the paper's absolute `Wu` values reflect the
//! authors' per-core throughputs. We keep the *relative* Table II structure
//! but scale the PQP units so the `10 Wu` operating point exercises the
//! same total-parallelism region (≈ 10–60) as paper Fig. 6 — documented in
//! `DESIGN.md` §1 and `EXPERIMENTS.md`.

pub mod history;
pub mod nexmark;
pub mod pqp;
pub mod rates;

use serde::{Deserialize, Serialize};
use streamtune_dataflow::{Dataflow, DataflowBuilder, Operator, SourceId};

/// A named workload: a logical dataflow plus its per-source rate units
/// (`Wu`, records/second at multiplier 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Query name (e.g. "nexmark-q5").
    pub name: String,
    /// The logical dataflow (source rates initialized at `1 Wu`).
    pub flow: Dataflow,
    /// `Wu` per source, in source-id order.
    pub wu: Vec<f64>,
}

impl Workload {
    /// Construct, initializing every source at `1 Wu`.
    pub fn new(name: impl Into<String>, mut flow: Dataflow, wu: Vec<f64>) -> Self {
        assert_eq!(flow.num_sources(), wu.len(), "one Wu per source");
        for (i, &u) in wu.iter().enumerate() {
            flow.set_source_rate(SourceId::new(i), u);
        }
        Workload {
            name: name.into(),
            flow,
            wu,
        }
    }

    /// Set every source to `multiplier × Wu` (the paper's `m·Wu` points).
    pub fn set_multiplier(&mut self, multiplier: f64) {
        assert!(multiplier >= 0.0);
        let rates: Vec<f64> = self.wu.iter().map(|u| u * multiplier).collect();
        self.flow.set_all_source_rates(&rates);
    }

    /// A clone of the dataflow at `multiplier × Wu`.
    pub fn at(&self, multiplier: f64) -> Dataflow {
        let mut w = self.clone();
        w.set_multiplier(multiplier);
        w.flow
    }

    /// A linear pipeline workload: one source feeding `op_names` chained
    /// in order, the last operator a sink.
    ///
    /// This is the shape of an ingested metrics dump — a scraper records
    /// per-operator rows but no edges, and production pipelines are
    /// overwhelmingly chains — so the trace ingester's callers use this
    /// to give the monitor a logical flow matching the dump's operators.
    /// Per-operator work is uniform (the ingested observations carry the
    /// real rates; the weights only matter if the flow is re-simulated).
    ///
    /// # Panics
    ///
    /// Panics if `op_names` is empty or `base_rate` is not positive.
    pub fn linear(name: impl Into<String>, op_names: &[String], base_rate: f64) -> Self {
        assert!(
            !op_names.is_empty(),
            "a pipeline needs at least one operator"
        );
        assert!(base_rate > 0.0, "source rate must be positive");
        let name = name.into();
        let mut b = DataflowBuilder::new(&name);
        let source = b.add_source("events", 1.0);
        let mut prev = None;
        for (i, op) in op_names.iter().enumerate() {
            let id = if i + 1 == op_names.len() {
                b.add_op(op, Operator::sink(48))
            } else {
                b.add_op(op, Operator::map(48, 48))
            };
            match prev {
                None => {
                    b.connect_source(source, id);
                }
                Some(p) => {
                    b.connect(p, id);
                }
            }
            prev = Some(id);
        }
        let flow = b.build().expect("a chain is always a valid dataflow");
        Workload::new(name, flow, vec![base_rate])
    }
}

/// Every named workload usable by name (CLI `--query`, serve-protocol
/// `submit`): the Nexmark queries for `engine` plus the full PQP family.
pub fn named_workloads(engine: rates::Engine) -> Vec<Workload> {
    let mut v = nexmark::all(engine);
    v.extend(pqp::linear_queries());
    v.extend(pqp::two_way_join_queries());
    v.extend(pqp::three_way_join_queries());
    v
}

/// Look up one named workload, `None` when the name is unknown.
pub fn find_workload(name: &str, engine: rates::Engine) -> Option<Workload> {
    named_workloads(engine).into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_workloads_are_unique_and_findable() {
        let all = named_workloads(rates::Engine::Flink);
        assert!(all.len() >= 5 + 8 + 16 + 32);
        let mut names: Vec<&str> = all.iter().map(|w| w.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "workload names must be unique");
        assert!(find_workload("nexmark-q5", rates::Engine::Flink).is_some());
        assert!(find_workload("no-such-query", rates::Engine::Flink).is_none());
    }

    #[test]
    fn multiplier_scales_all_sources() {
        let mut w = nexmark::q3(rates::Engine::Flink);
        w.set_multiplier(10.0);
        let total: f64 = w.flow.sources().iter().map(|s| s.rate).sum();
        let expected: f64 = w.wu.iter().map(|u| u * 10.0).sum();
        assert!((total - expected).abs() < 1e-6);
    }

    #[test]
    fn linear_builds_a_chain_with_a_sink_tail() {
        let names: Vec<String> = ["src", "mid", "out"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let w = Workload::linear("dump", &names, 500.0);
        assert_eq!(w.flow.num_ops(), 3);
        assert_eq!(w.flow.num_sources(), 1);
        assert_eq!(w.wu, vec![500.0]);
        for (i, name) in names.iter().enumerate() {
            assert_eq!(w.flow.op_name(streamtune_dataflow::OpId::new(i)), name);
        }
        // At 2×Wu the single source offers 1000 records/second.
        let flow = w.at(2.0);
        assert!((flow.sources()[0].rate - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn at_does_not_mutate_original() {
        let w = nexmark::q1(rates::Engine::Flink);
        let _high = w.at(10.0);
        assert_eq!(w.flow.sources()[0].rate, w.wu[0]);
    }
}
