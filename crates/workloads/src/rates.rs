//! Source-rate units (paper Table II) and the periodic rate pattern (§V-A).

use serde::{Deserialize, Serialize};

/// Which engine's rate units to use (Table II has separate columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Apache Flink column.
    Flink,
    /// Timely Dataflow column.
    Timely,
}

// Hand-written serde: the serve protocol (and the CLI's `--engine`
// flag) spell engines lowercase, so the wire format is "flink"/"timely"
// rather than the derived Rust variant names. Legacy capitalized
// spellings are still accepted on read.
impl Serialize for Engine {
    fn serialize(&self) -> serde::Value {
        serde::Value::String(
            match self {
                Engine::Flink => "flink",
                Engine::Timely => "timely",
            }
            .to_string(),
        )
    }
}

impl Deserialize for Engine {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        match String::deserialize(v)?.as_str() {
            "flink" | "Flink" => Ok(Engine::Flink),
            "timely" | "Timely" => Ok(Engine::Timely),
            other => Err(serde::Error::custom(format!(
                "engine must be \"flink\" or \"timely\", got `{other}`"
            ))),
        }
    }
}

/// Table II, Nexmark rows: `Wu` in records/second per source.
///
/// Returns `(bids, auctions, persons)` — zero when a query does not read
/// that stream.
pub fn nexmark_units(query: &str, engine: Engine) -> (f64, f64, f64) {
    match (query, engine) {
        ("q1", Engine::Flink) => (700e3, 0.0, 0.0),
        ("q1", Engine::Timely) => (9e6, 0.0, 0.0),
        ("q2", Engine::Flink) => (900e3, 0.0, 0.0),
        ("q2", Engine::Timely) => (9e6, 0.0, 0.0),
        ("q3", Engine::Flink) => (0.0, 200e3, 40e3),
        ("q3", Engine::Timely) => (0.0, 5e6, 5e6),
        ("q5", Engine::Flink) => (80e3, 0.0, 0.0),
        ("q5", Engine::Timely) => (10e6, 0.0, 0.0),
        ("q8", Engine::Flink) => (0.0, 100e3, 60e3),
        ("q8", Engine::Timely) => (0.0, 4e6, 4e6),
        _ => panic!("unknown Nexmark query/engine combination: {query}"),
    }
}

/// Table II, PQP rows (`Flink` column only in the paper), calibrated: the
/// paper's 5 K / 0.5 K / 0.25 K reflect their testbed's heavyweight PQP
/// operators; our simulator's per-core rates are higher, so we keep the
/// 20 : 2 : 1 ratio scaled ×100 to land in the same Fig. 6 parallelism
/// region (see `DESIGN.md` §1).
pub fn pqp_unit(template: &str) -> f64 {
    match template {
        "linear" => 500e3,
        "2-way-join" => 50e3,
        "3-way-join" => 25e3,
        _ => panic!("unknown PQP template: {template}"),
    }
}

/// The basic 10-step source-rate cycle of §V-A, in `Wu` multipliers.
pub const BASE_CYCLE: [f64; 10] = [3.0, 7.0, 4.0, 2.0, 1.0, 10.0, 8.0, 5.0, 6.0, 9.0];

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One 20-step periodic sequence: the base cycle replicated twice.
pub fn periodic_sequence() -> Vec<f64> {
    let mut v = BASE_CYCLE.to_vec();
    v.extend_from_slice(&BASE_CYCLE);
    v
}

/// A seeded permutation of the 20-step sequence (Fisher–Yates).
pub fn permuted_sequence(seed: u64) -> Vec<f64> {
    let mut v = periodic_sequence();
    let mut state = seed;
    for i in (1..v.len()).rev() {
        state = splitmix(state);
        let j = (state % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
    v
}

/// The full evaluation schedule of §V-A: six permutations of the 20-step
/// sequence → 120 source-rate changes per query.
pub fn full_schedule(seed: u64) -> Vec<f64> {
    (0..6)
        .flat_map(|k| permuted_sequence(seed.wrapping_add(k)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_has_120_changes() {
        let s = full_schedule(1);
        assert_eq!(s.len(), 120);
        assert!(s.iter().all(|&m| (1.0..=10.0).contains(&m)));
    }

    #[test]
    fn permutation_preserves_multiset() {
        let mut a = periodic_sequence();
        let mut b = permuted_sequence(99);
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn permutations_differ_by_seed() {
        assert_ne!(permuted_sequence(1), permuted_sequence(2));
        assert_eq!(permuted_sequence(7), permuted_sequence(7));
    }

    #[test]
    fn table2_units_match_paper() {
        assert_eq!(nexmark_units("q1", Engine::Flink).0, 700e3);
        assert_eq!(nexmark_units("q5", Engine::Timely).0, 10e6);
        assert_eq!(nexmark_units("q8", Engine::Flink), (0.0, 100e3, 60e3));
        assert_eq!(pqp_unit("linear") / pqp_unit("3-way-join"), 20.0);
    }

    #[test]
    #[should_panic(expected = "unknown Nexmark query")]
    fn unknown_query_panics() {
        nexmark_units("q99", Engine::Flink);
    }
}
