//! PQP synthetic query templates (paper §V-A, from ZeroTune).
//!
//! Three template families with seeded parameter variation: Linear
//! (8 queries), 2-way-join (16) and 3-way-join (32). Parameters vary
//! window type/policy/length, filter selectivities and tuple widths, so
//! the family exercises a spread of operator dependencies as in the
//! original generator.

use crate::rates::pqp_unit;
use crate::Workload;
use streamtune_dataflow::{
    AggregateClass, AggregateFunction, DataflowBuilder, JoinKeyClass, Operator, WindowPolicy,
    WindowType,
};

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Params {
    state: u64,
}

impl Params {
    fn new(seed: u64) -> Self {
        Params {
            state: splitmix(seed.wrapping_mul(0x9E37_79B9).wrapping_add(0xABCD)),
        }
    }

    fn next(&mut self) -> u64 {
        self.state = splitmix(self.state);
        self.state
    }

    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[(self.next() % options.len() as u64) as usize]
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() % 1000) as f64 / 1000.0 * (hi - lo)
    }
}

fn window(p: &mut Params) -> (WindowType, WindowPolicy, f64, f64) {
    let wt = p.pick(&[WindowType::Tumbling, WindowType::Sliding]);
    let wp = p.pick(&[WindowPolicy::Count, WindowPolicy::Time]);
    let len = p.range(10.0, 120.0);
    let slide = if wt == WindowType::Sliding {
        (len / p.range(2.0, 6.0)).max(1.0)
    } else {
        0.0
    };
    (wt, wp, len, slide)
}

fn agg_op(p: &mut Params, selectivity: f64) -> Operator {
    let (wt, wp, len, slide) = window(p);
    Operator::window_aggregate(
        p.pick(&[
            AggregateFunction::Min,
            AggregateFunction::Max,
            AggregateFunction::Avg,
            AggregateFunction::Sum,
            AggregateFunction::Count,
        ]),
        p.pick(&[AggregateClass::Int, AggregateClass::Float]),
        p.pick(&[JoinKeyClass::Int, JoinKeyClass::String]),
        wt,
        wp,
        len,
        slide,
        selectivity,
    )
}

fn join_op(p: &mut Params, selectivity: f64) -> Operator {
    let (wt, wp, len, slide) = window(p);
    Operator::window_join(
        p.pick(&[
            JoinKeyClass::Int,
            JoinKeyClass::String,
            JoinKeyClass::Composite,
        ]),
        wt,
        wp,
        len,
        slide,
        selectivity,
    )
}

/// One PQP Linear query: `source → filter [→ map] → window-agg → sink`.
pub fn linear_query(index: usize) -> Workload {
    let mut p = Params::new(index as u64);
    let wu = pqp_unit("linear");
    let name = format!("pqp-linear-{index}");
    let mut b = DataflowBuilder::new(&name);
    let s = b.add_source("events", wu);
    let width = p.pick(&[32u32, 64, 128]);
    let filter_sel = p.range(0.2, 0.8);
    let filter = b.add_op("filter", Operator::filter(filter_sel, width, width));
    b.connect_source(s, filter);
    let mut prev = filter;
    if index.is_multiple_of(2) {
        let map = b.add_op("map", Operator::map(width, width));
        b.connect(prev, map);
        prev = map;
    }
    let agg_sel = p.range(0.05, 0.3);
    let agg = b.add_op("window-agg", agg_op(&mut p, agg_sel));
    b.connect(prev, agg);
    let sink = b.add_op("sink", Operator::sink(32));
    b.connect(agg, sink);
    Workload::new(name, b.build().expect("valid linear query"), vec![wu])
}

/// One PQP 2-way-join query:
/// `2 × (source → filter) → window-join → window-agg → sink`.
pub fn two_way_join_query(index: usize) -> Workload {
    let mut p = Params::new(1000 + index as u64);
    let wu = pqp_unit("2-way-join");
    let name = format!("pqp-2way-{index}");
    let mut b = DataflowBuilder::new(&name);
    let s1 = b.add_source("left", wu);
    let s2 = b.add_source("right", wu);
    let w = p.pick(&[64u32, 128]);
    let (sel_l, sel_r) = (p.range(0.4, 0.9), p.range(0.4, 0.9));
    let f1 = b.add_op("filter-l", Operator::filter(sel_l, w, w));
    let f2 = b.add_op("filter-r", Operator::filter(sel_r, w, w));
    // Join selectivity > 1: window joins amplify (many matches per pane).
    let join_sel = p.range(1.0, 2.5);
    let join = b.add_op("join", join_op(&mut p, join_sel));
    let agg_sel = p.range(0.05, 0.3);
    let agg = b.add_op("agg", agg_op(&mut p, agg_sel));
    let sink = b.add_op("sink", Operator::sink(32));
    b.connect_source(s1, f1);
    b.connect_source(s2, f2);
    b.connect(f1, join);
    b.connect(f2, join);
    b.connect(join, agg);
    b.connect(agg, sink);
    Workload::new(name, b.build().expect("valid 2-way query"), vec![wu, wu])
}

/// One PQP 3-way-join query:
/// `3 × (source → filter) → join → join → window-agg → sink`.
pub fn three_way_join_query(index: usize) -> Workload {
    let mut p = Params::new(2000 + index as u64);
    let wu = pqp_unit("3-way-join");
    let name = format!("pqp-3way-{index}");
    let mut b = DataflowBuilder::new(&name);
    let s1 = b.add_source("a", wu);
    let s2 = b.add_source("b", wu);
    let s3 = b.add_source("c", wu);
    let w = p.pick(&[64u32, 128]);
    let (sa_, sb_, sc_) = (p.range(0.4, 0.9), p.range(0.4, 0.9), p.range(0.4, 0.9));
    let f1 = b.add_op("filter-a", Operator::filter(sa_, w, w));
    let f2 = b.add_op("filter-b", Operator::filter(sb_, w, w));
    let f3 = b.add_op("filter-c", Operator::filter(sc_, w, w));
    let j1_sel = p.range(1.0, 2.0);
    let j1 = b.add_op("join-ab", join_op(&mut p, j1_sel));
    let j2_sel = p.range(0.8, 1.8);
    let j2 = b.add_op("join-abc", join_op(&mut p, j2_sel));
    let agg_sel = p.range(0.05, 0.3);
    let agg = b.add_op("agg", agg_op(&mut p, agg_sel));
    let sink = b.add_op("sink", Operator::sink(32));
    b.connect_source(s1, f1);
    b.connect_source(s2, f2);
    b.connect_source(s3, f3);
    b.connect(f1, j1);
    b.connect(f2, j1);
    b.connect(j1, j2);
    b.connect(f3, j2);
    b.connect(j2, agg);
    b.connect(agg, sink);
    Workload::new(
        name,
        b.build().expect("valid 3-way query"),
        vec![wu, wu, wu],
    )
}

/// All 8 Linear queries (paper §V-A).
pub fn linear_queries() -> Vec<Workload> {
    (0..8).map(linear_query).collect()
}

/// All 16 2-way-join queries.
pub fn two_way_join_queries() -> Vec<Workload> {
    (0..16).map(two_way_join_query).collect()
}

/// All 32 3-way-join queries.
pub fn three_way_join_queries() -> Vec<Workload> {
    (0..32).map(three_way_join_query).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_counts_match_paper() {
        assert_eq!(linear_queries().len(), 8);
        assert_eq!(two_way_join_queries().len(), 16);
        assert_eq!(three_way_join_queries().len(), 32);
    }

    #[test]
    fn queries_are_deterministic() {
        let a = linear_query(3);
        let b = linear_query(3);
        assert_eq!(a.flow, b.flow);
    }

    #[test]
    fn queries_vary_by_index() {
        let a = two_way_join_query(0);
        let b = two_way_join_query(1);
        assert_ne!(a.flow, b.flow);
    }

    #[test]
    fn three_way_has_expected_shape() {
        let w = three_way_join_query(5);
        assert_eq!(w.flow.num_sources(), 3);
        assert_eq!(w.flow.num_ops(), 7); // 3 filters + 2 joins + agg + sink
        let joins = w.flow.ops().filter(|(_, o)| o.kind().is_binary()).count();
        assert_eq!(joins, 2);
    }

    #[test]
    fn linear_has_no_joins() {
        for w in linear_queries() {
            assert!(w.flow.ops().all(|(_, o)| !o.kind().is_binary()));
        }
    }

    #[test]
    fn node_counts_in_fig5_range() {
        for w in linear_queries()
            .into_iter()
            .chain(two_way_join_queries())
            .chain(three_way_join_queries())
        {
            let n = w.flow.num_ops();
            assert!((2..=10).contains(&n), "{} has {n} ops", w.name);
        }
    }
}
