//! Nexmark benchmark queries as logical dataflow DAGs (paper §V-A).
//!
//! Q1/Q2 are stateless (map, filter); Q3 is a stateful record-at-a-time
//! two-input incremental join; Q5 and Q8 carry sliding- and tumbling-window
//! joins respectively — exactly the operator mix the paper highlights.

use crate::rates::{nexmark_units, Engine};
use crate::Workload;
use streamtune_dataflow::{
    AggregateClass, AggregateFunction, DataflowBuilder, JoinKeyClass, Operator, WindowPolicy,
    WindowType,
};

/// Q1 — currency conversion: `bids → map → sink` (stateless map).
pub fn q1(engine: Engine) -> Workload {
    let (bids, _, _) = nexmark_units("q1", engine);
    let mut b = DataflowBuilder::new("nexmark-q1");
    let s = b.add_source("bids", bids);
    let map = b.add_op("currency-map", Operator::map(48, 48));
    let sink = b.add_op("sink", Operator::sink(48));
    b.connect_source(s, map);
    b.connect(map, sink);
    Workload::new("nexmark-q1", b.build().expect("valid q1"), vec![bids])
}

/// Q2 — selection: `bids → filter → sink` (stateless filter).
pub fn q2(engine: Engine) -> Workload {
    let (bids, _, _) = nexmark_units("q2", engine);
    let mut b = DataflowBuilder::new("nexmark-q2");
    let s = b.add_source("bids", bids);
    let filter = b.add_op("auction-filter", Operator::filter(0.1, 48, 48));
    let sink = b.add_op("sink", Operator::sink(48));
    b.connect_source(s, filter);
    b.connect(filter, sink);
    Workload::new("nexmark-q2", b.build().expect("valid q2"), vec![bids])
}

/// Q3 — local item suggestion: incremental join of filtered persons with
/// auctions (stateful record-at-a-time two-input join).
pub fn q3(engine: Engine) -> Workload {
    let (_, auctions, persons) = nexmark_units("q3", engine);
    let mut b = DataflowBuilder::new("nexmark-q3");
    let sa = b.add_source("auctions", auctions);
    let sp = b.add_source("persons", persons);
    let fa = b.add_op("category-filter", Operator::filter(0.25, 64, 64));
    let fp = b.add_op("state-filter", Operator::filter(0.2, 72, 72));
    let join = b.add_op(
        "incremental-join",
        Operator::incremental_join(JoinKeyClass::Int, 0.6, 96),
    );
    let sink = b.add_op("sink", Operator::sink(96));
    b.connect_source(sa, fa);
    b.connect_source(sp, fp);
    b.connect(fa, join);
    b.connect(fp, join);
    b.connect(join, sink);
    Workload::new(
        "nexmark-q3",
        b.build().expect("valid q3"),
        vec![auctions, persons],
    )
}

/// Q5 — hot items: sliding-window count per auction, then a windowed max
/// (sliding window join family in the paper's taxonomy).
pub fn q5(engine: Engine) -> Workload {
    let (bids, _, _) = nexmark_units("q5", engine);
    let mut b = DataflowBuilder::new("nexmark-q5");
    let s = b.add_source("bids", bids);
    let count = b.add_op(
        "sliding-count",
        Operator::window_aggregate(
            AggregateFunction::Count,
            AggregateClass::Int,
            JoinKeyClass::Int,
            WindowType::Sliding,
            WindowPolicy::Time,
            60.0,
            10.0,
            0.05,
        ),
    );
    let max = b.add_op(
        "hot-items-max",
        Operator::window_aggregate(
            AggregateFunction::Max,
            AggregateClass::Int,
            JoinKeyClass::None,
            WindowType::Sliding,
            WindowPolicy::Time,
            60.0,
            10.0,
            0.2,
        ),
    );
    let sink = b.add_op("sink", Operator::sink(32));
    b.connect_source(s, count);
    b.connect(count, max);
    b.connect(max, sink);
    Workload::new("nexmark-q5", b.build().expect("valid q5"), vec![bids])
}

/// Q8 — monitor new users: tumbling windows over persons and auctions
/// joined on person id (tumbling window join).
pub fn q8(engine: Engine) -> Workload {
    let (_, auctions, persons) = nexmark_units("q8", engine);
    let mut b = DataflowBuilder::new("nexmark-q8");
    let sp = b.add_source("persons", persons);
    let sa = b.add_source("auctions", auctions);
    let wp = b.add_op(
        "persons-window",
        Operator::window_aggregate(
            AggregateFunction::Count,
            AggregateClass::Int,
            JoinKeyClass::Int,
            WindowType::Tumbling,
            WindowPolicy::Time,
            10.0,
            0.0,
            0.8,
        ),
    );
    let wa = b.add_op(
        "auctions-window",
        Operator::window_aggregate(
            AggregateFunction::Count,
            AggregateClass::Int,
            JoinKeyClass::Int,
            WindowType::Tumbling,
            WindowPolicy::Time,
            10.0,
            0.0,
            0.8,
        ),
    );
    let join = b.add_op(
        "window-join",
        Operator::window_join(
            JoinKeyClass::Int,
            WindowType::Tumbling,
            WindowPolicy::Time,
            10.0,
            0.0,
            0.5,
        ),
    );
    let sink = b.add_op("sink", Operator::sink(96));
    b.connect_source(sp, wp);
    b.connect_source(sa, wa);
    b.connect(wp, join);
    b.connect(wa, join);
    b.connect(join, sink);
    Workload::new(
        "nexmark-q8",
        b.build().expect("valid q8"),
        vec![persons, auctions],
    )
}

/// All five evaluation queries for an engine, in paper order.
pub fn all(engine: Engine) -> Vec<Workload> {
    vec![q1(engine), q2(engine), q3(engine), q5(engine), q8(engine)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamtune_dataflow::OperatorKind;

    #[test]
    fn all_queries_build() {
        for engine in [Engine::Flink, Engine::Timely] {
            let ws = all(engine);
            assert_eq!(ws.len(), 5);
            for w in &ws {
                assert!(w.flow.num_ops() >= 2);
                assert!(!w.flow.sinks().is_empty());
            }
        }
    }

    #[test]
    fn q3_has_incremental_join_with_two_inputs() {
        let w = q3(Engine::Flink);
        let join = w
            .flow
            .ops()
            .find(|(_, o)| o.kind() == OperatorKind::IncrementalJoin)
            .map(|(id, _)| id)
            .expect("q3 has an incremental join");
        assert_eq!(w.flow.preds(join).len(), 2);
    }

    #[test]
    fn q5_uses_sliding_windows() {
        let w = q5(Engine::Flink);
        let sliding = w
            .flow
            .ops()
            .filter(|(_, o)| o.features.window_type == streamtune_dataflow::WindowType::Sliding)
            .count();
        assert_eq!(sliding, 2);
    }

    #[test]
    fn q8_uses_tumbling_join() {
        let w = q8(Engine::Flink);
        let join = w
            .flow
            .ops()
            .find(|(_, o)| o.kind() == OperatorKind::WindowJoin)
            .expect("q8 has a window join");
        assert_eq!(
            join.1.features.window_type,
            streamtune_dataflow::WindowType::Tumbling
        );
    }

    #[test]
    fn timely_rates_exceed_flink_rates() {
        for q in ["q1", "q2", "q5"] {
            let f = nexmark_units(q, Engine::Flink).0;
            let t = nexmark_units(q, Engine::Timely).0;
            assert!(t > f, "{q}: timely {t} vs flink {f}");
        }
    }

    #[test]
    fn two_source_queries_have_two_wu() {
        assert_eq!(q3(Engine::Flink).wu.len(), 2);
        assert_eq!(q8(Engine::Flink).wu.len(), 2);
        assert_eq!(q1(Engine::Flink).wu.len(), 1);
    }
}
