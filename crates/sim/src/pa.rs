//! Ground-truth processing-ability model `PA(p)`.
//!
//! Paper §II-A defines processing ability (PA) as the records/second an
//! operator sustains per unit of useful time. Paper Fig. 4 measures PA
//! against parallelism on Flink for a filter and a window operator and shows
//! a *monotonically increasing, mildly sub-linear* relationship with a
//! bottleneck threshold where PA crosses the offered rate.
//!
//! We model `PA(p) = base_rate · p^α · jitter`, with
//! * `base_rate` derived from the operator's static features (kind cost,
//!   tuple width, window configuration),
//! * `α < 1` capturing coordination/state-shuffling overhead (lower for
//!   stateful operators),
//! * a deterministic per-operator jitter so that "the same" operator in two
//!   different jobs has slightly different constants, as on real clusters.
//!
//! Tuners never see this module's outputs directly — only the noisy
//! observations derived from them (see [`crate::noise`]).

use serde::{Deserialize, Serialize};
use streamtune_dataflow::{Dataflow, OpId, OperatorKind, StaticFeatures};

/// Base per-record cost in microseconds for one parallel instance, by kind.
fn kind_base_cost_us(kind: OperatorKind) -> f64 {
    match kind {
        OperatorKind::Map => 1.0,
        OperatorKind::FlatMap => 1.4,
        OperatorKind::Filter => 0.7,
        OperatorKind::IncrementalJoin => 3.2,
        OperatorKind::WindowJoin => 4.6,
        OperatorKind::WindowAggregate => 3.4,
        OperatorKind::Aggregate => 2.1,
        OperatorKind::KeyBy => 0.9,
        OperatorKind::Sink => 0.5,
    }
}

/// Scaling exponent α by statefulness. Stateful operators pay more
/// coordination overhead, so they scale worse (paper Fig. 4: the window
/// operator's curve is flatter than the filter's).
fn scaling_alpha(kind: OperatorKind) -> f64 {
    if kind.is_stateful() {
        0.88
    } else {
        0.94
    }
}

/// Deterministic hash → uniform in [0,1).
fn hash_unit(seed: u64, a: u64, b: u64) -> f64 {
    // SplitMix64 over the combined key.
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(a.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(b.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

fn hash_str(s: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The ground-truth performance profile of one cluster: maps an operator
/// (by its static features and identity) to its processing ability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfProfile {
    /// Seed controlling per-operator jitter (the "hardware" identity).
    pub seed: u64,
    /// Relative magnitude of per-operator jitter (0.1 → ±10 %).
    pub jitter: f64,
    /// Global speed multiplier (1.0 = the defaults documented above).
    pub speed: f64,
}

impl Default for PerfProfile {
    fn default() -> Self {
        PerfProfile {
            seed: 0x00C0_FFEE,
            jitter: 0.10,
            speed: 1.0,
        }
    }
}

impl PerfProfile {
    /// Profile with an explicit seed and default jitter/speed.
    pub fn with_seed(seed: u64) -> Self {
        PerfProfile {
            seed,
            ..Default::default()
        }
    }

    /// Per-record cost (µs) of one parallel instance of an operator with
    /// static features `f`.
    pub fn cost_per_record_us(&self, f: &StaticFeatures) -> f64 {
        let base = kind_base_cost_us(f.kind);
        // Wider tuples cost more to (de)serialize; paper §II-A "Useful Time"
        // includes serialization+computation+deserialization.
        let width_factor = 1.0 + (f.tuple_width_in + f.tuple_width_out) / 512.0;
        // Windowed state maintenance scales gently with window size; sliding
        // windows pay once per overlapping pane.
        let window_factor = if f.window_length > 0.0 {
            let panes = if f.sliding_length > 0.0 {
                (f.window_length / f.sliding_length).max(1.0)
            } else {
                1.0
            };
            1.0 + 0.08 * (1.0 + f.window_length).log2() + 0.05 * (panes - 1.0)
        } else {
            1.0
        };
        base * width_factor * window_factor / self.speed
    }

    /// Ground-truth per-instance rate (records/second at `p = 1`) for
    /// operator `op` of `flow`, including its deterministic jitter.
    pub fn base_rate(&self, flow: &Dataflow, op: OpId) -> f64 {
        let f = &flow.op(op).features;
        let raw = 1.0e6 / self.cost_per_record_us(f);
        let u = hash_unit(self.seed, hash_str(flow.name()), op.index() as u64);
        let jitter = 1.0 + self.jitter * (2.0 * u - 1.0);
        raw * jitter
    }

    /// Ground-truth processing ability of operator `op` at parallelism `p`.
    ///
    /// `PA(p) = base_rate · p^α` — strictly increasing in `p`, sub-linear,
    /// matching the observed behaviour the paper's monotonic constraint is
    /// built on (§IV-B).
    pub fn pa(&self, flow: &Dataflow, op: OpId, p: u32) -> f64 {
        assert!(p >= 1, "parallelism must be >= 1");
        let alpha = scaling_alpha(flow.op(op).kind());
        self.base_rate(flow, op) * f64::from(p).powf(alpha)
    }

    /// The smallest parallelism whose PA sustains `rate`, or `None` if even
    /// `max_p` cannot. This is the *oracle* optimum used to score tuners in
    /// tests (tuners themselves must discover it from observations).
    pub fn oracle_min_parallelism(
        &self,
        flow: &Dataflow,
        op: OpId,
        rate: f64,
        max_p: u32,
    ) -> Option<u32> {
        (1..=max_p).find(|&p| self.pa(flow, op, p) >= rate)
    }
}

/// A sampled PA curve for one operator — used by the Fig. 4 reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProcessingAbility {
    /// Operator the curve belongs to.
    pub op: OpId,
    /// `(parallelism, PA records/second)` samples.
    pub curve: Vec<(u32, f64)>,
    /// Offered input rate against which the bottleneck threshold is defined.
    pub offered_rate: f64,
    /// Smallest sampled parallelism with `PA ≥ offered_rate`, if any.
    pub bottleneck_threshold: Option<u32>,
}

impl ProcessingAbility {
    /// Sweep `p ∈ [1, max_p]` for `op` and locate the bottleneck threshold
    /// at `offered_rate` (paper Fig. 4).
    pub fn sweep(
        profile: &PerfProfile,
        flow: &Dataflow,
        op: OpId,
        max_p: u32,
        offered_rate: f64,
    ) -> Self {
        let curve: Vec<(u32, f64)> = (1..=max_p).map(|p| (p, profile.pa(flow, op, p))).collect();
        let bottleneck_threshold = curve
            .iter()
            .find(|&&(_, pa)| pa >= offered_rate)
            .map(|&(p, _)| p);
        ProcessingAbility {
            op,
            curve,
            offered_rate,
            bottleneck_threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamtune_dataflow::{DataflowBuilder, Operator};

    fn flow_with(op: Operator) -> (Dataflow, OpId) {
        let mut b = DataflowBuilder::new("pa-test");
        let s = b.add_source("s", 1000.0);
        let id = b.add_op("op", op);
        b.connect_source(s, id);
        let flow = b.build().unwrap();
        (flow, id)
    }

    #[test]
    fn pa_is_strictly_monotonic_in_parallelism() {
        let (flow, op) = flow_with(Operator::filter(0.5, 32, 32));
        let prof = PerfProfile::default();
        let mut prev = 0.0;
        for p in 1..=64 {
            let pa = prof.pa(&flow, op, p);
            assert!(pa > prev, "PA must strictly increase: p={p}");
            prev = pa;
        }
    }

    #[test]
    fn pa_is_sublinear() {
        let (flow, op) = flow_with(Operator::filter(0.5, 32, 32));
        let prof = PerfProfile::default();
        let pa1 = prof.pa(&flow, op, 1);
        let pa16 = prof.pa(&flow, op, 16);
        assert!(pa16 < 16.0 * pa1, "16x parallelism must yield < 16x PA");
        assert!(pa16 > 8.0 * pa1, "scaling should still be near-linear");
    }

    #[test]
    fn stateful_scales_worse_than_stateless() {
        let (f1, o1) = flow_with(Operator::filter(0.5, 32, 32));
        let (f2, o2) = flow_with(Operator::window_aggregate(
            streamtune_dataflow::AggregateFunction::Count,
            streamtune_dataflow::AggregateClass::Int,
            streamtune_dataflow::JoinKeyClass::Int,
            streamtune_dataflow::WindowType::Tumbling,
            streamtune_dataflow::WindowPolicy::Time,
            60.0,
            0.0,
            0.01,
        ));
        let prof = PerfProfile::default();
        let gain1 = prof.pa(&f1, o1, 32) / prof.pa(&f1, o1, 1);
        let gain2 = prof.pa(&f2, o2, 32) / prof.pa(&f2, o2, 1);
        assert!(
            gain1 > gain2,
            "stateless speedup {gain1} should exceed stateful {gain2}"
        );
    }

    #[test]
    fn filter_is_faster_than_window_join_per_instance() {
        let (f1, o1) = flow_with(Operator::filter(0.5, 32, 32));
        let (f2, o2) = flow_with(Operator::window_join(
            streamtune_dataflow::JoinKeyClass::Int,
            streamtune_dataflow::WindowType::Sliding,
            streamtune_dataflow::WindowPolicy::Time,
            60.0,
            10.0,
            0.5,
        ));
        let prof = PerfProfile::default();
        assert!(prof.base_rate(&f1, o1) > prof.base_rate(&f2, o2));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let (flow, op) = flow_with(Operator::map(32, 32));
        let prof = PerfProfile::default();
        assert_eq!(prof.base_rate(&flow, op), prof.base_rate(&flow, op));
        let no_jitter = PerfProfile {
            jitter: 0.0,
            ..PerfProfile::default()
        };
        let ratio = prof.base_rate(&flow, op) / no_jitter.base_rate(&flow, op);
        assert!((0.9..=1.1).contains(&ratio), "jitter within ±10%: {ratio}");
    }

    #[test]
    fn different_seeds_give_different_rates() {
        let (flow, op) = flow_with(Operator::map(32, 32));
        let a = PerfProfile::with_seed(1).base_rate(&flow, op);
        let b = PerfProfile::with_seed(2).base_rate(&flow, op);
        assert_ne!(a, b);
    }

    #[test]
    fn sweep_finds_threshold() {
        let (flow, op) = flow_with(Operator::filter(0.5, 32, 32));
        let prof = PerfProfile::default();
        // Pick an offered rate reachable mid-sweep.
        let target = prof.pa(&flow, op, 10) * 1.001;
        let curve = ProcessingAbility::sweep(&prof, &flow, op, 25, target);
        let t = curve.bottleneck_threshold.unwrap();
        assert!((10..=12).contains(&t), "threshold near 11, got {t}");
        assert!(prof.pa(&flow, op, t) >= target);
        assert!(prof.pa(&flow, op, t - 1) < target);
    }

    #[test]
    fn oracle_min_parallelism_matches_sweep() {
        let (flow, op) = flow_with(Operator::filter(0.5, 32, 32));
        let prof = PerfProfile::default();
        let target = prof.pa(&flow, op, 7) * 1.0001;
        let oracle = prof.oracle_min_parallelism(&flow, op, target, 100).unwrap();
        assert_eq!(oracle, 8);
        assert!(prof
            .oracle_min_parallelism(&flow, op, f64::INFINITY, 100)
            .is_none());
    }

    #[test]
    fn oracle_respects_max_p() {
        let (flow, op) = flow_with(Operator::filter(0.5, 32, 32));
        let prof = PerfProfile::default();
        let huge = prof.pa(&flow, op, 50);
        assert!(prof.oracle_min_parallelism(&flow, op, huge, 10).is_none());
    }
}
