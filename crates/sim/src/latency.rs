//! Per-epoch latency model for the Timely-mode evaluation (paper Fig. 8).
//!
//! Paper §V-F: "per-epoch latency measures the time required to process one
//! epoch of data, where an epoch represents a fixed time interval or a
//! predefined data volume in Timely".
//!
//! Model: the latency of an epoch is dominated by the most loaded operator.
//! For utilization `ρ = arrivals / PA < 1`, an epoch's drain time follows a
//! queueing-style `base / (1 − ρ)` curve; at `ρ ≥ 1` backlog accumulates
//! across epochs and latency grows linearly with the deficit. A small
//! deterministic noise term widens the distribution like real measurements.

use crate::noise::NoiseModel;
use crate::pa::PerfProfile;
use crate::rates::timely_steady_state;
use serde::{Deserialize, Serialize};
use streamtune_dataflow::{Dataflow, ParallelismAssignment};

/// Configuration of the epoch latency model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Epoch length in seconds of source data.
    pub epoch_seconds: f64,
    /// Fixed pipeline overhead per epoch (scheduling, progress tracking).
    pub base_latency: f64,
    /// Multiplicative noise sigma on each epoch's latency.
    pub sigma: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            epoch_seconds: 1.0,
            base_latency: 0.08,
            sigma: 0.25,
        }
    }
}

impl LatencyModel {
    /// Simulate `epochs` consecutive epochs of `flow` at `assignment` and
    /// return each epoch's latency in seconds.
    ///
    /// Backlog carries over between epochs: a saturated operator's queue
    /// deepens every epoch, so its latencies climb — exactly the heavy tail
    /// visible in the paper's CDFs when parallelism is insufficient.
    pub fn simulate_epochs(
        &self,
        profile: &PerfProfile,
        noise: &NoiseModel,
        flow: &Dataflow,
        assignment: &ParallelismAssignment,
        epochs: usize,
    ) -> Vec<f64> {
        let st = timely_steady_state(profile, flow, assignment);
        let n = flow.num_ops();
        let mut backlog = vec![0.0_f64; n]; // records queued per operator
        let mut out = Vec::with_capacity(epochs);
        for e in 0..epochs {
            let mut worst = self.base_latency;
            for (i, backlog_i) in backlog.iter_mut().enumerate() {
                let pa = st.pa[i];
                if pa <= 0.0 {
                    continue;
                }
                let arrivals_per_epoch = st.arrivals[i] * self.epoch_seconds;
                let capacity_per_epoch = pa * self.epoch_seconds;
                let rho = st.arrivals[i] / pa;
                let op_latency = if rho < 1.0 {
                    // Queueing delay of the epoch batch at utilization rho,
                    // capped to remain finite near saturation.
                    let q = 1.0 / (1.0 - rho.min(0.995));
                    self.base_latency * q
                } else {
                    // Deficit accumulates; latency is the time to drain the
                    // standing backlog plus this epoch's batch.
                    *backlog_i += arrivals_per_epoch - capacity_per_epoch;
                    (*backlog_i + arrivals_per_epoch) / pa
                };
                worst = worst.max(op_latency);
            }
            let factor = (self.sigma * noise.gaussian(e as u64, 0x1A7E, 0)).exp();
            out.push(worst * factor);
        }
        out
    }

    /// Percentile (0–100) of a latency sample.
    pub fn percentile(samples: &[f64], pct: f64) -> f64 {
        assert!(!samples.is_empty());
        let mut v = samples.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = (pct / 100.0 * (v.len() - 1) as f64).round() as usize;
        v[rank.min(v.len() - 1)]
    }

    /// Empirical CDF points `(latency, fraction ≤ latency)` for plotting.
    pub fn cdf(samples: &[f64]) -> Vec<(f64, f64)> {
        let mut v = samples.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = v.len() as f64;
        v.into_iter()
            .enumerate()
            .map(|(i, x)| (x, (i + 1) as f64 / n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamtune_dataflow::{DataflowBuilder, Operator};

    fn flow(rate: f64) -> Dataflow {
        let mut b = DataflowBuilder::new("lat-test");
        let s = b.add_source("s", rate);
        let f = b.add_op("f", Operator::filter(0.5, 32, 32));
        let m = b.add_op("m", Operator::map(32, 32));
        b.connect_source(s, f);
        b.connect(f, m);
        b.build().unwrap()
    }

    #[test]
    fn provisioned_latency_is_low_and_stable() {
        let f = flow(1.0e4);
        let m = LatencyModel::default();
        let lat = m.simulate_epochs(
            &PerfProfile::default(),
            &NoiseModel::default(),
            &f,
            &ParallelismAssignment::uniform(&f, 8),
            200,
        );
        let p50 = LatencyModel::percentile(&lat, 50.0);
        let p99 = LatencyModel::percentile(&lat, 99.0);
        assert!(p50 < 0.5, "p50 {p50}");
        assert!(p99 < 2.0, "p99 {p99}");
    }

    #[test]
    fn saturated_latency_grows_across_epochs() {
        let f = flow(1.0e8);
        let m = LatencyModel::default();
        let lat = m.simulate_epochs(
            &PerfProfile::default(),
            &NoiseModel::new(1, 0.0),
            &f,
            &ParallelismAssignment::uniform(&f, 1),
            50,
        );
        assert!(lat[49] > lat[0], "latency grows under overload");
        assert!(lat[49] > 5.0, "late epochs severely delayed: {}", lat[49]);
    }

    #[test]
    fn higher_parallelism_lowers_latency() {
        let f = flow(2.0e6);
        let m = LatencyModel::default();
        let low = m.simulate_epochs(
            &PerfProfile::default(),
            &NoiseModel::new(2, 0.0),
            &f,
            &ParallelismAssignment::uniform(&f, 2),
            100,
        );
        let high = m.simulate_epochs(
            &PerfProfile::default(),
            &NoiseModel::new(2, 0.0),
            &f,
            &ParallelismAssignment::uniform(&f, 16),
            100,
        );
        assert!(
            LatencyModel::percentile(&high, 95.0) <= LatencyModel::percentile(&low, 95.0),
            "more parallelism should not raise p95"
        );
    }

    #[test]
    fn cdf_is_monotone_and_complete() {
        let samples = vec![3.0, 1.0, 2.0, 2.5];
        let cdf = LatencyModel::cdf(&samples);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn percentile_bounds() {
        let s = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(LatencyModel::percentile(&s, 0.0), 1.0);
        assert_eq!(LatencyModel::percentile(&s, 100.0), 4.0);
    }
}
