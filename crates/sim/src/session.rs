//! The cluster environment and tuning sessions.
//!
//! [`SimCluster`] is the substitute for "a Flink/Timely deployment": it owns
//! the ground-truth performance profile, the measurement noise model and
//! cluster limits (maximum per-operator parallelism, paper §V-A: 100 in
//! Flink, worker count in Timely).
//!
//! [`TuningSession`] wraps one tuning run of one job: every `deploy` is a
//! stop-and-restart reconfiguration (the paper's reconfiguration mechanism,
//! §V-A) that costs a stabilization wait, increments the reconfiguration
//! counter, records the CPU-utilization trace (Fig. 10) and counts
//! backpressure occurrences (Table III).

use crate::latency::LatencyModel;
use crate::metrics::{observe, EngineMode, Observation, SimulationReport};
use crate::noise::NoiseModel;
use crate::pa::PerfProfile;
use serde::{Deserialize, Serialize};
use streamtune_dataflow::{Dataflow, ParallelismAssignment};

/// A simulated stream-processing cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimCluster {
    /// Engine the cluster mimics.
    pub mode: EngineMode,
    /// Ground-truth performance profile.
    pub profile: PerfProfile,
    /// Measurement noise.
    pub noise: NoiseModel,
    /// Maximum parallelism per operator (paper: 100 on the Flink testbed).
    pub max_parallelism: u32,
    /// Minutes the system needs to stabilize after a reconfiguration
    /// (paper §V-A: a 10-minute wait is enforced between reconfigurations).
    pub reconfig_wait_minutes: f64,
    /// Latency model (used in Timely mode).
    pub latency: LatencyModel,
}

impl SimCluster {
    /// A Flink-like cluster (paper §V-A: 50 TaskManagers × 2 slots,
    /// max parallelism 100, 10-minute stabilization).
    pub fn flink_defaults(seed: u64) -> Self {
        SimCluster {
            mode: EngineMode::Flink,
            profile: PerfProfile::with_seed(seed),
            noise: NoiseModel::new(seed ^ 0xA5A5, 0.06).with_bias(0.88),
            max_parallelism: 100,
            reconfig_wait_minutes: 10.0,
            latency: LatencyModel::default(),
        }
    }

    /// A Timely-like cluster (single machine, ten workers → smaller
    /// per-operator parallelism cap, much higher per-worker rates: the
    /// paper's Timely source-rate units are ~10× Flink's, Table II).
    pub fn timely_defaults(seed: u64) -> Self {
        SimCluster {
            mode: EngineMode::Timely,
            profile: PerfProfile {
                seed,
                jitter: 0.10,
                // Timely's lean single-process runtime sustains far higher
                // per-worker rates than Flink's distributed stack — Table II
                // uses ~10–100× larger Wu for the same queries, and the
                // paper's Q3/Q5/Q8 run at total parallelism ≈ 1–14 on ten
                // workers. A 40× speed factor puts the 10×Wu operating
                // point in that same region.
                speed: 150.0,
            },
            noise: NoiseModel::new(seed ^ 0x5A5A, 0.06).with_bias(0.90),
            max_parallelism: 16,
            reconfig_wait_minutes: 2.0,
            latency: LatencyModel::default(),
        }
    }

    /// Simulate one deployment without session bookkeeping.
    pub fn simulate(
        &self,
        flow: &Dataflow,
        assignment: &ParallelismAssignment,
    ) -> SimulationReport {
        observe(self.mode, &self.profile, &self.noise, flow, assignment, 0)
    }

    /// Simulate one deployment at a given observation epoch.
    pub fn simulate_at(
        &self,
        flow: &Dataflow,
        assignment: &ParallelismAssignment,
        epoch: u64,
    ) -> SimulationReport {
        observe(
            self.mode,
            &self.profile,
            &self.noise,
            flow,
            assignment,
            epoch,
        )
    }

    /// Per-epoch latencies for a deployment (Timely evaluation, Fig. 8).
    pub fn epoch_latencies(
        &self,
        flow: &Dataflow,
        assignment: &ParallelismAssignment,
        epochs: usize,
    ) -> Vec<f64> {
        self.latency
            .simulate_epochs(&self.profile, &self.noise, flow, assignment, epochs)
    }

    /// Ground-truth minimal backpressure-free assignment (oracle; used for
    /// scoring tuners in tests, never visible to tuners).
    pub fn oracle_assignment(&self, flow: &Dataflow) -> Option<ParallelismAssignment> {
        let demand = crate::rates::demand_rates(flow);
        let mut degrees = Vec::with_capacity(flow.num_ops());
        for op in flow.op_ids() {
            let p = self.profile.oracle_min_parallelism(
                flow,
                op,
                demand.input[op.index()],
                self.max_parallelism,
            )?;
            degrees.push(p);
        }
        Some(ParallelismAssignment::from_vec(degrees))
    }
}

/// Bookkeeping for one tuning run of one job on a cluster.
#[derive(Debug)]
pub struct TuningSession<'a> {
    cluster: &'a SimCluster,
    flow: &'a Dataflow,
    reconfigurations: u32,
    backpressure_events: u32,
    elapsed_minutes: f64,
    cpu_trace: Vec<f64>,
    parallelism_trace: Vec<u64>,
    current: Option<ParallelismAssignment>,
    epoch: u64,
}

impl<'a> TuningSession<'a> {
    /// Start a session for `flow` on `cluster`.
    pub fn new(cluster: &'a SimCluster, flow: &'a Dataflow) -> Self {
        TuningSession {
            cluster,
            flow,
            reconfigurations: 0,
            backpressure_events: 0,
            elapsed_minutes: 0.0,
            cpu_trace: Vec::new(),
            parallelism_trace: Vec::new(),
            current: None,
            epoch: 0,
        }
    }

    /// Start a session where `initial` is already deployed (a running job
    /// whose source rate just changed): the first re-deploy of the same
    /// assignment does not count as a reconfiguration.
    pub fn with_initial(
        cluster: &'a SimCluster,
        flow: &'a Dataflow,
        initial: ParallelismAssignment,
        epoch: u64,
    ) -> Self {
        let mut s = TuningSession::new(cluster, flow);
        s.current = Some(initial);
        s.epoch = epoch;
        s
    }

    /// The job under tuning.
    pub fn flow(&self) -> &Dataflow {
        self.flow
    }

    /// The cluster.
    pub fn cluster(&self) -> &SimCluster {
        self.cluster
    }

    /// Maximum per-operator parallelism allowed.
    pub fn max_parallelism(&self) -> u32 {
        self.cluster.max_parallelism
    }

    /// Deploy `assignment` (stop-and-restart reconfiguration) and observe.
    ///
    /// Re-deploying an identical assignment is *not* counted as a
    /// reconfiguration (the job keeps running), but still yields a fresh
    /// observation after the monitoring interval.
    pub fn deploy(&mut self, assignment: &ParallelismAssignment) -> Observation {
        let changed = self.current.as_ref() != Some(assignment);
        if changed {
            self.reconfigurations += 1;
            self.elapsed_minutes += self.cluster.reconfig_wait_minutes;
            self.current = Some(assignment.clone());
        } else {
            // Pure monitoring interval.
            self.elapsed_minutes += self.cluster.reconfig_wait_minutes / 2.0;
        }
        self.epoch += 1;
        let report = self.cluster.simulate_at(self.flow, assignment, self.epoch);
        // Backpressure occurrences (paper Table III) are attributed to the
        // tuner's own reconfigurations: observing an inherited deployment
        // that the environment's rate change already backpressured is
        // monitoring, not a tuning mistake.
        if report.observation.job_backpressure && changed {
            self.backpressure_events += 1;
        }
        self.cpu_trace.push(report.observation.cpu_utilization);
        self.parallelism_trace.push(assignment.total());
        report.observation
    }

    /// Number of reconfigurations performed so far.
    pub fn reconfigurations(&self) -> u32 {
        self.reconfigurations
    }

    /// Number of deployments that exhibited job-level backpressure.
    pub fn backpressure_events(&self) -> u32 {
        self.backpressure_events
    }

    /// Simulated wall-clock minutes spent (reconfiguration + stabilization).
    pub fn elapsed_minutes(&self) -> f64 {
        self.elapsed_minutes
    }

    /// Cluster CPU utilization after each deployment (Fig. 10 trace).
    pub fn cpu_trace(&self) -> &[f64] {
        &self.cpu_trace
    }

    /// Total parallelism after each deployment.
    pub fn parallelism_trace(&self) -> &[u64] {
        &self.parallelism_trace
    }

    /// The currently deployed assignment, if any.
    pub fn current_assignment(&self) -> Option<&ParallelismAssignment> {
        self.current.as_ref()
    }
}

/// The result of running a tuner to convergence on one session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneOutcome {
    /// The parallelism assignment the tuner settled on.
    pub final_assignment: ParallelismAssignment,
    /// Reconfigurations performed (Fig. 7a metric).
    pub reconfigurations: u32,
    /// Deployments that exhibited job-level backpressure (Table III metric).
    pub backpressure_events: u32,
    /// Simulated minutes spent tuning (Fig. 7b metric).
    pub elapsed_minutes: f64,
    /// Tuning iterations executed.
    pub iterations: u32,
    /// Whether the tuner reached its own convergence criterion (as opposed
    /// to hitting an iteration cap).
    pub converged: bool,
}

impl TuningSession<'_> {
    /// Assemble a [`TuneOutcome`] from the session's bookkeeping.
    pub fn outcome(
        &self,
        final_assignment: ParallelismAssignment,
        iterations: u32,
        converged: bool,
    ) -> TuneOutcome {
        TuneOutcome {
            final_assignment,
            reconfigurations: self.reconfigurations(),
            backpressure_events: self.backpressure_events(),
            elapsed_minutes: self.elapsed_minutes(),
            iterations,
            converged,
        }
    }
}

/// A parallelism tuner: given a tuning session for one job, drive
/// deployments until its convergence criterion is met. Implemented by
/// StreamTune and every baseline (DS2, ContTune, ZeroTune).
pub trait Tuner {
    /// Short display name ("DS2", "StreamTune", …).
    fn name(&self) -> &str;

    /// Run the tuning loop on `session`.
    fn tune(&mut self, session: &mut TuningSession<'_>) -> TuneOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamtune_dataflow::{DataflowBuilder, Operator};

    fn flow(rate: f64) -> Dataflow {
        let mut b = DataflowBuilder::new("session-test");
        let s = b.add_source("s", rate);
        let f = b.add_op("f", Operator::filter(0.5, 32, 32));
        let m = b.add_op("m", Operator::map(32, 32));
        b.connect_source(s, f);
        b.connect(f, m);
        b.build().unwrap()
    }

    #[test]
    fn deploy_counts_reconfigurations() {
        let f = flow(1000.0);
        let cluster = SimCluster::flink_defaults(3);
        let mut s = TuningSession::new(&cluster, &f);
        let a = ParallelismAssignment::uniform(&f, 1);
        let b = ParallelismAssignment::uniform(&f, 2);
        s.deploy(&a);
        s.deploy(&b);
        s.deploy(&b); // unchanged → monitoring only
        assert_eq!(s.reconfigurations(), 2);
        assert_eq!(s.cpu_trace().len(), 3);
        assert!(s.elapsed_minutes() > 20.0 && s.elapsed_minutes() < 30.0);
    }

    #[test]
    fn backpressure_events_counted() {
        let f = flow(1.0e8);
        let cluster = SimCluster::flink_defaults(3);
        let mut s = TuningSession::new(&cluster, &f);
        s.deploy(&ParallelismAssignment::uniform(&f, 1));
        assert_eq!(s.backpressure_events(), 1);
    }

    #[test]
    fn oracle_assignment_is_backpressure_free_and_tight() {
        let f = flow(2.0e6);
        let cluster = SimCluster::flink_defaults(5);
        let oracle = cluster.oracle_assignment(&f).unwrap();
        let rep = cluster.simulate(&f, &oracle);
        assert!(rep.backpressure_free());
        // Decrement any operator → backpressure (minimality).
        for op in f.op_ids() {
            let d = oracle.degree(op);
            if d > 1 {
                let mut worse = oracle.clone();
                worse.set_degree(op, d - 1);
                assert!(!cluster.simulate(&f, &worse).backpressure_free());
            }
        }
    }

    #[test]
    fn oracle_none_when_rate_unsustainable() {
        let f = flow(1.0e12);
        let cluster = SimCluster::flink_defaults(5);
        assert!(cluster.oracle_assignment(&f).is_none());
    }

    #[test]
    fn timely_defaults_are_faster() {
        let f = flow(5.0e6);
        let flink = SimCluster::flink_defaults(9);
        let timely = SimCluster::timely_defaults(9);
        let a = ParallelismAssignment::uniform(&f, 4);
        let rf = flink.simulate(&f, &a);
        let rt = timely.simulate(&f, &a);
        assert!(rt.true_pa[0] > rf.true_pa[0]);
    }
}
