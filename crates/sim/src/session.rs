//! The simulated cluster and its [`ExecutionBackend`] implementation.
//!
//! [`SimCluster`] is the substitute for "a Flink/Timely deployment": it owns
//! the ground-truth performance profile, the measurement noise model and
//! cluster limits (maximum per-operator parallelism, paper §V-A: 100 in
//! Flink, worker count in Timely).
//!
//! Tuning sessions, the `Tuner` trait and `TuneOutcome` live in
//! `streamtune_backend` (re-exported here for convenience): tuners drive
//! *any* [`ExecutionBackend`], of which `SimCluster` is the simulated one.

use crate::latency::LatencyModel;
use crate::metrics::{observe, EngineMode, SimulationReport};
use crate::noise::NoiseModel;
use crate::pa::PerfProfile;
use serde::{Deserialize, Serialize};
use streamtune_backend::{BackendConstraints, BackendError, ExecutionBackend};
use streamtune_dataflow::{Dataflow, ParallelismAssignment};

pub use streamtune_backend::{TuneOutcome, Tuner, TuningSession};

/// A simulated stream-processing cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimCluster {
    /// Engine the cluster mimics.
    pub mode: EngineMode,
    /// Ground-truth performance profile.
    pub profile: PerfProfile,
    /// Measurement noise.
    pub noise: NoiseModel,
    /// Maximum parallelism per operator (paper: 100 on the Flink testbed).
    pub max_parallelism: u32,
    /// Minutes the system needs to stabilize after a reconfiguration
    /// (paper §V-A: a 10-minute wait is enforced between reconfigurations).
    pub reconfig_wait_minutes: f64,
    /// Latency model (used in Timely mode).
    pub latency: LatencyModel,
}

impl SimCluster {
    /// A Flink-like cluster (paper §V-A: 50 TaskManagers × 2 slots,
    /// max parallelism 100, 10-minute stabilization).
    pub fn flink_defaults(seed: u64) -> Self {
        SimCluster {
            mode: EngineMode::Flink,
            profile: PerfProfile::with_seed(seed),
            noise: NoiseModel::new(seed ^ 0xA5A5, 0.06).with_bias(0.88),
            max_parallelism: 100,
            reconfig_wait_minutes: 10.0,
            latency: LatencyModel::default(),
        }
    }

    /// A Timely-like cluster (single machine, ten workers → smaller
    /// per-operator parallelism cap, much higher per-worker rates: the
    /// paper's Timely source-rate units are ~10× Flink's, Table II).
    pub fn timely_defaults(seed: u64) -> Self {
        SimCluster {
            mode: EngineMode::Timely,
            profile: PerfProfile {
                seed,
                jitter: 0.10,
                // Timely's lean single-process runtime sustains far higher
                // per-worker rates than Flink's distributed stack — Table II
                // uses ~10–100× larger Wu for the same queries, and the
                // paper's Q3/Q5/Q8 run at total parallelism ≈ 1–14 on ten
                // workers. A 40× speed factor puts the 10×Wu operating
                // point in that same region.
                speed: 150.0,
            },
            noise: NoiseModel::new(seed ^ 0x5A5A, 0.06).with_bias(0.90),
            max_parallelism: 16,
            reconfig_wait_minutes: 2.0,
            latency: LatencyModel::default(),
        }
    }

    /// Simulate one deployment without session bookkeeping.
    pub fn simulate(
        &self,
        flow: &Dataflow,
        assignment: &ParallelismAssignment,
    ) -> SimulationReport {
        observe(self.mode, &self.profile, &self.noise, flow, assignment, 0)
    }

    /// Simulate one deployment at a given observation epoch.
    pub fn simulate_at(
        &self,
        flow: &Dataflow,
        assignment: &ParallelismAssignment,
        epoch: u64,
    ) -> SimulationReport {
        observe(
            self.mode,
            &self.profile,
            &self.noise,
            flow,
            assignment,
            epoch,
        )
    }

    /// Per-epoch latencies for a deployment (Timely evaluation, Fig. 8).
    pub fn epoch_latencies(
        &self,
        flow: &Dataflow,
        assignment: &ParallelismAssignment,
        epochs: usize,
    ) -> Vec<f64> {
        self.latency
            .simulate_epochs(&self.profile, &self.noise, flow, assignment, epochs)
    }

    /// Ground-truth minimal backpressure-free assignment (oracle; used for
    /// scoring tuners in tests, never visible to tuners).
    pub fn oracle_assignment(&self, flow: &Dataflow) -> Option<ParallelismAssignment> {
        let demand = crate::rates::demand_rates(flow);
        let mut degrees = Vec::with_capacity(flow.num_ops());
        for op in flow.op_ids() {
            let p = self.profile.oracle_min_parallelism(
                flow,
                op,
                demand.input[op.index()],
                self.max_parallelism,
            )?;
            degrees.push(p);
        }
        Some(ParallelismAssignment::from_vec(degrees))
    }
}

impl ExecutionBackend for SimCluster {
    fn engine_mode(&self) -> EngineMode {
        self.mode
    }

    fn constraints(&self) -> BackendConstraints {
        BackendConstraints {
            max_parallelism: self.max_parallelism,
            reconfig_wait_minutes: self.reconfig_wait_minutes,
        }
    }

    fn deploy(
        &mut self,
        flow: &Dataflow,
        assignment: &ParallelismAssignment,
        epoch: u64,
    ) -> Result<SimulationReport, BackendError> {
        if assignment.len() != flow.num_ops() {
            return Err(BackendError::AssignmentShape {
                expected: flow.num_ops(),
                actual: assignment.len(),
            });
        }
        Ok(self.simulate_at(flow, assignment, epoch))
    }

    fn epoch_latencies(
        &mut self,
        flow: &Dataflow,
        assignment: &ParallelismAssignment,
        epochs: usize,
    ) -> Result<Vec<f64>, BackendError> {
        if assignment.len() != flow.num_ops() {
            return Err(BackendError::AssignmentShape {
                expected: flow.num_ops(),
                actual: assignment.len(),
            });
        }
        Ok(SimCluster::epoch_latencies(self, flow, assignment, epochs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamtune_dataflow::{DataflowBuilder, Operator};

    fn flow(rate: f64) -> Dataflow {
        let mut b = DataflowBuilder::new("session-test");
        let s = b.add_source("s", rate);
        let f = b.add_op("f", Operator::filter(0.5, 32, 32));
        let m = b.add_op("m", Operator::map(32, 32));
        b.connect_source(s, f);
        b.connect(f, m);
        b.build().unwrap()
    }

    #[test]
    fn deploy_counts_reconfigurations() {
        let f = flow(1000.0);
        let mut cluster = SimCluster::flink_defaults(3);
        let a = ParallelismAssignment::uniform(&f, 1);
        let b = ParallelismAssignment::uniform(&f, 2);
        let mut s = TuningSession::new(&mut cluster, &f);
        s.deploy(&a).unwrap();
        s.deploy(&b).unwrap();
        s.deploy(&b).unwrap(); // unchanged → monitoring only
        assert_eq!(s.reconfigurations(), 2);
        assert_eq!(s.cpu_trace().len(), 3);
        assert!(s.elapsed_minutes() > 20.0 && s.elapsed_minutes() < 30.0);
    }

    #[test]
    fn backpressure_events_counted() {
        let f = flow(1.0e8);
        let mut cluster = SimCluster::flink_defaults(3);
        let a = ParallelismAssignment::uniform(&f, 1);
        let mut s = TuningSession::new(&mut cluster, &f);
        s.deploy(&a).unwrap();
        assert_eq!(s.backpressure_events(), 1);
    }

    #[test]
    fn deploy_rejects_malformed_assignment() {
        let f = flow(1000.0);
        let mut cluster = SimCluster::flink_defaults(3);
        let short = ParallelismAssignment::from_vec(vec![1]);
        let mut s = TuningSession::new(&mut cluster, &f);
        match s.deploy(&short) {
            Err(BackendError::AssignmentShape { expected, actual }) => {
                assert_eq!((expected, actual), (2, 1));
            }
            other => panic!("expected AssignmentShape error, got {other:?}"),
        }
        // A failed deploy is not a reconfiguration and costs no time.
        assert_eq!(s.reconfigurations(), 0);
        assert_eq!(s.elapsed_minutes(), 0.0);
    }

    #[test]
    fn oracle_assignment_is_backpressure_free_and_tight() {
        let f = flow(2.0e6);
        let cluster = SimCluster::flink_defaults(5);
        let oracle = cluster.oracle_assignment(&f).unwrap();
        let rep = cluster.simulate(&f, &oracle);
        assert!(rep.backpressure_free());
        // Decrement any operator → backpressure (minimality).
        for op in f.op_ids() {
            let d = oracle.degree(op);
            if d > 1 {
                let mut worse = oracle.clone();
                worse.set_degree(op, d - 1);
                assert!(!cluster.simulate(&f, &worse).backpressure_free());
            }
        }
    }

    #[test]
    fn oracle_none_when_rate_unsustainable() {
        let f = flow(1.0e12);
        let cluster = SimCluster::flink_defaults(5);
        assert!(cluster.oracle_assignment(&f).is_none());
    }

    #[test]
    fn timely_defaults_are_faster() {
        let f = flow(5.0e6);
        let flink = SimCluster::flink_defaults(9);
        let timely = SimCluster::timely_defaults(9);
        let a = ParallelismAssignment::uniform(&f, 4);
        let rf = flink.simulate(&f, &a);
        let rt = timely.simulate(&f, &a);
        assert!(rt.true_pa[0] > rf.true_pa[0]);
    }

    #[test]
    fn backend_constraints_mirror_cluster_limits() {
        let cluster = SimCluster::flink_defaults(7);
        let c = ExecutionBackend::constraints(&cluster);
        assert_eq!(c.max_parallelism, cluster.max_parallelism);
        assert_eq!(c.reconfig_wait_minutes, cluster.reconfig_wait_minutes);
    }
}
