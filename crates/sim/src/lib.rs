//! Simulated distributed stream processing substrate.
//!
//! The paper evaluates StreamTune on Apache Flink and Timely Dataflow. This
//! crate is the substitute substrate (see `DESIGN.md` §1): a deterministic,
//! rate-based simulator that produces exactly the signals every tuner in the
//! paper consumes —
//!
//! * per-operator `busyTimeMsPerSecond` / `idleTimeMsPerSecond` /
//!   `backPressuredTimeMsPerSecond` (Flink mode, paper §V-B),
//! * per-operator input/output rates and the 85 % consumption rule
//!   (Timely mode, paper §V-B),
//! * noisy "useful time"-derived per-instance processing rates (what DS2 and
//!   ContTune estimate processing ability from),
//! * job-level backpressure, CPU-utilization traces, per-epoch latencies.
//!
//! The physics: each operator has a ground-truth processing ability
//! `PA(p)` that grows mildly sub-linearly in its parallelism `p`
//! (matching paper Fig. 4), rates propagate through the DAG by selectivity,
//! and backpressure arises as the fixed point of throttling sources until no
//! operator's input exceeds its ability.

pub mod latency;
pub mod live;
pub mod metrics;
pub mod noise;
pub mod pa;
pub mod rates;
pub mod session;

pub use live::LiveRescaleModel;
pub use metrics::{EngineMode, Observation, OpObservation, SimulationReport};
pub use pa::{PerfProfile, ProcessingAbility};
pub use session::SimCluster;
pub use streamtune_backend::{
    BackendConstraints, BackendError, ExecutionBackend, TuneOutcome, Tuner, TuningSession,
};

#[cfg(test)]
mod tests {
    use super::*;
    use streamtune_dataflow::{DataflowBuilder, Operator, ParallelismAssignment};

    #[test]
    fn end_to_end_deploy_produces_report() {
        let mut b = DataflowBuilder::new("e2e");
        let s = b.add_source("src", 100_000.0);
        let f = b.add_op("filter", Operator::filter(0.4, 32, 32));
        let g = b.add_op(
            "agg",
            Operator::aggregate(
                streamtune_dataflow::AggregateFunction::Sum,
                streamtune_dataflow::AggregateClass::Int,
                streamtune_dataflow::JoinKeyClass::Int,
                0.1,
            ),
        );
        b.connect_source(s, f);
        b.connect(f, g);
        let flow = b.build().unwrap();

        let cluster = SimCluster::flink_defaults(1);
        let assignment = ParallelismAssignment::uniform(&flow, 4);
        let report = cluster.simulate(&flow, &assignment);
        assert_eq!(report.observation.per_op.len(), 2);
        assert!(report.observation.per_op[0].input_rate > 0.0);
    }
}
