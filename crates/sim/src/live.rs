//! Live (in-place) reconfiguration — the paper's §VII extension.
//!
//! StreamTune as evaluated uses stop-and-restart reconfiguration, paying a
//! full stabilization wait per change. The paper notes ByteDance deploys
//! *live* rescaling internally: the JobManager applies new degrees through
//! operator-level APIs at runtime, trading the restart downtime for a
//! shorter per-operator migration stall proportional to how much state
//! must move.
//!
//! This module models that trade-off so the `ablation_live_rescale` bench
//! can quantify it: restart downtime is a flat
//! [`crate::SimCluster::reconfig_wait_minutes`]; live rescaling costs a
//! base coordination overhead plus a per-operator term scaled by the
//! state-bearing parallelism delta.

use crate::session::SimCluster;
use serde::{Deserialize, Serialize};
use streamtune_dataflow::{Dataflow, ParallelismAssignment};

/// Cost model for live rescaling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveRescaleModel {
    /// Fixed coordination overhead per rescale operation (minutes).
    pub base_minutes: f64,
    /// Minutes per unit of *stateful* parallelism change (state shards
    /// must be re-partitioned and shipped).
    pub stateful_minutes_per_degree: f64,
    /// Minutes per unit of stateless parallelism change (only channel
    /// rewiring).
    pub stateless_minutes_per_degree: f64,
}

impl Default for LiveRescaleModel {
    fn default() -> Self {
        LiveRescaleModel {
            base_minutes: 0.5,
            stateful_minutes_per_degree: 0.4,
            stateless_minutes_per_degree: 0.05,
        }
    }
}

impl LiveRescaleModel {
    /// Minutes of partial disruption for rescaling `flow` from `from` to
    /// `to`. Zero when the assignments are identical.
    pub fn rescale_minutes(
        &self,
        flow: &Dataflow,
        from: &ParallelismAssignment,
        to: &ParallelismAssignment,
    ) -> f64 {
        assert_eq!(from.len(), flow.num_ops());
        assert_eq!(to.len(), flow.num_ops());
        let mut cost = 0.0;
        let mut any = false;
        for op in flow.op_ids() {
            let delta = from.degree(op).abs_diff(to.degree(op));
            if delta == 0 {
                continue;
            }
            any = true;
            let per_degree = if flow.op(op).kind().is_stateful() {
                self.stateful_minutes_per_degree
            } else {
                self.stateless_minutes_per_degree
            };
            cost += f64::from(delta) * per_degree;
        }
        if any {
            cost + self.base_minutes
        } else {
            0.0
        }
    }

    /// Downtime saved versus a stop-and-restart on `cluster` (may be
    /// negative when a huge stateful migration exceeds the restart cost).
    pub fn savings_vs_restart(
        &self,
        cluster: &SimCluster,
        flow: &Dataflow,
        from: &ParallelismAssignment,
        to: &ParallelismAssignment,
    ) -> f64 {
        if from == to {
            return 0.0;
        }
        cluster.reconfig_wait_minutes - self.rescale_minutes(flow, from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamtune_dataflow::{DataflowBuilder, OpId, Operator};

    fn flow() -> Dataflow {
        let mut b = DataflowBuilder::new("live-test");
        let s = b.add_source("s", 1000.0);
        let f = b.add_op("filter", Operator::filter(0.5, 32, 32));
        let w = b.add_op(
            "win",
            Operator::window_aggregate(
                streamtune_dataflow::AggregateFunction::Sum,
                streamtune_dataflow::AggregateClass::Int,
                streamtune_dataflow::JoinKeyClass::Int,
                streamtune_dataflow::WindowType::Tumbling,
                streamtune_dataflow::WindowPolicy::Time,
                60.0,
                0.0,
                0.1,
            ),
        );
        b.connect_source(s, f);
        b.connect(f, w);
        b.build().unwrap()
    }

    #[test]
    fn identical_assignments_cost_nothing() {
        let f = flow();
        let a = ParallelismAssignment::uniform(&f, 4);
        let m = LiveRescaleModel::default();
        assert_eq!(m.rescale_minutes(&f, &a, &a.clone()), 0.0);
    }

    #[test]
    fn stateful_changes_cost_more_than_stateless() {
        let f = flow();
        let base = ParallelismAssignment::uniform(&f, 4);
        let m = LiveRescaleModel::default();
        let mut stateless_up = base.clone();
        stateless_up.set_degree(OpId::new(0), 8); // filter
        let mut stateful_up = base.clone();
        stateful_up.set_degree(OpId::new(1), 8); // window aggregate
        let c1 = m.rescale_minutes(&f, &base, &stateless_up);
        let c2 = m.rescale_minutes(&f, &base, &stateful_up);
        assert!(c2 > c1, "stateful {c2} must exceed stateless {c1}");
    }

    #[test]
    fn small_live_rescale_beats_restart() {
        let f = flow();
        let cluster = SimCluster::flink_defaults(1);
        let m = LiveRescaleModel::default();
        let from = ParallelismAssignment::uniform(&f, 4);
        let mut to = from.clone();
        to.set_degree(OpId::new(0), 5);
        let savings = m.savings_vs_restart(&cluster, &f, &from, &to);
        assert!(
            savings > 8.0,
            "one-degree stateless change should save most of the 10-minute restart, saved {savings}"
        );
    }

    #[test]
    fn huge_stateful_migration_can_lose() {
        let f = flow();
        let cluster = SimCluster::flink_defaults(1);
        let m = LiveRescaleModel {
            stateful_minutes_per_degree: 0.4,
            ..Default::default()
        };
        let from = ParallelismAssignment::uniform(&f, 1);
        let mut to = from.clone();
        to.set_degree(OpId::new(1), 60);
        let savings = m.savings_vs_restart(&cluster, &f, &from, &to);
        assert!(
            savings < 0.0,
            "moving 59 state shards should exceed the restart cost, saved {savings}"
        );
    }
}
