//! Tuner-visible observations: the Flink time metrics, the Timely rate
//! metrics, CPU utilization, and the bottleneck flags of paper §V-B.

use crate::noise::NoiseModel;
use crate::pa::PerfProfile;
use crate::rates::{demand_rates, flink_steady_state, timely_steady_state};
use streamtune_dataflow::{Dataflow, ParallelismAssignment};

// The observation model is engine-neutral and lives in the backend crate
// (see `streamtune_backend::observation`); this module keeps the *physics*
// that fills it in for the simulated substrate.
pub use streamtune_backend::{
    EngineMode, Observation, OpObservation, SimulationReport, BACKPRESSURE_VISIBILITY,
};

/// Compute an [`Observation`] (and ground truth) for `flow` deployed at
/// `assignment` with the given profile/noise, in the given mode.
///
/// `epoch` keys the observation noise: redeploying at a later epoch sees
/// fresh measurement error, replaying the same epoch is deterministic.
pub fn observe(
    mode: EngineMode,
    profile: &PerfProfile,
    noise: &NoiseModel,
    flow: &Dataflow,
    assignment: &ParallelismAssignment,
    epoch: u64,
) -> SimulationReport {
    match mode {
        EngineMode::Flink => observe_flink(profile, noise, flow, assignment, epoch),
        EngineMode::Timely => observe_timely(profile, noise, flow, assignment, epoch),
    }
}

fn job_key(flow: &Dataflow) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in flow.name().as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn observe_flink(
    profile: &PerfProfile,
    noise: &NoiseModel,
    flow: &Dataflow,
    assignment: &ParallelismAssignment,
    epoch: u64,
) -> SimulationReport {
    let st = flink_steady_state(profile, flow, assignment);
    let demand = demand_rates(flow);
    let jk = job_key(flow);
    let n = flow.num_ops();

    let mut per_op = Vec::with_capacity(n);
    for op in flow.op_ids() {
        let i = op.index();
        let p = assignment.degree(op);
        let pa = st.pa[i];
        let actual = st.actual_input[i].min(pa);
        // Backpressured fraction: time blocked waiting on the slowest
        // saturated successor chain ≈ 1 - throttle when downstream saturated.
        let bp_frac = if st.backpressured[i] {
            (1.0 - st.throttle).clamp(0.0, 1.0)
        } else {
            0.0
        };
        // Processing can only happen in the non-blocked time budget.
        let busy_frac = (actual / pa).clamp(0.0, 1.0 - bp_frac);
        let idle_frac = (1.0 - busy_frac - bp_frac).max(0.0);
        let total = busy_frac + bp_frac + idle_frac;
        let flink_backpressured = bp_frac > 0.10 * total;
        // Useful-time-derived per-instance rate: records processed per
        // second of *useful* (busy) time per instance. Useful time excludes
        // idle and backpressured periods, so the true value is exactly the
        // per-instance capability PA/p; tuners see it with noise.
        let true_per_instance = pa / f64::from(p);
        let observed_per_instance_rate =
            noise.observe_rate(true_per_instance, jk, op.index() as u64, epoch);
        per_op.push(OpObservation {
            op,
            parallelism: p,
            input_rate: demand.input[i],
            processed_rate: actual,
            busy_ms_per_sec: busy_frac * 1000.0,
            idle_ms_per_sec: idle_frac * 1000.0,
            backpressured_ms_per_sec: bp_frac * 1000.0,
            observed_per_instance_rate,
            cpu_load: busy_frac,
            flink_backpressured,
            timely_bottleneck: st.saturated[i],
            saturated: st.saturated[i],
        });
    }

    let total_parallelism = assignment.total();
    let cpu_utilization = cluster_cpu(&per_op);
    // Visible job-level backpressure: the sources are blocked for more
    // than the 10% visibility threshold of their time.
    let job_backpressure = st.throttle < 1.0 - BACKPRESSURE_VISIBILITY;
    SimulationReport {
        observation: Observation {
            mode: EngineMode::Flink,
            per_op,
            job_backpressure,
            throughput_scale: st.throttle,
            cpu_utilization,
            total_parallelism,
        },
        true_pa: st.pa,
        demand_input: demand.input,
        saturated: st.saturated,
    }
}

fn observe_timely(
    profile: &PerfProfile,
    noise: &NoiseModel,
    flow: &Dataflow,
    assignment: &ParallelismAssignment,
    epoch: u64,
) -> SimulationReport {
    let st = timely_steady_state(profile, flow, assignment);
    let demand = demand_rates(flow);
    let jk = job_key(flow);
    let n = flow.num_ops();

    let mut per_op = Vec::with_capacity(n);
    let mut min_scale: f64 = 1.0;
    for op in flow.op_ids() {
        let i = op.index();
        let p = assignment.degree(op);
        let pa = st.pa[i];
        let busy_frac = if pa > 0.0 {
            (st.processed[i] / pa).clamp(0.0, 1.0)
        } else {
            0.0
        };
        if st.arrivals[i] > 0.0 {
            min_scale = min_scale.min(st.processed[i] / st.arrivals[i]);
        }
        let true_per_instance = pa / f64::from(p);
        let observed_per_instance_rate =
            noise.observe_rate(true_per_instance, jk, op.index() as u64, epoch);
        per_op.push(OpObservation {
            op,
            parallelism: p,
            input_rate: st.arrivals[i],
            processed_rate: st.processed[i],
            busy_ms_per_sec: busy_frac * 1000.0,
            idle_ms_per_sec: (1.0 - busy_frac) * 1000.0,
            backpressured_ms_per_sec: 0.0, // Timely has no backpressure
            observed_per_instance_rate,
            cpu_load: busy_frac,
            flink_backpressured: false,
            timely_bottleneck: st.bottleneck_85[i],
            saturated: st.arrivals[i] > st.pa[i],
        });
    }

    let saturated: Vec<bool> = (0..n).map(|i| demand.input[i] > st.pa[i]).collect();
    let total_parallelism = assignment.total();
    let cpu_utilization = cluster_cpu(&per_op);
    let job_backpressure = per_op.iter().any(|o| o.timely_bottleneck);
    SimulationReport {
        observation: Observation {
            mode: EngineMode::Timely,
            per_op,
            job_backpressure,
            throughput_scale: min_scale,
            cpu_utilization,
            total_parallelism,
        },
        true_pa: st.pa,
        demand_input: demand.input,
        saturated,
    }
}

fn cluster_cpu(per_op: &[OpObservation]) -> f64 {
    let total_p: f64 = per_op.iter().map(|o| f64::from(o.parallelism)).sum();
    if total_p == 0.0 {
        return 0.0;
    }
    per_op
        .iter()
        .map(|o| o.cpu_load * f64::from(o.parallelism))
        .sum::<f64>()
        / total_p
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamtune_dataflow::{DataflowBuilder, OpId, Operator};

    fn flow(rate: f64) -> Dataflow {
        let mut b = DataflowBuilder::new("metrics-test");
        let s = b.add_source("s", rate);
        let f = b.add_op("filter", Operator::filter(0.5, 32, 32));
        let w = b.add_op(
            "win",
            Operator::window_aggregate(
                streamtune_dataflow::AggregateFunction::Count,
                streamtune_dataflow::AggregateClass::Int,
                streamtune_dataflow::JoinKeyClass::Int,
                streamtune_dataflow::WindowType::Tumbling,
                streamtune_dataflow::WindowPolicy::Time,
                60.0,
                0.0,
                0.01,
            ),
        );
        b.connect_source(s, f);
        b.connect(f, w);
        b.build().unwrap()
    }

    #[test]
    fn flink_time_metrics_sum_to_1000() {
        let f = flow(5.0e6);
        let prof = PerfProfile::default();
        let rep = observe(
            EngineMode::Flink,
            &prof,
            &NoiseModel::default(),
            &f,
            &ParallelismAssignment::uniform(&f, 2),
            0,
        );
        for o in &rep.observation.per_op {
            let sum = o.busy_ms_per_sec + o.idle_ms_per_sec + o.backpressured_ms_per_sec;
            assert!((sum - 1000.0).abs() < 1e-6, "metrics sum {sum}");
        }
    }

    #[test]
    fn provisioned_deployment_is_backpressure_free() {
        let f = flow(1000.0);
        let rep = observe(
            EngineMode::Flink,
            &PerfProfile::default(),
            &NoiseModel::default(),
            &f,
            &ParallelismAssignment::uniform(&f, 4),
            0,
        );
        assert!(rep.backpressure_free());
        assert!(!rep.observation.job_backpressure);
        assert_eq!(rep.observation.throughput_scale, 1.0);
    }

    #[test]
    fn starved_window_marks_upstream_backpressured() {
        let f = flow(2.0e6);
        let prof = PerfProfile::default();
        let mut asg = ParallelismAssignment::uniform(&f, 60);
        asg.set_degree(OpId::new(1), 1);
        let rep = observe(
            EngineMode::Flink,
            &prof,
            &NoiseModel::default(),
            &f,
            &asg,
            0,
        );
        let filter = &rep.observation.per_op[0];
        let window = &rep.observation.per_op[1];
        assert!(window.saturated);
        assert!(
            filter.flink_backpressured,
            "upstream filter observes backpressure"
        );
        assert!(
            !window.flink_backpressured,
            "saturated op is busy, not backpressured"
        );
        assert!(window.cpu_load > 0.99);
    }

    #[test]
    fn observed_rate_is_noisy_but_close() {
        let f = flow(1.0e5);
        let prof = PerfProfile::default();
        let rep = observe(
            EngineMode::Flink,
            &prof,
            &NoiseModel::default(),
            &f,
            &ParallelismAssignment::uniform(&f, 3),
            7,
        );
        for o in &rep.observation.per_op {
            let true_per_inst = rep.true_pa[o.op.index()] / f64::from(o.parallelism);
            let ratio = o.observed_per_instance_rate / true_per_inst;
            assert!((0.7..1.4).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn timely_mode_has_no_backpressure_metric() {
        let f = flow(5.0e6);
        let rep = observe(
            EngineMode::Timely,
            &PerfProfile::default(),
            &NoiseModel::default(),
            &f,
            &ParallelismAssignment::uniform(&f, 1),
            0,
        );
        for o in &rep.observation.per_op {
            assert_eq!(o.backpressured_ms_per_sec, 0.0);
            assert!(!o.flink_backpressured);
        }
        // but the 85% rule fires on the saturated operator
        assert!(rep.observation.per_op.iter().any(|o| o.timely_bottleneck));
    }

    #[test]
    fn cpu_utilization_weighted_by_parallelism() {
        let per_op = vec![
            OpObservation {
                op: OpId::new(0),
                parallelism: 1,
                input_rate: 0.0,
                processed_rate: 0.0,
                busy_ms_per_sec: 1000.0,
                idle_ms_per_sec: 0.0,
                backpressured_ms_per_sec: 0.0,
                observed_per_instance_rate: 0.0,
                cpu_load: 1.0,
                flink_backpressured: false,
                timely_bottleneck: false,
                saturated: false,
            },
            OpObservation {
                op: OpId::new(1),
                parallelism: 3,
                input_rate: 0.0,
                processed_rate: 0.0,
                busy_ms_per_sec: 0.0,
                idle_ms_per_sec: 1000.0,
                backpressured_ms_per_sec: 0.0,
                observed_per_instance_rate: 0.0,
                cpu_load: 0.0,
                flink_backpressured: false,
                timely_bottleneck: false,
                saturated: false,
            },
        ];
        assert!((cluster_cpu(&per_op) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn epoch_changes_noise_only() {
        let f = flow(1.0e5);
        let prof = PerfProfile::default();
        let nm = NoiseModel::default();
        let asg = ParallelismAssignment::uniform(&f, 3);
        let r1 = observe(EngineMode::Flink, &prof, &nm, &f, &asg, 1);
        let r2 = observe(EngineMode::Flink, &prof, &nm, &f, &asg, 2);
        assert_eq!(r1.true_pa, r2.true_pa);
        assert_ne!(
            r1.observation.per_op[0].observed_per_instance_rate,
            r2.observation.per_op[0].observed_per_instance_rate
        );
    }
}
