//! Rate propagation and backpressure fixed points.
//!
//! Two propagation regimes mirror the two engines of the paper:
//!
//! * **Demand propagation** — the rates every operator *must* sustain for
//!   backpressure-free execution at the current source rates (paper §II-B:
//!   "each operator must sustain all source rates"). Computed by a single
//!   topological pass multiplying selectivities.
//! * **Flink regime** — sources are throttled by backpressure until no
//!   operator receives more than its processing ability. With
//!   rate-proportional selectivities the fixed point is a global throttle
//!   factor `s = min(1, min_op PA(op) / demand(op))`.
//! * **Timely regime** — no backpressure: every operator forwards
//!   `min(arrivals, PA) · selectivity`; queues at saturated operators grow
//!   without bound (reflected in latency, see [`crate::latency`]).

use crate::pa::PerfProfile;
use streamtune_dataflow::{Dataflow, ParallelismAssignment};

/// Demand rates: what each operator must sustain at full source speed.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandRates {
    /// Input records/second each operator must sustain (by OpId index).
    pub input: Vec<f64>,
    /// Output records/second each operator emits when sustaining its input.
    pub output: Vec<f64>,
}

/// Compute demand rates by a topological pass (no capacity limits).
pub fn demand_rates(flow: &Dataflow) -> DemandRates {
    let n = flow.num_ops();
    let mut input = vec![0.0; n];
    let mut output = vec![0.0; n];
    for &op in flow.topo_order() {
        let i = op.index();
        let mut rate = flow.direct_source_rate(op);
        for &p in flow.preds(op) {
            rate += output[p.index()];
        }
        input[i] = rate;
        output[i] = rate * flow.op(op).selectivity();
    }
    DemandRates { input, output }
}

/// Flink-regime steady state under backpressure.
#[derive(Debug, Clone, PartialEq)]
pub struct FlinkSteadyState {
    /// Global source throttle factor in `(0, 1]`; `1.0` ⇔ backpressure-free.
    pub throttle: f64,
    /// Actual input rate per operator after throttling.
    pub actual_input: Vec<f64>,
    /// Ground-truth processing ability per operator at the deployed degrees.
    pub pa: Vec<f64>,
    /// Operators whose demand exceeds their PA (the binding bottlenecks).
    pub saturated: Vec<bool>,
    /// Operators observing backpressure: any transitive *successor* is
    /// saturated (backpressure propagates upstream, paper §II-A).
    pub backpressured: Vec<bool>,
}

/// Compute the Flink-regime fixed point for `flow` deployed at `assignment`.
pub fn flink_steady_state(
    profile: &PerfProfile,
    flow: &Dataflow,
    assignment: &ParallelismAssignment,
) -> FlinkSteadyState {
    let demand = demand_rates(flow);
    let n = flow.num_ops();
    let pa: Vec<f64> = flow
        .op_ids()
        .map(|op| profile.pa(flow, op, assignment.degree(op)))
        .collect();

    let mut throttle: f64 = 1.0;
    for (pa_i, input_i) in pa.iter().zip(&demand.input) {
        if input_i > pa_i {
            throttle = throttle.min(pa_i / input_i);
        }
    }
    // Only the *binding* operators (those whose PA/demand ratio equals the
    // throttle) are saturated: everything downstream of them receives the
    // throttled rate and runs below capacity, exactly as on a real engine.
    let mut saturated = vec![false; n];
    for i in 0..n {
        saturated[i] =
            demand.input[i] > pa[i] && pa[i] <= demand.input[i] * throttle * (1.0 + 1e-9);
    }

    // Backpressure propagates upstream from saturated operators: walk the
    // reverse topological order, marking any operator with a saturated
    // (or backpressured) successor.
    let mut backpressured = vec![false; n];
    for &op in flow.topo_order().iter().rev() {
        let i = op.index();
        for &succ in flow.succs(op) {
            let j = succ.index();
            if saturated[j] || backpressured[j] {
                backpressured[i] = true;
            }
        }
    }

    let actual_input: Vec<f64> = demand.input.iter().map(|&d| d * throttle).collect();
    FlinkSteadyState {
        throttle,
        actual_input,
        pa,
        saturated,
        backpressured,
    }
}

/// Timely-regime steady state (no backpressure, lossy forwarding).
#[derive(Debug, Clone, PartialEq)]
pub struct TimelySteadyState {
    /// Arrival rate at each operator (records/second).
    pub arrivals: Vec<f64>,
    /// Actual processed (consumed) rate: `min(arrivals, PA)`.
    pub processed: Vec<f64>,
    /// Ground-truth PA per operator.
    pub pa: Vec<f64>,
    /// Operators failing the 85 % consumption rule (paper §V-B): consumption
    /// below 85 % of the combined upstream output rates.
    pub bottleneck_85: Vec<bool>,
}

/// Compute the Timely-regime forward pass for `flow` at `assignment`.
pub fn timely_steady_state(
    profile: &PerfProfile,
    flow: &Dataflow,
    assignment: &ParallelismAssignment,
) -> TimelySteadyState {
    let n = flow.num_ops();
    let mut arrivals = vec![0.0; n];
    let mut processed = vec![0.0; n];
    let mut out = vec![0.0; n];
    let pa: Vec<f64> = flow
        .op_ids()
        .map(|op| profile.pa(flow, op, assignment.degree(op)))
        .collect();
    for &op in flow.topo_order() {
        let i = op.index();
        let mut arr = flow.direct_source_rate(op);
        for &p in flow.preds(op) {
            arr += out[p.index()];
        }
        arrivals[i] = arr;
        processed[i] = arr.min(pa[i]);
        out[i] = processed[i] * flow.op(op).selectivity();
    }
    let bottleneck_85 = (0..n)
        .map(|i| arrivals[i] > 0.0 && processed[i] < 0.85 * arrivals[i])
        .collect();
    TimelySteadyState {
        arrivals,
        processed,
        pa,
        bottleneck_85,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamtune_dataflow::{DataflowBuilder, OpId, Operator};

    /// src(1000) → filter(0.3) → map → sink, plus a second branch.
    fn test_flow(rate: f64) -> Dataflow {
        let mut b = DataflowBuilder::new("rates-test");
        let s = b.add_source("s", rate);
        let f = b.add_op("filter", Operator::filter(0.3, 32, 32));
        let m = b.add_op("map", Operator::map(32, 32));
        let k = b.add_op("sink", Operator::sink(32));
        b.connect_source(s, f);
        b.connect(f, m);
        b.connect(m, k);
        b.build().unwrap()
    }

    #[test]
    fn demand_rates_multiply_selectivity() {
        let flow = test_flow(1000.0);
        let d = demand_rates(&flow);
        assert_eq!(d.input[0], 1000.0);
        assert!((d.input[1] - 300.0).abs() < 1e-9);
        assert!((d.input[2] - 300.0).abs() < 1e-9);
    }

    #[test]
    fn demand_rates_sum_over_multiple_upstreams() {
        let mut b = DataflowBuilder::new("join");
        let s1 = b.add_source("a", 400.0);
        let s2 = b.add_source("b", 600.0);
        let m1 = b.add_op("m1", Operator::map(32, 32));
        let m2 = b.add_op("m2", Operator::map(32, 32));
        let j = b.add_op(
            "join",
            Operator::incremental_join(streamtune_dataflow::JoinKeyClass::Int, 0.5, 64),
        );
        b.connect_source(s1, m1);
        b.connect_source(s2, m2);
        b.connect(m1, j);
        b.connect(m2, j);
        let flow = b.build().unwrap();
        let d = demand_rates(&flow);
        assert!((d.input[j.index()] - 1000.0).abs() < 1e-9);
        assert!((d.output[j.index()] - 500.0).abs() < 1e-9);
    }

    #[test]
    fn low_rate_is_backpressure_free() {
        let flow = test_flow(10.0);
        let prof = PerfProfile::default();
        let st = flink_steady_state(&prof, &flow, &ParallelismAssignment::uniform(&flow, 1));
        assert_eq!(st.throttle, 1.0);
        assert!(st.saturated.iter().all(|&s| !s));
        assert!(st.backpressured.iter().all(|&s| !s));
    }

    #[test]
    fn overload_throttles_and_marks_upstream_backpressure() {
        let flow = test_flow(1.0e8); // far beyond any PA at p=1
        let prof = PerfProfile::default();
        let st = flink_steady_state(&prof, &flow, &ParallelismAssignment::uniform(&flow, 1));
        assert!(st.throttle < 1.0);
        assert!(st.saturated.iter().any(|&s| s));
        // The first (most upstream) operator must observe backpressure if any
        // of its successors is saturated; the filter itself is saturated.
        assert!(st.saturated[0]);
        // Actual input equals throttled demand.
        assert!((st.actual_input[0] - 1.0e8 * st.throttle).abs() < 1.0);
    }

    #[test]
    fn backpressure_propagates_transitively() {
        // Chain where only the LAST op is slow: upstream ops all marked.
        let mut b = DataflowBuilder::new("deep");
        let s = b.add_source("s", 2.0e5);
        let a = b.add_op("a", Operator::map(8, 8));
        let c = b.add_op("b", Operator::map(8, 8));
        let w = b.add_op(
            "w",
            Operator::window_join(
                streamtune_dataflow::JoinKeyClass::Composite,
                streamtune_dataflow::WindowType::Sliding,
                streamtune_dataflow::WindowPolicy::Time,
                300.0,
                10.0,
                0.5,
            ),
        );
        b.connect_source(s, a);
        b.connect(a, c);
        b.connect(c, w);
        let flow = b.build().unwrap();
        let prof = PerfProfile::default();
        let mut asg = ParallelismAssignment::uniform(&flow, 50);
        asg.set_degree(OpId::new(2), 1); // starve the window join
        let st = flink_steady_state(&prof, &flow, &asg);
        assert!(st.saturated[2]);
        assert!(st.backpressured[0] && st.backpressured[1]);
        assert!(
            !st.backpressured[2],
            "the saturated op itself is busy, not backpressured"
        );
    }

    #[test]
    fn timely_forwards_capped_rates() {
        let flow = test_flow(1.0e8);
        let prof = PerfProfile::default();
        let st = timely_steady_state(&prof, &flow, &ParallelismAssignment::uniform(&flow, 1));
        // Filter saturates; map downstream sees only filter's capped output.
        assert!(st.processed[0] < st.arrivals[0]);
        assert!(st.bottleneck_85[0]);
        let expected_map_arrivals = st.processed[0] * 0.3;
        assert!((st.arrivals[1] - expected_map_arrivals).abs() < 1.0);
    }

    #[test]
    fn timely_no_bottleneck_when_provisioned() {
        let flow = test_flow(100.0);
        let prof = PerfProfile::default();
        let st = timely_steady_state(&prof, &flow, &ParallelismAssignment::uniform(&flow, 2));
        assert!(st.bottleneck_85.iter().all(|&b| !b));
        assert_eq!(st.processed, st.arrivals);
    }

    #[test]
    fn raising_parallelism_clears_backpressure() {
        let flow = test_flow(3.0e6);
        let prof = PerfProfile::default();
        let low = flink_steady_state(&prof, &flow, &ParallelismAssignment::uniform(&flow, 1));
        assert!(low.throttle < 1.0);
        let high = flink_steady_state(&prof, &flow, &ParallelismAssignment::uniform(&flow, 40));
        assert_eq!(high.throttle, 1.0);
    }
}
