//! Measurement noise for tuner-visible observations.
//!
//! Paper §V-C/§V-E attributes DS2's and ContTune's failures to the
//! difficulty of measuring *useful time* accurately on a real cluster:
//! "accurately measuring useful time … is intricate in real-world dataflow
//! executions and may impact the accuracy of parallelism recommendations".
//! We reproduce that by corrupting the per-instance processing rate derived
//! from useful time with multiplicative log-normal noise, deterministic in
//! `(cluster seed, job, operator, deploy counter)` so experiments replay.
//!
//! Binary signals (bottleneck labels, backpressure flags) are *not* noised:
//! they come from coarse time-fraction metrics that are robust in practice —
//! this asymmetry is exactly the paper's argument for predicting bottleneck
//! indicators instead of regressing performance (challenge C1).

use serde::{Deserialize, Serialize};

/// Deterministic noise source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Base seed (cluster identity).
    pub seed: u64,
    /// Standard deviation of the log-normal multiplicative noise applied to
    /// useful-time-derived rates. Default 0.06 ≈ ±6 % typical error.
    pub sigma: f64,
    /// Systematic multiplicative bias on useful-time-derived rates.
    ///
    /// Real engines cannot cleanly separate framework overhead
    /// (serialization buffers, timers, GC) from per-record processing, so
    /// measured "useful time" over-states the record cost and the derived
    /// per-instance rate *under-states* capability. Rate-based tuners
    /// (DS2, ContTune) inherit this bias and systematically over-provision
    /// — the effect behind paper Fig. 6's ordering. Default 0.88.
    pub bias: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel {
            seed: 0x0BAD_5EED,
            sigma: 0.06,
            bias: 0.88,
        }
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn to_unit(z: u64) -> f64 {
    ((z >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

impl NoiseModel {
    /// New model with explicit seed and sigma (no systematic bias — an
    /// idealized engine; use [`NoiseModel::default`]'s bias for realism).
    pub fn new(seed: u64, sigma: f64) -> Self {
        assert!(sigma >= 0.0);
        NoiseModel {
            seed,
            sigma,
            bias: 1.0,
        }
    }

    /// Set the systematic useful-time bias.
    pub fn with_bias(mut self, bias: f64) -> Self {
        assert!(bias > 0.0);
        self.bias = bias;
        self
    }

    /// A standard-normal sample keyed by `(a, b, c)` (Box–Muller over two
    /// deterministic uniforms).
    pub fn gaussian(&self, a: u64, b: u64, c: u64) -> f64 {
        let k = splitmix(
            self.seed ^ splitmix(a) ^ splitmix(b.rotate_left(17)) ^ splitmix(c.rotate_left(39)),
        );
        let u1 = to_unit(k);
        let u2 = to_unit(splitmix(k));
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Multiplicative log-normal factor `exp(σ·Z)` keyed by `(a, b, c)`.
    pub fn rate_factor(&self, a: u64, b: u64, c: u64) -> f64 {
        (self.sigma * self.gaussian(a, b, c)).exp()
    }

    /// Corrupt a true rate observation (bias then jitter).
    pub fn observe_rate(&self, true_rate: f64, a: u64, b: u64, c: u64) -> f64 {
        true_rate * self.bias * self.rate_factor(a, b, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_replay() {
        let n = NoiseModel::default();
        assert_eq!(
            n.observe_rate(100.0, 1, 2, 3),
            n.observe_rate(100.0, 1, 2, 3)
        );
    }

    #[test]
    fn different_keys_differ() {
        let n = NoiseModel::default();
        assert_ne!(
            n.observe_rate(100.0, 1, 2, 3),
            n.observe_rate(100.0, 1, 2, 4)
        );
    }

    #[test]
    fn zero_sigma_is_exact() {
        let n = NoiseModel::new(7, 0.0);
        assert_eq!(n.observe_rate(123.4, 9, 9, 9), 123.4);
    }

    #[test]
    fn noise_is_roughly_unbiased_and_bounded() {
        let n = NoiseModel::new(42, 0.06);
        let mut sum = 0.0;
        let mut count = 0;
        for a in 0..200u64 {
            for b in 0..5u64 {
                let f = n.rate_factor(a, b, 0);
                assert!(f > 0.5 && f < 2.0, "factor {f} out of sane range");
                sum += f;
                count += 1;
            }
        }
        let mean = sum / f64::from(count);
        assert!(
            (mean - 1.0).abs() < 0.02,
            "mean factor {mean} should be ≈ 1"
        );
    }

    #[test]
    fn gaussian_moments() {
        let n = NoiseModel::new(5, 1.0);
        let samples: Vec<f64> = (0..4000u64).map(|i| n.gaussian(i, 0, 0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.06, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
