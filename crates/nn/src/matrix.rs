//! Minimal dense row-major matrix used by the neural network stack.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// A dense `rows × cols` matrix of `f64`, row-major.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Construct from a row-major data vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must match dims");
        Matrix { rows, cols, data }
    }

    /// Construct from nested rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty());
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// A 1×n row vector.
    pub fn row_vector(v: &[f64]) -> Self {
        Matrix::from_vec(1, v.len(), v.to_vec())
    }

    /// A n×1 column vector.
    pub fn col_vector(v: &[f64]) -> Self {
        Matrix::from_vec(v.len(), 1, v.to_vec())
    }

    /// Xavier/Glorot-uniform initialization for a `rows × cols` weight.
    pub fn xavier<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.random_range(-limit..limit))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Underlying data, row-major.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix product `self × other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} × {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let crow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (c, &o) in crow.iter_mut().zip(orow) {
                    *c += a * o;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape());
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape());
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise product (Hadamard).
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape());
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| a * s).collect(),
        }
    }

    /// Apply `f` elementwise.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// Add a 1×cols row vector to every row (bias broadcast).
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1);
        assert_eq!(bias.cols, self.cols);
        let mut out = self.clone();
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[r * self.cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Concatenate columns: `[self | other]` (same row count).
    pub fn concat_cols(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows);
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Matrix {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Sum over all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Column sums as a 1×cols matrix.
    pub fn col_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_vec(2, 2, vec![58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
    }

    #[test]
    fn broadcast_bias() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        let c = a.add_row_broadcast(&b);
        assert_eq!(c.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(c.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn concat_cols_layout() {
        let a = Matrix::from_vec(2, 1, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let w = Matrix::xavier(10, 20, &mut rng);
        let limit = (6.0_f64 / 30.0).sqrt();
        assert!(w.data().iter().all(|&x| x.abs() <= limit));
        assert!(w.norm() > 0.0);
    }

    #[test]
    fn col_sums_correct() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.col_sums(), Matrix::from_vec(1, 2, vec![4.0, 6.0]));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
