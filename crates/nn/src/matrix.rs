//! Minimal dense row-major matrix used by the neural network stack.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// A dense `rows × cols` matrix of `f64`, row-major.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Construct from a row-major data vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must match dims");
        Matrix { rows, cols, data }
    }

    /// Construct from nested rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty());
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// A 1×n row vector.
    pub fn row_vector(v: &[f64]) -> Self {
        Matrix::from_vec(1, v.len(), v.to_vec())
    }

    /// A n×1 column vector.
    pub fn col_vector(v: &[f64]) -> Self {
        Matrix::from_vec(v.len(), 1, v.to_vec())
    }

    /// Xavier/Glorot-uniform initialization for a `rows × cols` weight.
    pub fn xavier<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.random_range(-limit..limit))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Underlying data, row-major.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Rebuild a matrix from a recycled buffer: the buffer is cleared,
    /// resized to `rows × cols` and zero-filled, reusing its allocation.
    pub fn from_buffer(rows: usize, cols: usize, mut buf: Vec<f64>) -> Self {
        buf.clear();
        buf.resize(rows * cols, 0.0);
        Matrix {
            rows,
            cols,
            data: buf,
        }
    }

    /// Consume the matrix, returning its backing buffer for reuse.
    pub fn into_buffer(self) -> Vec<f64> {
        self.data
    }

    /// Reshape in place to `rows × cols`, zero-filling (allocation is kept
    /// whenever the new size fits).
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Zero every element, keeping the shape and allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Copy `other` into `self`, reshaping as needed (allocation reused).
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Matrix product `self × other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix product `self × other` written into `out` (which is reshaped
    /// and overwritten; its allocation is reused).
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} × {:?}",
            self.shape(),
            other.shape()
        );
        out.reset(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let crow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (c, &o) in crow.iter_mut().zip(orow) {
                    *c += a * o;
                }
            }
        }
    }

    /// `self × otherᵀ` written into `out` — the `∂L/∂A` kernel of a matmul
    /// backward pass, without materializing the transpose.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_nt shape mismatch: {:?} × {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        out.reset(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            let crow = &mut out.data[i * other.rows..(i + 1) * other.rows];
            for (j, c) in crow.iter_mut().enumerate() {
                let brow = &other.data[j * other.cols..(j + 1) * other.cols];
                let mut acc = 0.0;
                for (a, b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                *c = acc;
            }
        }
    }

    /// `selfᵀ × other` written into `out` — the `∂L/∂B` kernel of a matmul
    /// backward pass, without materializing the transpose.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows,
            other.rows,
            "matmul_tn shape mismatch: {:?}ᵀ × {:?}",
            self.shape(),
            other.shape()
        );
        out.reset(self.cols, other.cols);
        for i in 0..self.rows {
            let orow = &other.data[i * other.cols..(i + 1) * other.cols];
            for j in 0..self.cols {
                let a = self.data[i * self.cols + j];
                if a == 0.0 {
                    continue;
                }
                let crow = &mut out.data[j * other.cols..(j + 1) * other.cols];
                for (c, &o) in crow.iter_mut().zip(orow) {
                    *c += a * o;
                }
            }
        }
    }

    /// `self += alpha · other` (BLAS `axpy`), elementwise in place.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// `self += other`, elementwise in place.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Fused `relu(x × w + bias)` written into `out` — one pass over the
    /// output instead of three tape nodes (matmul, bias broadcast, ReLU).
    pub fn linear_bias_relu_into(x: &Matrix, w: &Matrix, bias: &Matrix, out: &mut Matrix) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, w.cols, "bias/weight width mismatch");
        x.matmul_into(w, out);
        for r in 0..out.rows {
            let row = &mut out.data[r * out.cols..(r + 1) * out.cols];
            for (o, &b) in row.iter_mut().zip(&bias.data) {
                *o = (*o + b).max(0.0);
            }
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape());
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape());
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise product (Hadamard).
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape());
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| a * s).collect(),
        }
    }

    /// Apply `f` elementwise.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// Add a 1×cols row vector to every row (bias broadcast).
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1);
        assert_eq!(bias.cols, self.cols);
        let mut out = self.clone();
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[r * self.cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Concatenate columns: `[self | other]` (same row count).
    pub fn concat_cols(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows);
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Matrix {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Sum over all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Column sums as a 1×cols matrix.
    pub fn col_sums(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_vec(2, 2, vec![58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
    }

    #[test]
    fn broadcast_bias() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        let c = a.add_row_broadcast(&b);
        assert_eq!(c.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(c.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn concat_cols_layout() {
        let a = Matrix::from_vec(2, 1, vec![1.0, 2.0]);
        let b = Matrix::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let w = Matrix::xavier(10, 20, &mut rng);
        let limit = (6.0_f64 / 30.0).sqrt();
        assert!(w.data().iter().all(|&x| x.abs() <= limit));
        assert!(w.norm() > 0.0);
    }

    #[test]
    fn col_sums_correct() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.col_sums(), Matrix::from_vec(1, 2, vec![4.0, 6.0]));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_into_reuses_buffer_and_matches() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let mut out = Matrix::zeros(5, 7); // wrong shape on purpose
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    fn matmul_nt_tn_match_explicit_transposes() {
        let a = Matrix::from_vec(2, 3, vec![1.0, -2.0, 3.0, 0.5, 4.0, -1.0]);
        let b = Matrix::from_vec(
            4,
            3,
            vec![2.0, 1.0, 0.0, -1.0, 3.0, 2.0, 0.5, 0.0, 1.0, 2.0, -2.0, 1.0],
        );
        let mut nt = Matrix::default();
        a.matmul_nt_into(&b, &mut nt);
        assert_eq!(nt, a.matmul(&b.transpose()));
        let c = Matrix::from_vec(2, 4, vec![1.0, 0.0, 2.0, -1.0, 3.0, 1.0, 0.0, 2.0]);
        let mut tn = Matrix::default();
        a.matmul_tn_into(&c, &mut tn);
        assert_eq!(tn, a.transpose().matmul(&c));
    }

    #[test]
    fn axpy_and_add_assign() {
        let mut y = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let x = Matrix::from_vec(1, 3, vec![10.0, 20.0, 30.0]);
        y.axpy(0.5, &x);
        assert_eq!(y, Matrix::from_vec(1, 3, vec![6.0, 12.0, 18.0]));
        y.add_assign(&x);
        assert_eq!(y, Matrix::from_vec(1, 3, vec![16.0, 32.0, 48.0]));
    }

    #[test]
    fn fused_linear_bias_relu_matches_composed_ops() {
        let x = Matrix::from_vec(2, 3, vec![0.5, -1.0, 2.0, 1.0, 0.0, -0.5]);
        let w = Matrix::from_vec(3, 2, vec![1.0, -1.0, 0.5, 2.0, -2.0, 1.0]);
        let b = Matrix::row_vector(&[0.1, -0.2]);
        let mut fused = Matrix::default();
        Matrix::linear_bias_relu_into(&x, &w, &b, &mut fused);
        let reference = x.matmul(&w).add_row_broadcast(&b).map(|v| v.max(0.0));
        assert_eq!(fused, reference);
    }

    #[test]
    fn buffer_roundtrip_preserves_capacity_semantics() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let buf = m.into_buffer();
        let z = Matrix::from_buffer(3, 1, buf);
        assert_eq!(z, Matrix::zeros(3, 1));
    }
}
