//! CSR sparse adjacency for GNN message passing.
//!
//! Dataflow DAGs have `O(n)` edges, so aggregating neighbour messages as a
//! dense `n × n` matmul wastes `O(n²h)` work per layer. [`CsrAdj`] stores
//! the row-normalized predecessor/successor adjacency in compressed sparse
//! row form and aggregates with `spmm` over the actual neighbour lists.
//!
//! Column indices within each row are kept ascending, so [`CsrAdj::spmm_into`]
//! accumulates contributions in exactly the same order as the zero-skipping
//! dense `matmul` — sparse and dense message passing are bit-identical, not
//! merely close.

use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// A sparse `rows × cols` matrix in compressed sparse row format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrAdj {
    rows: usize,
    cols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes row `i`'s entries.
    row_ptr: Vec<usize>,
    /// Column index per non-zero, ascending within each row.
    col_idx: Vec<usize>,
    /// Value per non-zero.
    vals: Vec<f64>,
}

impl CsrAdj {
    /// Build from a dense matrix, keeping every non-zero entry.
    pub fn from_dense(m: &Matrix) -> Self {
        let (rows, cols) = m.shape();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for r in 0..rows {
            for (c, &v) in m.row(r).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(c);
                    vals.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrAdj {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Build an `n × n` adjacency from weighted edges `(row, col, weight)`.
    /// Entries are sorted into canonical (row-major, ascending-column) order.
    pub fn from_edges(n: usize, edges: &[(usize, usize, f64)]) -> Self {
        let mut sorted: Vec<(usize, usize, f64)> = edges.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut vals = Vec::with_capacity(sorted.len());
        row_ptr.push(0);
        let mut next = sorted.iter().peekable();
        for r in 0..n {
            while let Some(&&(er, ec, ev)) = next.peek() {
                if er != r {
                    break;
                }
                assert!(ec < n, "edge column out of range");
                col_idx.push(ec);
                vals.push(ev);
                next.next();
            }
            row_ptr.push(col_idx.len());
        }
        assert!(next.peek().is_none(), "edge row out of range");
        CsrAdj {
            rows: n,
            cols: n,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Densify (tests, interop).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                out.set(r, self.col_idx[k], self.vals[k]);
            }
        }
        out
    }

    /// `out = self × h` (sparse × dense). Contributions accumulate in
    /// ascending column order, matching the zero-skipping dense matmul
    /// bit for bit.
    pub fn spmm_into(&self, h: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, h.rows(), "spmm shape mismatch");
        let hc = h.cols();
        out.reset(self.rows, hc);
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let a = self.vals[k];
                let hrow = h.row(self.col_idx[k]);
                let orow = &mut out.data_mut()[r * hc..(r + 1) * hc];
                for (o, &x) in orow.iter_mut().zip(hrow) {
                    *o += a * x;
                }
            }
        }
    }

    /// `out = selfᵀ × g` (the backward of [`CsrAdj::spmm_into`] w.r.t. `h`),
    /// scattering row contributions in ascending row order — deterministic
    /// and bit-identical to the dense `Aᵀ × G` kernel.
    pub fn spmm_transpose_into(&self, g: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, g.rows(), "spmm_transpose shape mismatch");
        let gc = g.cols();
        out.reset(self.cols, gc);
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let a = self.vals[k];
                let c = self.col_idx[k];
                let grow = &g.data()[r * gc..(r + 1) * gc];
                let orow = &mut out.data_mut()[c * gc..(c + 1) * gc];
                for (o, &x) in orow.iter_mut().zip(grow) {
                    *o += a * x;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_example() -> Matrix {
        Matrix::from_rows(&[
            vec![0.0, 0.5, 0.5, 0.0],
            vec![0.0, 0.0, 0.0, 1.0],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.25, 0.25, 0.25, 0.25],
        ])
    }

    #[test]
    fn dense_roundtrip() {
        let d = dense_example();
        let csr = CsrAdj::from_dense(&d);
        assert_eq!(csr.nnz(), 7);
        assert_eq!(csr.to_dense(), d);
    }

    #[test]
    fn from_edges_matches_from_dense() {
        let d = dense_example();
        let mut edges = Vec::new();
        for r in 0..4 {
            for c in 0..4 {
                if d.get(r, c) != 0.0 {
                    edges.push((r, c, d.get(r, c)));
                }
            }
        }
        // Shuffle the order; canonicalization must restore it.
        edges.reverse();
        assert_eq!(CsrAdj::from_edges(4, &edges), CsrAdj::from_dense(&d));
    }

    #[test]
    fn spmm_matches_dense_matmul_exactly() {
        let d = dense_example();
        let csr = CsrAdj::from_dense(&d);
        let h = Matrix::from_rows(&[
            vec![1.0, -2.0, 0.3],
            vec![0.7, 1.1, -0.4],
            vec![-1.5, 0.2, 2.0],
            vec![0.9, -0.6, 1.3],
        ]);
        let mut out = Matrix::default();
        csr.spmm_into(&h, &mut out);
        assert_eq!(out, d.matmul(&h), "sparse and dense must be bit-identical");
    }

    #[test]
    fn spmm_transpose_matches_dense_transpose_matmul() {
        let d = dense_example();
        let csr = CsrAdj::from_dense(&d);
        let g = Matrix::from_rows(&[
            vec![0.2, 1.0],
            vec![-0.3, 0.4],
            vec![1.5, -2.0],
            vec![0.8, 0.1],
        ]);
        let mut out = Matrix::default();
        csr.spmm_transpose_into(&g, &mut out);
        let mut reference = Matrix::default();
        d.matmul_tn_into(&g, &mut reference);
        assert_eq!(out, reference);
        assert_eq!(out, d.transpose().matmul(&g));
    }

    #[test]
    #[should_panic(expected = "edge row out of range")]
    fn from_edges_rejects_out_of_range_row() {
        CsrAdj::from_edges(2, &[(5, 0, 1.0)]);
    }
}
