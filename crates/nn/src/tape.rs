//! Tiny reverse-mode autodiff over [`Matrix`] values.
//!
//! A [`Tape`] is an arena of operation nodes built during the forward pass;
//! [`Tape::backward_from`] walks it in reverse, accumulating gradients.
//! Graph aggregation in the GNN is expressed either as multiplication by a
//! constant dense (row-normalized) adjacency matrix or — the fast path — as
//! [`Tape::spmm`] against a constant [`CsrAdj`], so the whole encoder is
//! expressible with the handful of ops here.
//!
//! ## Allocation reuse
//!
//! Every value, gradient and backward temporary lives in a buffer drawn
//! from the tape's internal pool. [`Tape::reset`] clears the node arena but
//! returns all buffers to the pool, so a training loop that calls `reset`
//! between samples reaches a steady state where the tape itself performs
//! **zero** heap allocation per step (callers may still allocate — e.g.
//! the GNN forward copies its two constant CSR adjacencies, a few hundred
//! bytes per sample, into `Rc` handles for the `spmm` nodes). Fused ops
//! ([`Tape::linear_bias_relu`],
//! [`Tape::add_bias_relu`]) collapse the matmul/bias/ReLU trio into one
//! node, shrinking both the arena and the backward pass.

use crate::matrix::Matrix;
use crate::sparse::CsrAdj;
use std::rc::Rc;

/// Handle to a value on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    /// Leaf value (input or parameter); no backward.
    Leaf,
    /// `a × b` (matrix product).
    MatMul(usize, usize),
    /// `adj × h` where `adj` is a constant sparse matrix (not a variable).
    Spmm(Rc<CsrAdj>, usize),
    /// `a + b` (same shape).
    Add(usize, usize),
    /// `a - b`.
    Sub(usize, usize),
    /// `a ⊙ b` elementwise.
    Mul(usize, usize),
    /// `a + bias` broadcast of 1×c row to each row of a.
    AddBias(usize, usize),
    /// Fused `relu(a + bias)` broadcast.
    AddBiasRelu(usize, usize),
    /// Fused `relu(x × w + bias)`.
    LinearBiasRelu(usize, usize, usize),
    /// `relu(a)`.
    Relu(usize),
    /// `sigmoid(a)`.
    Sigmoid(usize),
    /// `tanh(a)`.
    Tanh(usize),
    /// `a · s` scalar.
    Scale(usize, f64),
    /// Column concatenation `[a | b]`.
    ConcatCols(usize, usize, usize), // (a, b, a_cols)
}

#[derive(Debug)]
struct Node {
    op: Op,
    value: Matrix,
    grad: Matrix,
    /// Whether any gradient has reached this node in the current backward.
    touched: bool,
}

/// Arena of forward values + backward rules, with a recycled buffer pool.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
    pool: Vec<Vec<f64>>,
}

impl Tape {
    /// New empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Clear all nodes, recycling every buffer into the pool. After the
    /// first forward/backward cycle, subsequent cycles on a same-shaped
    /// graph allocate nothing.
    pub fn reset(&mut self) {
        for node in self.nodes.drain(..) {
            let v = node.value.into_buffer();
            if v.capacity() > 0 {
                self.pool.push(v);
            }
            let g = node.grad.into_buffer();
            if g.capacity() > 0 {
                self.pool.push(g);
            }
        }
    }

    /// Number of nodes currently on the tape.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// A zeroed `r × c` matrix backed by a pooled buffer when available.
    fn alloc(&mut self, r: usize, c: usize) -> Matrix {
        match self.pool.pop() {
            Some(buf) => Matrix::from_buffer(r, c, buf),
            None => Matrix::zeros(r, c),
        }
    }

    /// An empty matrix backed by a pooled buffer; `_into` kernels reshape it.
    fn alloc_empty(&mut self) -> Matrix {
        match self.pool.pop() {
            Some(buf) => Matrix::from_buffer(0, 0, buf),
            None => Matrix::default(),
        }
    }

    fn recycle(&mut self, m: Matrix) {
        let buf = m.into_buffer();
        if buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    fn push(&mut self, op: Op, value: Matrix) -> Var {
        let (r, c) = value.shape();
        let grad = self.alloc(r, c);
        self.nodes.push(Node {
            op,
            value,
            grad,
            touched: false,
        });
        Var(self.nodes.len() - 1)
    }

    /// Insert a leaf (input or parameter snapshot), taking ownership.
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(Op::Leaf, value)
    }

    /// Insert a leaf by copying `value` into a pooled buffer — the
    /// allocation-free variant of [`Tape::leaf`] for parameter binding.
    pub fn leaf_copy(&mut self, value: &Matrix) -> Var {
        let mut v = self.alloc_empty();
        v.copy_from(value);
        self.push(Op::Leaf, v)
    }

    /// Current value of `v`.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Gradient of the loss w.r.t. `v` (valid after [`Tape::backward_from`]).
    pub fn grad(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].grad
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let mut out = self.alloc_empty();
        self.nodes[a.0]
            .value
            .matmul_into(&self.nodes[b.0].value, &mut out);
        self.push(Op::MatMul(a.0, b.0), out)
    }

    /// Sparse × dense product against a constant adjacency (not a variable;
    /// gradients flow only to `h`).
    pub fn spmm(&mut self, adj: Rc<CsrAdj>, h: Var) -> Var {
        let mut out = self.alloc_empty();
        adj.spmm_into(&self.nodes[h.0].value, &mut out);
        self.push(Op::Spmm(adj, h.0), out)
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let mut out = self.alloc_empty();
        out.copy_from(&self.nodes[a.0].value);
        out.add_assign(&self.nodes[b.0].value);
        self.push(Op::Add(a.0, b.0), out)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let mut out = self.alloc_empty();
        out.copy_from(&self.nodes[a.0].value);
        out.axpy(-1.0, &self.nodes[b.0].value);
        self.push(Op::Sub(a.0, b.0), out)
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut out = self.alloc(r, c);
        for ((o, &x), &y) in out
            .data_mut()
            .iter_mut()
            .zip(self.nodes[a.0].value.data())
            .zip(self.nodes[b.0].value.data())
        {
            *o = x * y;
        }
        self.push(Op::Mul(a.0, b.0), out)
    }

    /// Broadcast-add a 1×c bias row to every row of `a`.
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Var {
        let mut out = self.alloc_empty();
        out.copy_from(&self.nodes[a.0].value);
        broadcast_add_bias(&mut out, &self.nodes[bias.0].value, false);
        self.push(Op::AddBias(a.0, bias.0), out)
    }

    /// Fused `relu(a + bias)` broadcast — one node instead of two.
    pub fn add_bias_relu(&mut self, a: Var, bias: Var) -> Var {
        let mut out = self.alloc_empty();
        out.copy_from(&self.nodes[a.0].value);
        broadcast_add_bias(&mut out, &self.nodes[bias.0].value, true);
        self.push(Op::AddBiasRelu(a.0, bias.0), out)
    }

    /// Fused `relu(x × w + bias)` — one node instead of three.
    pub fn linear_bias_relu(&mut self, x: Var, w: Var, bias: Var) -> Var {
        let mut out = self.alloc_empty();
        Matrix::linear_bias_relu_into(
            &self.nodes[x.0].value,
            &self.nodes[w.0].value,
            &self.nodes[bias.0].value,
            &mut out,
        );
        self.push(Op::LinearBiasRelu(x.0, w.0, bias.0), out)
    }

    /// ReLU activation.
    pub fn relu(&mut self, a: Var) -> Var {
        let out = self.map_of(a, |x| x.max(0.0));
        self.push(Op::Relu(a.0), out)
    }

    /// Sigmoid activation.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let out = self.map_of(a, |x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid(a.0), out)
    }

    /// Tanh activation.
    pub fn tanh(&mut self, a: Var) -> Var {
        let out = self.map_of(a, f64::tanh);
        self.push(Op::Tanh(a.0), out)
    }

    fn map_of(&mut self, a: Var, f: impl Fn(f64) -> f64) -> Matrix {
        let (r, c) = self.nodes[a.0].value.shape();
        let mut out = self.alloc(r, c);
        for (o, &x) in out.data_mut().iter_mut().zip(self.nodes[a.0].value.data()) {
            *o = f(x);
        }
        out
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: Var, s: f64) -> Var {
        let out = self.map_of(a, |x| x * s);
        self.push(Op::Scale(a.0, s), out)
    }

    /// Column concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let ac = self.nodes[a.0].value.cols();
        let v = self.nodes[a.0].value.concat_cols(&self.nodes[b.0].value);
        self.push(Op::ConcatCols(a.0, b.0, ac), v)
    }

    /// Masked binary cross-entropy loss against `targets` for the rows
    /// selected by `mask` (1.0 = labeled, 0.0 = ignore); `pred` must hold
    /// probabilities in (0,1). Returns `(loss_value, d_loss/d_pred)` and the
    /// gradient is seeded internally — call [`Tape::backward_from`] with the
    /// returned gradient.
    pub fn bce_grad(pred: &Matrix, targets: &Matrix, mask: &Matrix) -> (f64, Matrix) {
        assert_eq!(pred.shape(), targets.shape());
        assert_eq!(pred.shape(), mask.shape());
        let eps = 1e-9;
        let labeled: f64 = mask.data().iter().sum::<f64>().max(1.0);
        let mut grad = Matrix::zeros(pred.rows(), pred.cols());
        let mut loss = 0.0;
        for i in 0..pred.data().len() {
            let m = mask.data()[i];
            if m == 0.0 {
                continue;
            }
            let p = pred.data()[i].clamp(eps, 1.0 - eps);
            let y = targets.data()[i];
            loss += -(y * p.ln() + (1.0 - y) * (1.0 - p).ln());
            grad.data_mut()[i] = (p - y) / (p * (1.0 - p)) / labeled;
        }
        (loss / labeled, grad)
    }

    /// Run backward from `output` with an explicit output gradient.
    pub fn backward_from(&mut self, output: Var, out_grad: Matrix) {
        assert_eq!(self.nodes[output.0].value.shape(), out_grad.shape());
        for n in &mut self.nodes {
            n.grad.fill_zero();
            n.touched = false;
        }
        self.nodes[output.0].grad.copy_from(&out_grad);
        self.nodes[output.0].touched = true;
        self.recycle(out_grad);

        for i in (0..=output.0).rev() {
            if !self.nodes[i].touched {
                continue;
            }
            let op = self.nodes[i].op.clone();
            let grad = std::mem::take(&mut self.nodes[i].grad);
            match op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let mut ga = self.alloc_empty();
                    grad.matmul_nt_into(&self.nodes[b].value, &mut ga);
                    self.acc_owned(a, ga);
                    let mut gb = self.alloc_empty();
                    self.nodes[a].value.matmul_tn_into(&grad, &mut gb);
                    self.acc_owned(b, gb);
                }
                Op::Spmm(adj, h) => {
                    let mut gh = self.alloc_empty();
                    adj.spmm_transpose_into(&grad, &mut gh);
                    self.acc_owned(h, gh);
                }
                Op::Add(a, b) => {
                    self.acc_ref(a, &grad);
                    self.acc_ref(b, &grad);
                }
                Op::Sub(a, b) => {
                    self.acc_ref(a, &grad);
                    self.acc_scaled(b, -1.0, &grad);
                }
                Op::Mul(a, b) => {
                    let mut ga = self.alloc_empty();
                    ga.copy_from(&grad);
                    hadamard_assign(&mut ga, &self.nodes[b].value);
                    self.acc_owned(a, ga);
                    let mut gb = self.alloc_empty();
                    gb.copy_from(&grad);
                    hadamard_assign(&mut gb, &self.nodes[a].value);
                    self.acc_owned(b, gb);
                }
                Op::AddBias(a, bias) => {
                    self.acc_ref(a, &grad);
                    self.acc_col_sums(bias, &grad);
                }
                Op::AddBiasRelu(a, bias) => {
                    let mut dz = self.alloc_empty();
                    dz.copy_from(&grad);
                    relu_mask_assign(&mut dz, &self.nodes[i].value);
                    self.acc_ref(a, &dz);
                    self.acc_col_sums(bias, &dz);
                    self.recycle(dz);
                }
                Op::LinearBiasRelu(x, w, bias) => {
                    let mut dz = self.alloc_empty();
                    dz.copy_from(&grad);
                    relu_mask_assign(&mut dz, &self.nodes[i].value);
                    let mut gx = self.alloc_empty();
                    dz.matmul_nt_into(&self.nodes[w].value, &mut gx);
                    self.acc_owned(x, gx);
                    let mut gw = self.alloc_empty();
                    self.nodes[x].value.matmul_tn_into(&dz, &mut gw);
                    self.acc_owned(w, gw);
                    self.acc_col_sums(bias, &dz);
                    self.recycle(dz);
                }
                Op::Relu(a) => {
                    let mut ga = self.alloc_empty();
                    ga.copy_from(&grad);
                    relu_mask_assign(&mut ga, &self.nodes[i].value);
                    self.acc_owned(a, ga);
                }
                Op::Sigmoid(a) => {
                    let mut ga = self.alloc_empty();
                    ga.copy_from(&grad);
                    for (g, &s) in ga.data_mut().iter_mut().zip(self.nodes[i].value.data()) {
                        *g *= s * (1.0 - s);
                    }
                    self.acc_owned(a, ga);
                }
                Op::Tanh(a) => {
                    let mut ga = self.alloc_empty();
                    ga.copy_from(&grad);
                    for (g, &t) in ga.data_mut().iter_mut().zip(self.nodes[i].value.data()) {
                        *g *= 1.0 - t * t;
                    }
                    self.acc_owned(a, ga);
                }
                Op::Scale(a, s) => {
                    self.acc_scaled(a, s, &grad);
                }
                Op::ConcatCols(a, b, a_cols) => {
                    let rows = grad.rows();
                    let total = grad.cols();
                    {
                        let na = &mut self.nodes[a];
                        na.touched = true;
                        for r in 0..rows {
                            let src = &grad.row(r)[..a_cols];
                            let dst = &mut na.grad.data_mut()[r * a_cols..(r + 1) * a_cols];
                            for (d, &g) in dst.iter_mut().zip(src) {
                                *d += g;
                            }
                        }
                    }
                    {
                        let b_cols = total - a_cols;
                        let nb = &mut self.nodes[b];
                        nb.touched = true;
                        for r in 0..rows {
                            let src = &grad.row(r)[a_cols..];
                            let dst = &mut nb.grad.data_mut()[r * b_cols..(r + 1) * b_cols];
                            for (d, &g) in dst.iter_mut().zip(src) {
                                *d += g;
                            }
                        }
                    }
                }
            }
            self.nodes[i].grad = grad;
        }
    }

    /// `nodes[idx].grad += g`, consuming and recycling `g`.
    fn acc_owned(&mut self, idx: usize, g: Matrix) {
        let n = &mut self.nodes[idx];
        n.grad.add_assign(&g);
        n.touched = true;
        self.recycle(g);
    }

    /// `nodes[idx].grad += g` from a borrowed gradient.
    fn acc_ref(&mut self, idx: usize, g: &Matrix) {
        let n = &mut self.nodes[idx];
        n.grad.add_assign(g);
        n.touched = true;
    }

    /// `nodes[idx].grad += s · g`.
    fn acc_scaled(&mut self, idx: usize, s: f64, g: &Matrix) {
        let n = &mut self.nodes[idx];
        n.grad.axpy(s, g);
        n.touched = true;
    }

    /// `nodes[idx].grad += column_sums(g)` (bias backward).
    fn acc_col_sums(&mut self, idx: usize, g: &Matrix) {
        let n = &mut self.nodes[idx];
        n.touched = true;
        let cols = g.cols();
        debug_assert_eq!(n.grad.cols(), cols);
        for r in 0..g.rows() {
            let src = g.row(r);
            let dst = n.grad.data_mut();
            for (d, &v) in dst.iter_mut().zip(src) {
                *d += v;
            }
        }
    }
}

/// `m[r][c] += bias[c]` for every row; optionally clamp at zero (ReLU).
fn broadcast_add_bias(m: &mut Matrix, bias: &Matrix, relu: bool) {
    assert_eq!(bias.rows(), 1);
    assert_eq!(bias.cols(), m.cols());
    let cols = m.cols();
    for r in 0..m.rows() {
        let row = &mut m.data_mut()[r * cols..(r + 1) * cols];
        for (o, &b) in row.iter_mut().zip(bias.data()) {
            *o += b;
            if relu {
                *o = o.max(0.0);
            }
        }
    }
}

/// `m ⊙= other` elementwise.
fn hadamard_assign(m: &mut Matrix, other: &Matrix) {
    debug_assert_eq!(m.shape(), other.shape());
    for (a, &b) in m.data_mut().iter_mut().zip(other.data()) {
        *a *= b;
    }
}

/// Zero `m` wherever the fused op's output `y` was clamped (`y <= 0`).
fn relu_mask_assign(m: &mut Matrix, y: &Matrix) {
    debug_assert_eq!(m.shape(), y.shape());
    for (g, &v) in m.data_mut().iter_mut().zip(y.data()) {
        if v <= 0.0 {
            *g = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference check of a scalar function of one leaf.
    fn check_grad(f: impl Fn(&mut Tape, Var) -> Var, x0: Matrix) {
        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let y = f(&mut tape, x);
        assert_eq!(tape.value(y).shape(), (1, 1), "loss must be scalar-shaped");
        tape.backward_from(y, Matrix::full(1, 1, 1.0));
        let analytic = tape.grad(x).clone();

        let h = 1e-6;
        for i in 0..x0.data().len() {
            let mut plus = x0.clone();
            plus.data_mut()[i] += h;
            let mut tp = Tape::new();
            let xp = tp.leaf(plus);
            let yp = f(&mut tp, xp);
            let mut minus = x0.clone();
            minus.data_mut()[i] -= h;
            let mut tm = Tape::new();
            let xm = tm.leaf(minus);
            let ym = f(&mut tm, xm);
            let numeric = (tp.value(yp).get(0, 0) - tm.value(ym).get(0, 0)) / (2.0 * h);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
                "grad[{i}]: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn grad_of_quadratic() {
        // f(x) = sum(x ⊙ x) via x·xᵀ for a row vector.
        check_grad(
            |t, x| {
                let y = t.mul(x, x);
                // reduce 1×3 → scalar via matmul with ones.
                let ones = t.leaf(Matrix::col_vector(&[1.0, 1.0, 1.0]));
                t.matmul(y, ones)
            },
            Matrix::row_vector(&[1.0, -2.0, 0.5]),
        );
    }

    #[test]
    fn grad_through_relu_sigmoid() {
        check_grad(
            |t, x| {
                let r = t.relu(x);
                let s = t.sigmoid(r);
                let ones = t.leaf(Matrix::col_vector(&[1.0, 1.0, 1.0]));
                t.matmul(s, ones)
            },
            Matrix::row_vector(&[0.3, -0.7, 1.2]),
        );
    }

    #[test]
    fn grad_through_matmul_chain() {
        let w = Matrix::from_vec(3, 2, vec![0.1, -0.2, 0.4, 0.3, -0.5, 0.6]);
        check_grad(
            move |t, x| {
                let wv = t.leaf(w.clone());
                let h = t.matmul(x, wv);
                let th = t.tanh(h);
                let ones = t.leaf(Matrix::col_vector(&[1.0, 1.0]));
                t.matmul(th, ones)
            },
            Matrix::row_vector(&[0.5, -1.0, 0.25]),
        );
    }

    #[test]
    fn grad_through_concat_and_bias() {
        check_grad(
            |t, x| {
                let c = t.leaf(Matrix::row_vector(&[2.0]));
                let cat = t.concat_cols(x, c); // 1×4
                let bias = t.leaf(Matrix::row_vector(&[0.1, 0.2, 0.3, 0.4]));
                let b = t.add_bias(cat, bias);
                let sq = t.mul(b, b);
                let ones = t.leaf(Matrix::col_vector(&[1.0; 4]));
                t.matmul(sq, ones)
            },
            Matrix::row_vector(&[1.0, 2.0, 3.0]),
        );
    }

    #[test]
    fn grad_through_fused_linear_bias_relu() {
        let w = Matrix::from_vec(3, 2, vec![0.4, -0.3, 0.2, 0.7, -0.6, 0.1]);
        check_grad(
            move |t, x| {
                let wv = t.leaf(w.clone());
                let bias = t.leaf(Matrix::row_vector(&[0.05, -0.1]));
                let h = t.linear_bias_relu(x, wv, bias);
                let ones = t.leaf(Matrix::col_vector(&[1.0, 1.0]));
                t.matmul(h, ones)
            },
            Matrix::row_vector(&[0.5, -1.0, 0.8]),
        );
    }

    #[test]
    fn grad_through_fused_add_bias_relu() {
        check_grad(
            |t, x| {
                let bias = t.leaf(Matrix::row_vector(&[0.2, -0.4, 0.1]));
                let h = t.add_bias_relu(x, bias);
                let ones = t.leaf(Matrix::col_vector(&[1.0; 3]));
                t.matmul(h, ones)
            },
            Matrix::row_vector(&[0.5, 0.3, -0.9]),
        );
    }

    #[test]
    fn fused_ops_match_composed_ops() {
        let x = Matrix::from_rows(&[vec![0.5, -1.0, 2.0], vec![1.5, 0.25, -0.75]]);
        let w = Matrix::from_vec(3, 2, vec![1.0, -1.0, 0.5, 2.0, -2.0, 1.0]);
        let b = Matrix::row_vector(&[0.1, -0.2]);
        let mut t1 = Tape::new();
        let (xv, wv, bv) = (t1.leaf(x.clone()), t1.leaf(w.clone()), t1.leaf(b.clone()));
        let fused = t1.linear_bias_relu(xv, wv, bv);
        let mut t2 = Tape::new();
        let (xv2, wv2, bv2) = (t2.leaf(x), t2.leaf(w), t2.leaf(b));
        let mm = t2.matmul(xv2, wv2);
        let zb = t2.add_bias(mm, bv2);
        let composed = t2.relu(zb);
        assert_eq!(t1.value(fused), t2.value(composed));
    }

    #[test]
    fn spmm_gradient_matches_dense_matmul_gradient() {
        let adj = Matrix::from_rows(&[
            vec![0.0, 0.5, 0.5],
            vec![0.0, 0.0, 1.0],
            vec![0.0, 0.0, 0.0],
        ]);
        let h0 = Matrix::from_rows(&[vec![1.0, -2.0], vec![0.3, 0.7], vec![-1.1, 0.4]]);
        let seed = Matrix::from_rows(&[vec![0.2, -0.5], vec![1.0, 0.1], vec![-0.3, 0.8]]);

        let mut td = Tape::new();
        let a = td.leaf(adj.clone());
        let hd = td.leaf(h0.clone());
        let outd = td.matmul(a, hd);
        td.backward_from(outd, seed.clone());

        let mut ts = Tape::new();
        let hs = ts.leaf(h0);
        let csr = Rc::new(CsrAdj::from_dense(&adj));
        let outs = ts.spmm(csr, hs);
        ts.backward_from(outs, seed);

        assert_eq!(td.value(outd), ts.value(outs));
        assert_eq!(td.grad(hd), ts.grad(hs));
    }

    #[test]
    fn reset_recycles_and_reruns_identically() {
        let x = Matrix::row_vector(&[1.0, -2.0, 0.5]);
        let run = |tape: &mut Tape| -> (Matrix, Matrix) {
            let xv = tape.leaf_copy(&x);
            let y = tape.mul(xv, xv);
            let ones = tape.leaf(Matrix::col_vector(&[1.0; 3]));
            let loss = tape.matmul(y, ones);
            tape.backward_from(loss, Matrix::full(1, 1, 1.0));
            (tape.value(loss).clone(), tape.grad(xv).clone())
        };
        let mut tape = Tape::new();
        let first = run(&mut tape);
        for _ in 0..3 {
            tape.reset();
            assert_eq!(tape.num_nodes(), 0);
            let again = run(&mut tape);
            assert_eq!(again, first, "reset must not change results");
        }
    }

    #[test]
    fn bce_grad_matches_finite_difference() {
        let targets = Matrix::col_vector(&[1.0, 0.0, 1.0]);
        let mask = Matrix::col_vector(&[1.0, 1.0, 0.0]);
        let pred = Matrix::col_vector(&[0.7, 0.2, 0.9]);
        let (loss, grad) = Tape::bce_grad(&pred, &targets, &mask);
        assert!(loss > 0.0);
        assert_eq!(grad.get(2, 0), 0.0, "masked row has zero grad");
        let h = 1e-6;
        for i in 0..2 {
            let mut p2 = pred.clone();
            p2.data_mut()[i] += h;
            let (l2, _) = Tape::bce_grad(&p2, &targets, &mask);
            let numeric = (l2 - loss) / h;
            assert!((grad.data()[i] - numeric).abs() < 1e-4);
        }
    }

    #[test]
    fn diamond_accumulates_both_paths() {
        // f(x) = sum((x + x) ⊙ x): grad must collect both uses of x.
        check_grad(
            |t, x| {
                let two_x = t.add(x, x);
                let y = t.mul(two_x, x);
                let ones = t.leaf(Matrix::col_vector(&[1.0, 1.0]));
                t.matmul(y, ones)
            },
            Matrix::row_vector(&[1.5, -0.5]),
        );
    }
}
