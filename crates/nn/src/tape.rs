//! Tiny reverse-mode autodiff over [`Matrix`] values.
//!
//! A [`Tape`] is an arena of operation nodes built during the forward pass;
//! [`Tape::backward`] walks it in reverse, accumulating gradients. Graph
//! aggregation in the GNN is expressed as multiplication by constant
//! (row-normalized) adjacency matrices, so the whole encoder is expressible
//! with the handful of ops here.

use crate::matrix::Matrix;

/// Handle to a value on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    /// Leaf value (input or parameter); no backward.
    Leaf,
    /// `a × b` (matrix product).
    MatMul(usize, usize),
    /// `a + b` (same shape).
    Add(usize, usize),
    /// `a - b`.
    Sub(usize, usize),
    /// `a ⊙ b` elementwise.
    Mul(usize, usize),
    /// `a + bias` broadcast of 1×c row to each row of a.
    AddBias(usize, usize),
    /// `relu(a)`.
    Relu(usize),
    /// `sigmoid(a)`.
    Sigmoid(usize),
    /// `tanh(a)`.
    Tanh(usize),
    /// `a · s` scalar.
    Scale(usize, f64),
    /// Column concatenation `[a | b]`.
    ConcatCols(usize, usize, usize), // (a, b, a_cols)
}

#[derive(Debug, Clone)]
struct Node {
    op: Op,
    value: Matrix,
    grad: Matrix,
}

/// Arena of forward values + backward rules.
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// New empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    fn push(&mut self, op: Op, value: Matrix) -> Var {
        let (r, c) = value.shape();
        self.nodes.push(Node {
            op,
            value,
            grad: Matrix::zeros(r, c),
        });
        Var(self.nodes.len() - 1)
    }

    /// Insert a leaf (input or parameter snapshot).
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(Op::Leaf, value)
    }

    /// Current value of `v`.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Gradient of the loss w.r.t. `v` (valid after [`Tape::backward`]).
    pub fn grad(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].grad
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(Op::MatMul(a.0, b.0), v)
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.add(&self.nodes[b.0].value);
        self.push(Op::Add(a.0, b.0), v)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.sub(&self.nodes[b.0].value);
        self.push(Op::Sub(a.0, b.0), v)
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.nodes[a.0].value.hadamard(&self.nodes[b.0].value);
        self.push(Op::Mul(a.0, b.0), v)
    }

    /// Broadcast-add a 1×c bias row to every row of `a`.
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Var {
        let v = self.nodes[a.0]
            .value
            .add_row_broadcast(&self.nodes[bias.0].value);
        self.push(Op::AddBias(a.0, bias.0), v)
    }

    /// ReLU activation.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(Op::Relu(a.0), v)
    }

    /// Sigmoid activation.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid(a.0), v)
    }

    /// Tanh activation.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].value.map(f64::tanh);
        self.push(Op::Tanh(a.0), v)
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: Var, s: f64) -> Var {
        let v = self.nodes[a.0].value.scale(s);
        self.push(Op::Scale(a.0, s), v)
    }

    /// Column concatenation `[a | b]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let ac = self.nodes[a.0].value.cols();
        let v = self.nodes[a.0].value.concat_cols(&self.nodes[b.0].value);
        self.push(Op::ConcatCols(a.0, b.0, ac), v)
    }

    /// Masked binary cross-entropy loss against `targets` for the rows
    /// selected by `mask` (1.0 = labeled, 0.0 = ignore); `pred` must hold
    /// probabilities in (0,1). Returns `(loss_value, d_loss/d_pred)` and the
    /// gradient is seeded internally — call [`Tape::backward_from`] with the
    /// returned gradient.
    pub fn bce_grad(pred: &Matrix, targets: &Matrix, mask: &Matrix) -> (f64, Matrix) {
        assert_eq!(pred.shape(), targets.shape());
        assert_eq!(pred.shape(), mask.shape());
        let eps = 1e-9;
        let labeled: f64 = mask.data().iter().sum::<f64>().max(1.0);
        let mut grad = Matrix::zeros(pred.rows(), pred.cols());
        let mut loss = 0.0;
        for i in 0..pred.data().len() {
            let m = mask.data()[i];
            if m == 0.0 {
                continue;
            }
            let p = pred.data()[i].clamp(eps, 1.0 - eps);
            let y = targets.data()[i];
            loss += -(y * p.ln() + (1.0 - y) * (1.0 - p).ln());
            grad.data_mut()[i] = (p - y) / (p * (1.0 - p)) / labeled;
        }
        (loss / labeled, grad)
    }

    /// Run backward from `output` with an explicit output gradient.
    pub fn backward_from(&mut self, output: Var, out_grad: Matrix) {
        assert_eq!(self.nodes[output.0].value.shape(), out_grad.shape());
        for n in &mut self.nodes {
            let (r, c) = n.value.shape();
            n.grad = Matrix::zeros(r, c);
        }
        self.nodes[output.0].grad = out_grad;
        for i in (0..=output.0).rev() {
            let grad = self.nodes[i].grad.clone();
            if grad.norm() == 0.0 {
                continue;
            }
            match self.nodes[i].op.clone() {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let ga = grad.matmul(&self.nodes[b].value.transpose());
                    let gb = self.nodes[a].value.transpose().matmul(&grad);
                    self.accumulate(a, ga);
                    self.accumulate(b, gb);
                }
                Op::Add(a, b) => {
                    self.accumulate(a, grad.clone());
                    self.accumulate(b, grad);
                }
                Op::Sub(a, b) => {
                    self.accumulate(a, grad.clone());
                    self.accumulate(b, grad.scale(-1.0));
                }
                Op::Mul(a, b) => {
                    let ga = grad.hadamard(&self.nodes[b].value);
                    let gb = grad.hadamard(&self.nodes[a].value);
                    self.accumulate(a, ga);
                    self.accumulate(b, gb);
                }
                Op::AddBias(a, bias) => {
                    self.accumulate(a, grad.clone());
                    self.accumulate(bias, grad.col_sums());
                }
                Op::Relu(a) => {
                    let mask = self.nodes[a].value.map(|x| if x > 0.0 { 1.0 } else { 0.0 });
                    self.accumulate(a, grad.hadamard(&mask));
                }
                Op::Sigmoid(a) => {
                    let y = &self.nodes[i].value;
                    let dy = y.map(|s| s * (1.0 - s));
                    self.accumulate(a, grad.hadamard(&dy));
                }
                Op::Tanh(a) => {
                    let y = &self.nodes[i].value;
                    let dy = y.map(|t| 1.0 - t * t);
                    self.accumulate(a, grad.hadamard(&dy));
                }
                Op::Scale(a, s) => {
                    self.accumulate(a, grad.scale(s));
                }
                Op::ConcatCols(a, b, a_cols) => {
                    let rows = grad.rows();
                    let total = grad.cols();
                    let mut ga = Matrix::zeros(rows, a_cols);
                    let mut gb = Matrix::zeros(rows, total - a_cols);
                    for r in 0..rows {
                        for c in 0..total {
                            let g = grad.get(r, c);
                            if c < a_cols {
                                ga.set(r, c, g);
                            } else {
                                gb.set(r, c - a_cols, g);
                            }
                        }
                    }
                    self.accumulate(a, ga);
                    self.accumulate(b, gb);
                }
            }
        }
    }

    fn accumulate(&mut self, idx: usize, g: Matrix) {
        self.nodes[idx].grad = self.nodes[idx].grad.add(&g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference check of a scalar function of one leaf.
    fn check_grad(f: impl Fn(&mut Tape, Var) -> Var, x0: Matrix) {
        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let y = f(&mut tape, x);
        assert_eq!(tape.value(y).shape(), (1, 1), "loss must be scalar-shaped");
        tape.backward_from(y, Matrix::full(1, 1, 1.0));
        let analytic = tape.grad(x).clone();

        let h = 1e-6;
        for i in 0..x0.data().len() {
            let mut plus = x0.clone();
            plus.data_mut()[i] += h;
            let mut tp = Tape::new();
            let xp = tp.leaf(plus);
            let yp = f(&mut tp, xp);
            let mut minus = x0.clone();
            minus.data_mut()[i] -= h;
            let mut tm = Tape::new();
            let xm = tm.leaf(minus);
            let ym = f(&mut tm, xm);
            let numeric = (tp.value(yp).get(0, 0) - tm.value(ym).get(0, 0)) / (2.0 * h);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
                "grad[{i}]: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn grad_of_quadratic() {
        // f(x) = sum(x ⊙ x) via x·xᵀ for a row vector.
        check_grad(
            |t, x| {
                let y = t.mul(x, x);
                // reduce 1×3 → scalar via matmul with ones.
                let ones = t.leaf(Matrix::col_vector(&[1.0, 1.0, 1.0]));
                t.matmul(y, ones)
            },
            Matrix::row_vector(&[1.0, -2.0, 0.5]),
        );
    }

    #[test]
    fn grad_through_relu_sigmoid() {
        check_grad(
            |t, x| {
                let r = t.relu(x);
                let s = t.sigmoid(r);
                let ones = t.leaf(Matrix::col_vector(&[1.0, 1.0, 1.0]));
                t.matmul(s, ones)
            },
            Matrix::row_vector(&[0.3, -0.7, 1.2]),
        );
    }

    #[test]
    fn grad_through_matmul_chain() {
        let w = Matrix::from_vec(3, 2, vec![0.1, -0.2, 0.4, 0.3, -0.5, 0.6]);
        check_grad(
            move |t, x| {
                let wv = t.leaf(w.clone());
                let h = t.matmul(x, wv);
                let th = t.tanh(h);
                let ones = t.leaf(Matrix::col_vector(&[1.0, 1.0]));
                t.matmul(th, ones)
            },
            Matrix::row_vector(&[0.5, -1.0, 0.25]),
        );
    }

    #[test]
    fn grad_through_concat_and_bias() {
        check_grad(
            |t, x| {
                let c = t.leaf(Matrix::row_vector(&[2.0]));
                let cat = t.concat_cols(x, c); // 1×4
                let bias = t.leaf(Matrix::row_vector(&[0.1, 0.2, 0.3, 0.4]));
                let b = t.add_bias(cat, bias);
                let sq = t.mul(b, b);
                let ones = t.leaf(Matrix::col_vector(&[1.0; 4]));
                t.matmul(sq, ones)
            },
            Matrix::row_vector(&[1.0, 2.0, 3.0]),
        );
    }

    #[test]
    fn bce_grad_matches_finite_difference() {
        let targets = Matrix::col_vector(&[1.0, 0.0, 1.0]);
        let mask = Matrix::col_vector(&[1.0, 1.0, 0.0]);
        let pred = Matrix::col_vector(&[0.7, 0.2, 0.9]);
        let (loss, grad) = Tape::bce_grad(&pred, &targets, &mask);
        assert!(loss > 0.0);
        assert_eq!(grad.get(2, 0), 0.0, "masked row has zero grad");
        let h = 1e-6;
        for i in 0..2 {
            let mut p2 = pred.clone();
            p2.data_mut()[i] += h;
            let (l2, _) = Tape::bce_grad(&p2, &targets, &mask);
            let numeric = (l2 - loss) / h;
            assert!((grad.data()[i] - numeric).abs() < 1e-4);
        }
    }

    #[test]
    fn diamond_accumulates_both_paths() {
        // f(x) = sum((x + x) ⊙ x): grad must collect both uses of x.
        check_grad(
            |t, x| {
                let two_x = t.add(x, x);
                let y = t.mul(two_x, x);
                let ones = t.leaf(Matrix::col_vector(&[1.0, 1.0]));
                t.matmul(y, ones)
            },
            Matrix::row_vector(&[1.5, -0.5]),
        );
    }
}
