//! Minimal neural-network stack for the StreamTune reproduction.
//!
//! The paper's models are small: a message-passing GNN over DAGs of ≤ 20
//! nodes, two-layer MLP heads, and lightweight online classifiers. This
//! crate provides exactly that — a dense [`matrix::Matrix`] with in-place
//! (`*_into`, `axpy`) and fused (linear+bias+ReLU) kernels, a CSR sparse
//! adjacency for message passing ([`sparse::CsrAdj`]), a tape-based
//! reverse-mode autodiff with pooled buffer reuse ([`tape::Tape`]),
//! Adam/SGD ([`optim`]), MLPs ([`mlp`]), and the dataflow GNN encoder with
//! the parallelism FUSE update ([`gnn`], paper Eq. 1–3) — with no external
//! ML dependencies.

pub mod gnn;
pub mod matrix;
pub mod mlp;
pub mod optim;
pub mod sparse;
pub mod tape;

pub use gnn::{adjacency_matrices, GnnConfig, GnnEncoder, GraphSample, PARALLELISM_NORM};
pub use matrix::Matrix;
pub use mlp::{Activation, DenseLayer, Mlp};
pub use optim::{AdamConfig, Bindings, ParamId, ParamSet};
pub use sparse::CsrAdj;
pub use tape::{Tape, Var};
