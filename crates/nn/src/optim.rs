//! Parameter storage and optimizers (SGD, Adam).

use crate::matrix::Matrix;
use crate::tape::{Tape, Var};
use serde::{Deserialize, Serialize};

/// Handle to a trainable parameter inside a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamId(usize);

/// A set of trainable parameters with Adam moment buffers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamSet {
    values: Vec<Matrix>,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    step: u64,
}

impl Default for ParamSet {
    fn default() -> Self {
        Self::new()
    }
}

impl ParamSet {
    /// Empty set.
    pub fn new() -> Self {
        ParamSet {
            values: Vec::new(),
            m: Vec::new(),
            v: Vec::new(),
            step: 0,
        }
    }

    /// Register a parameter; returns its id.
    pub fn register(&mut self, value: Matrix) -> ParamId {
        let (r, c) = value.shape();
        self.values.push(value);
        self.m.push(Matrix::zeros(r, c));
        self.v.push(Matrix::zeros(r, c));
        ParamId(self.values.len() - 1)
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable value (e.g. for constraint projection).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar parameter count.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(|m| m.data().len()).sum()
    }

    /// Bind a parameter into `tape` as a leaf (copied into a pooled tape
    /// buffer); record the binding for the optimizer step.
    pub fn bind(&self, id: ParamId, tape: &mut Tape, bindings: &mut Bindings) -> Var {
        let var = tape.leaf_copy(&self.values[id.0]);
        bindings.pairs.push((id, var));
        var
    }

    /// Apply one Adam update from the gradients accumulated on `tape` for
    /// the bound parameters.
    pub fn adam_step(&mut self, tape: &Tape, bindings: &Bindings, cfg: &AdamConfig) {
        self.step += 1;
        let t = self.step as f64;
        let bc1 = 1.0 - cfg.beta1.powf(t);
        let bc2 = 1.0 - cfg.beta2.powf(t);
        for &(id, var) in &bindings.pairs {
            let g = tape.grad(var);
            let i = id.0;
            for k in 0..g.data().len() {
                let grad = g.data()[k];
                let m = cfg.beta1 * self.m[i].data()[k] + (1.0 - cfg.beta1) * grad;
                let v = cfg.beta2 * self.v[i].data()[k] + (1.0 - cfg.beta2) * grad * grad;
                self.m[i].data_mut()[k] = m;
                self.v[i].data_mut()[k] = v;
                let mhat = m / bc1;
                let vhat = v / bc2;
                self.values[i].data_mut()[k] -= cfg.lr * mhat / (vhat.sqrt() + cfg.eps);
            }
        }
    }

    /// Plain SGD update (used by tests and the SVM head).
    pub fn sgd_step(&mut self, tape: &Tape, bindings: &Bindings, lr: f64) {
        for &(id, var) in &bindings.pairs {
            let g = tape.grad(var);
            let i = id.0;
            for k in 0..g.data().len() {
                self.values[i].data_mut()[k] -= lr * g.data()[k];
            }
        }
    }
}

/// Records which tape leaves correspond to which parameters in one forward.
#[derive(Debug, Default)]
pub struct Bindings {
    pairs: Vec<(ParamId, Var)>,
}

impl Bindings {
    /// Empty bindings for a fresh forward pass.
    pub fn new() -> Self {
        Bindings::default()
    }

    /// Clear for reuse across forward passes (keeps the allocation).
    pub fn clear(&mut self) {
        self.pairs.clear();
    }
}

/// Adam hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical floor.
    pub eps: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-2,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize ‖x − target‖² with Adam; must converge.
    #[test]
    fn adam_minimizes_quadratic() {
        let mut params = ParamSet::new();
        let x = params.register(Matrix::row_vector(&[5.0, -3.0]));
        let target = Matrix::row_vector(&[1.0, 2.0]);
        let cfg = AdamConfig {
            lr: 0.1,
            ..Default::default()
        };
        for _ in 0..500 {
            let mut tape = Tape::new();
            let mut bindings = Bindings::new();
            let xv = params.bind(x, &mut tape, &mut bindings);
            let t = tape.leaf(target.clone());
            let d = tape.sub(xv, t);
            let sq = tape.mul(d, d);
            let ones = tape.leaf(Matrix::col_vector(&[1.0, 1.0]));
            let loss = tape.matmul(sq, ones);
            tape.backward_from(loss, Matrix::full(1, 1, 1.0));
            params.adam_step(&tape, &bindings, &cfg);
        }
        let v = params.value(x);
        assert!((v.get(0, 0) - 1.0).abs() < 1e-3, "{v:?}");
        assert!((v.get(0, 1) - 2.0).abs() < 1e-3, "{v:?}");
    }

    #[test]
    fn sgd_descends() {
        let mut params = ParamSet::new();
        let x = params.register(Matrix::row_vector(&[4.0]));
        for _ in 0..100 {
            let mut tape = Tape::new();
            let mut b = Bindings::new();
            let xv = params.bind(x, &mut tape, &mut b);
            let loss = tape.mul(xv, xv);
            tape.backward_from(loss, Matrix::full(1, 1, 1.0));
            params.sgd_step(&tape, &b, 0.1);
        }
        assert!(params.value(x).get(0, 0).abs() < 1e-3);
    }

    #[test]
    fn param_registration_counts() {
        let mut p = ParamSet::new();
        assert!(p.is_empty());
        p.register(Matrix::zeros(2, 3));
        p.register(Matrix::zeros(1, 4));
        assert_eq!(p.len(), 2);
        assert_eq!(p.num_scalars(), 10);
    }
}
