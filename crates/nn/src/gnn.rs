//! The GNN-based dataflow DAG encoder (paper §IV-A).
//!
//! Message passing follows Eq. 1–2 with separate aggregation over upstream
//! and downstream neighbours (data flows directionally, and bottleneck
//! status depends on both which operators feed you and which consume you):
//!
//! ```text
//! H^(t) = ReLU( H^(t-1) W_self + A_in H^(t-1) W_in + A_out H^(t-1) W_out + b )
//! ```
//!
//! where `A_in`/`A_out` are row-normalized predecessor/successor adjacency
//! matrices (mean aggregation). The parallelism-aware update (Eq. 3) is the
//! FUSE layer: `H'^(t) = ReLU([H^(t) ‖ p] W_f + b_f)`, keeping the hidden
//! dimensionality unchanged so the result re-enters message passing.
//!
//! The bottleneck head is a two-layer MLP with a sigmoid output (paper:
//! "two-layer Multilayer Perceptron with a sigmoid function").

use crate::matrix::Matrix;
use crate::mlp::{Activation, Mlp};
use crate::optim::{AdamConfig, Bindings, ParamId, ParamSet};
use crate::sparse::CsrAdj;
use crate::tape::{Tape, Var};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::rc::Rc;
use streamtune_dataflow::{Dataflow, FeatureEncoder};

/// Parallelism degrees are normalized by this constant before entering the
/// FUSE layer (the physical maximum of the paper's Flink testbed).
pub const PARALLELISM_NORM: f64 = 100.0;

/// One training/inference sample: a dataflow DAG lowered to matrices.
///
/// The adjacency is carried twice: dense `n × n` matrices (the reference
/// path, used by the parity tests and the Fig. 11-style ablations) and CSR
/// sparse forms (`csr_in`/`csr_out`, the production message-passing path —
/// DAGs have `O(n)` edges, so `spmm` beats the dense matmul by `n / degree`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphSample {
    /// Node features, `n × FEATURE_DIM`.
    pub features: Matrix,
    /// Row-normalized in-neighbour adjacency, `n × n`.
    pub a_in: Matrix,
    /// Row-normalized out-neighbour adjacency, `n × n`.
    pub a_out: Matrix,
    /// CSR form of [`GraphSample::a_in`] (sparse message-passing path).
    pub csr_in: CsrAdj,
    /// CSR form of [`GraphSample::a_out`].
    pub csr_out: CsrAdj,
    /// Per-node parallelism degrees (raw, ≥ 1). Used when training with the
    /// parallelism-aware path.
    pub parallelism: Vec<u32>,
    /// Bottleneck labels: 1.0 bottleneck, 0.0 not, -1.0 unlabeled (Alg. 1).
    pub labels: Vec<f64>,
}

impl GraphSample {
    /// Lower a [`Dataflow`] with known parallelism/labels into a sample.
    pub fn from_dataflow(
        flow: &Dataflow,
        encoder: &FeatureEncoder,
        parallelism: &[u32],
        labels: &[f64],
    ) -> Self {
        assert_eq!(parallelism.len(), flow.num_ops());
        assert_eq!(labels.len(), flow.num_ops());
        let rows = encoder.encode_dataflow(flow);
        let features = Matrix::from_rows(&rows);
        let (a_in, a_out) = adjacency_matrices(flow);
        let csr_in = CsrAdj::from_dense(&a_in);
        let csr_out = CsrAdj::from_dense(&a_out);
        GraphSample {
            features,
            a_in,
            a_out,
            csr_in,
            csr_out,
            parallelism: parallelism.to_vec(),
            labels: labels.to_vec(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.features.rows()
    }

    /// Mask of labeled nodes as an `n × 1` matrix.
    pub fn label_mask(&self) -> Matrix {
        Matrix::col_vector(
            &self
                .labels
                .iter()
                .map(|&l| if l < 0.0 { 0.0 } else { 1.0 })
                .collect::<Vec<_>>(),
        )
    }

    /// Targets with unlabeled entries zeroed, `n × 1`.
    pub fn label_targets(&self) -> Matrix {
        Matrix::col_vector(
            &self
                .labels
                .iter()
                .map(|&l| if l < 0.0 { 0.0 } else { l })
                .collect::<Vec<_>>(),
        )
    }

    /// Normalized parallelism column `n × 1`.
    pub fn parallelism_column(&self) -> Matrix {
        Matrix::col_vector(
            &self
                .parallelism
                .iter()
                .map(|&p| f64::from(p) / PARALLELISM_NORM)
                .collect::<Vec<_>>(),
        )
    }
}

/// Row-normalized predecessor and successor adjacency matrices of `flow`.
pub fn adjacency_matrices(flow: &Dataflow) -> (Matrix, Matrix) {
    let n = flow.num_ops();
    let mut a_in = Matrix::zeros(n, n);
    let mut a_out = Matrix::zeros(n, n);
    for op in flow.op_ids() {
        let preds = flow.preds(op);
        if !preds.is_empty() {
            let w = 1.0 / preds.len() as f64;
            for &p in preds {
                a_in.set(op.index(), p.index(), w);
            }
        }
        let succs = flow.succs(op);
        if !succs.is_empty() {
            let w = 1.0 / succs.len() as f64;
            for &s in succs {
                a_out.set(op.index(), s.index(), w);
            }
        }
    }
    (a_in, a_out)
}

/// Hyperparameters of the encoder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GnnConfig {
    /// Input feature dimension (normally [`streamtune_dataflow::FEATURE_DIM`]).
    pub input_dim: usize,
    /// Hidden embedding dimension.
    pub hidden_dim: usize,
    /// Number of message-passing iterations `T`.
    pub message_passing_steps: usize,
    /// Adam settings for pre-training.
    pub adam: AdamConfig,
    /// Aggregate neighbour messages with dense `n × n` matmuls instead of
    /// CSR `spmm`. The two paths are bit-identical; dense exists for parity
    /// tests and ablation. Default: `false` (sparse).
    pub dense_messages: bool,
}

impl Default for GnnConfig {
    fn default() -> Self {
        GnnConfig {
            input_dim: streamtune_dataflow::FEATURE_DIM,
            hidden_dim: 32,
            message_passing_steps: 3,
            adam: AdamConfig::default(),
            dense_messages: false,
        }
    }
}

/// One message-passing layer's parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct GnnLayer {
    w_self: ParamId,
    w_in: ParamId,
    w_out: ParamId,
    b: ParamId,
    /// FUSE parameters: `(hidden+1) × hidden` + bias.
    w_fuse: ParamId,
    b_fuse: ParamId,
}

/// The GNN-based encoder with its bottleneck prediction head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GnnEncoder {
    /// Hyperparameters.
    pub config: GnnConfig,
    params: ParamSet,
    input_proj_w: ParamId,
    input_proj_b: ParamId,
    layers: Vec<GnnLayer>,
    head: Mlp,
}

impl GnnEncoder {
    /// Initialize a fresh encoder.
    pub fn new<R: Rng>(config: GnnConfig, rng: &mut R) -> Self {
        let mut params = ParamSet::new();
        let h = config.hidden_dim;
        let input_proj_w = params.register(Matrix::xavier(config.input_dim, h, rng));
        let input_proj_b = params.register(Matrix::zeros(1, h));
        let layers = (0..config.message_passing_steps)
            .map(|_| GnnLayer {
                w_self: params.register(Matrix::xavier(h, h, rng)),
                w_in: params.register(Matrix::xavier(h, h, rng)),
                w_out: params.register(Matrix::xavier(h, h, rng)),
                b: params.register(Matrix::zeros(1, h)),
                w_fuse: params.register(Matrix::xavier(h + 1, h, rng)),
                b_fuse: params.register(Matrix::zeros(1, h)),
            })
            .collect();
        // "Two-layer MLP with a sigmoid function" (paper §IV-A).
        let head = Mlp::new(
            &mut params,
            &[h, h / 2, 1],
            Activation::Relu,
            Activation::Sigmoid,
            rng,
        );
        GnnEncoder {
            config,
            params,
            input_proj_w,
            input_proj_b,
            layers,
            head,
        }
    }

    /// Embedding dimension.
    pub fn hidden_dim(&self) -> usize {
        self.config.hidden_dim
    }

    /// Number of scalar parameters.
    pub fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }

    /// Forward pass on the tape. When `with_parallelism` is true the FUSE
    /// update injects the sample's parallelism after every message-passing
    /// iteration (parallelism-aware); otherwise it is skipped entirely
    /// (parallelism-agnostic embeddings, used online).
    fn forward(
        &self,
        tape: &mut Tape,
        bindings: &mut Bindings,
        sample: &GraphSample,
        with_parallelism: bool,
    ) -> Var {
        let x = tape.leaf_copy(&sample.features);
        // Dense path binds the adjacencies as constant leaves; the sparse
        // path hands CSR constants straight to `spmm` (no n×n tape nodes).
        let dense_adj = if self.config.dense_messages {
            Some((tape.leaf_copy(&sample.a_in), tape.leaf_copy(&sample.a_out)))
        } else {
            None
        };
        let sparse_adj = if self.config.dense_messages {
            None
        } else {
            Some((
                Rc::new(sample.csr_in.clone()),
                Rc::new(sample.csr_out.clone()),
            ))
        };
        let pw = self.params.bind(self.input_proj_w, tape, bindings);
        let pb = self.params.bind(self.input_proj_b, tape, bindings);
        let mut h = tape.linear_bias_relu(x, pw, pb);
        let p_col = if with_parallelism {
            Some(tape.leaf(sample.parallelism_column()))
        } else {
            None
        };
        for layer in &self.layers {
            let w_self = self.params.bind(layer.w_self, tape, bindings);
            let w_in = self.params.bind(layer.w_in, tape, bindings);
            let w_out = self.params.bind(layer.w_out, tape, bindings);
            let b = self.params.bind(layer.b, tape, bindings);
            let own = tape.matmul(h, w_self);
            let (msg_in, msg_out) = match (&dense_adj, &sparse_adj) {
                (Some((a_in, a_out)), _) => (tape.matmul(*a_in, h), tape.matmul(*a_out, h)),
                (None, Some((c_in, c_out))) => (
                    tape.spmm(Rc::clone(c_in), h),
                    tape.spmm(Rc::clone(c_out), h),
                ),
                (None, None) => unreachable!("one adjacency form is always set"),
            };
            let agg_in = tape.matmul(msg_in, w_in);
            let agg_out = tape.matmul(msg_out, w_out);
            let s1 = tape.add(own, agg_in);
            let s2 = tape.add(s1, agg_out);
            h = tape.add_bias_relu(s2, b);
            if let Some(p) = p_col {
                // FUSE (Eq. 3): integrate parallelism, keep dimensionality.
                let wf = self.params.bind(layer.w_fuse, tape, bindings);
                let bf = self.params.bind(layer.b_fuse, tape, bindings);
                let cat = tape.concat_cols(h, p);
                h = tape.linear_bias_relu(cat, wf, bf);
            }
        }
        h
    }

    /// One supervised pre-training step on a batch of graphs; returns the
    /// mean BCE loss over labeled operators (paper's `L_total`). The tape
    /// and its buffers are reused across the whole batch.
    pub fn train_step(&mut self, batch: &[GraphSample]) -> f64 {
        assert!(!batch.is_empty());
        let mut total_loss = 0.0;
        let mut tape = Tape::new();
        let mut bindings = Bindings::new();
        let adam = self.config.adam.clone();
        for sample in batch {
            tape.reset();
            bindings.clear();
            let h = self.forward(&mut tape, &mut bindings, sample, true);
            let pred = self.head.forward(&self.params, &mut tape, &mut bindings, h);
            let (loss, grad) = Tape::bce_grad(
                tape.value(pred),
                &sample.label_targets(),
                &sample.label_mask(),
            );
            tape.backward_from(pred, grad);
            self.params.adam_step(&tape, &bindings, &adam);
            total_loss += loss;
        }
        total_loss / batch.len() as f64
    }

    /// Parallelism-agnostic operator embeddings, `n × hidden_dim`
    /// (Algorithm 2 line 7: `h_v` via `enc_c(G)`).
    pub fn embed_agnostic(&self, sample: &GraphSample) -> Matrix {
        let mut tape = Tape::new();
        self.embed_agnostic_with(&mut tape, sample).clone()
    }

    /// [`GnnEncoder::embed_agnostic`] reusing a caller-provided tape: the
    /// tape is reset and the embedding is borrowed from it, so batch
    /// embedding loops allocate nothing after the first call.
    pub fn embed_agnostic_with<'t>(&self, tape: &'t mut Tape, sample: &GraphSample) -> &'t Matrix {
        tape.reset();
        let mut bindings = Bindings::new();
        let h = self.forward(tape, &mut bindings, sample, false);
        tape.value(h)
    }

    /// Parallelism-aware embeddings (pre-training path).
    pub fn embed_aware(&self, sample: &GraphSample) -> Matrix {
        let mut tape = Tape::new();
        let mut bindings = Bindings::new();
        let h = self.forward(&mut tape, &mut bindings, sample, true);
        tape.value(h).clone()
    }

    /// Bottleneck probabilities per operator (`n × 1`), parallelism-aware.
    pub fn predict_bottleneck(&self, sample: &GraphSample) -> Matrix {
        let h = self.embed_aware(sample);
        self.head.infer(&self.params, &h)
    }

    /// Mean BCE loss of the current model over labeled operators of `batch`
    /// without updating parameters (validation).
    pub fn evaluate(&self, batch: &[GraphSample]) -> f64 {
        let mut total = 0.0;
        for sample in batch {
            let pred = self.predict_bottleneck(sample);
            let (loss, _) = Tape::bce_grad(&pred, &sample.label_targets(), &sample.label_mask());
            total += loss;
        }
        total / batch.len() as f64
    }

    /// Classification accuracy on labeled operators of `batch` at 0.5.
    pub fn accuracy(&self, batch: &[GraphSample]) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for sample in batch {
            let pred = self.predict_bottleneck(sample);
            for (i, &l) in sample.labels.iter().enumerate() {
                if l < 0.0 {
                    continue;
                }
                total += 1;
                let yhat = if pred.get(i, 0) >= 0.5 { 1.0 } else { 0.0 };
                if yhat == l {
                    correct += 1;
                }
            }
        }
        if total == 0 {
            return 1.0;
        }
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use streamtune_dataflow::{DataflowBuilder, Operator};

    fn tiny_flow(rate: f64) -> Dataflow {
        let mut b = DataflowBuilder::new(format!("gnn-test-{rate}"));
        let s = b.add_source("s", rate);
        let f = b.add_op("f", Operator::filter(0.5, 32, 32));
        let m = b.add_op("m", Operator::map(32, 32));
        let k = b.add_op("k", Operator::sink(32));
        b.connect_source(s, f);
        b.connect(f, m);
        b.connect(m, k);
        b.build().unwrap()
    }

    fn sample(rate: f64, parallelism: &[u32], labels: &[f64]) -> GraphSample {
        GraphSample::from_dataflow(
            &tiny_flow(rate),
            &FeatureEncoder::default(),
            parallelism,
            labels,
        )
    }

    #[test]
    fn adjacency_rows_are_normalized() {
        let flow = tiny_flow(100.0);
        let (a_in, a_out) = adjacency_matrices(&flow);
        for r in 0..flow.num_ops() {
            let in_sum: f64 = a_in.row(r).iter().sum();
            let out_sum: f64 = a_out.row(r).iter().sum();
            assert!(in_sum == 0.0 || (in_sum - 1.0).abs() < 1e-12);
            assert!(out_sum == 0.0 || (out_sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn embeddings_have_hidden_dim() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let enc = GnnEncoder::new(GnnConfig::default(), &mut rng);
        let s = sample(100.0, &[1, 1, 1], &[0.0, 0.0, 0.0]);
        let e = enc.embed_agnostic(&s);
        assert_eq!(e.shape(), (3, enc.hidden_dim()));
    }

    #[test]
    fn agnostic_embedding_ignores_parallelism() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let enc = GnnEncoder::new(GnnConfig::default(), &mut rng);
        let a = sample(100.0, &[1, 1, 1], &[0.0, 0.0, 0.0]);
        let b = sample(100.0, &[50, 50, 50], &[0.0, 0.0, 0.0]);
        assert_eq!(enc.embed_agnostic(&a), enc.embed_agnostic(&b));
        assert_ne!(enc.embed_aware(&a), enc.embed_aware(&b));
    }

    #[test]
    fn training_reduces_loss_on_separable_labels() {
        // Low parallelism → bottleneck(1), high parallelism → 0, with the
        // same structure: the FUSE path must pick up the signal.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut enc = GnnEncoder::new(
            GnnConfig {
                hidden_dim: 16,
                message_passing_steps: 2,
                adam: AdamConfig {
                    lr: 0.02,
                    ..Default::default()
                },
                ..Default::default()
            },
            &mut rng,
        );
        let batch = vec![
            sample(1000.0, &[1, 1, 1], &[1.0, 1.0, -1.0]),
            sample(1000.0, &[40, 40, 40], &[0.0, 0.0, -1.0]),
            sample(2000.0, &[2, 2, 2], &[1.0, 1.0, -1.0]),
            sample(2000.0, &[60, 60, 60], &[0.0, 0.0, -1.0]),
        ];
        let first = enc.train_step(&batch);
        for _ in 0..120 {
            enc.train_step(&batch);
        }
        let last = enc.evaluate(&batch);
        assert!(last < first * 0.5, "loss {first} → {last} should halve");
        assert!(
            enc.accuracy(&batch) >= 0.75,
            "accuracy {}",
            enc.accuracy(&batch)
        );
    }

    #[test]
    fn unlabeled_operators_do_not_contribute() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let enc = GnnEncoder::new(GnnConfig::default(), &mut rng);
        let all_unlabeled = sample(100.0, &[1, 1, 1], &[-1.0, -1.0, -1.0]);
        let loss = enc.evaluate(&[all_unlabeled]);
        assert_eq!(loss, 0.0);
    }

    #[test]
    fn dense_and_sparse_message_passing_are_bit_identical() {
        // Same seed → same initial weights; the two adjacency forms must
        // produce the same embeddings, predictions and training trajectory.
        let mk = |dense: bool| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(21);
            GnnEncoder::new(
                GnnConfig {
                    dense_messages: dense,
                    hidden_dim: 16,
                    message_passing_steps: 2,
                    ..Default::default()
                },
                &mut rng,
            )
        };
        let mut dense = mk(true);
        let mut sparse = mk(false);
        let batch = vec![
            sample(1000.0, &[1, 2, 3], &[1.0, 0.0, -1.0]),
            sample(500.0, &[10, 20, 30], &[0.0, 1.0, 0.0]),
        ];
        for s in &batch {
            assert_eq!(dense.embed_agnostic(s), sparse.embed_agnostic(s));
            assert_eq!(dense.embed_aware(s), sparse.embed_aware(s));
            assert_eq!(dense.predict_bottleneck(s), sparse.predict_bottleneck(s));
        }
        for _ in 0..5 {
            let ld = dense.train_step(&batch);
            let ls = sparse.train_step(&batch);
            assert_eq!(ld, ls, "training losses must match exactly");
        }
        for s in &batch {
            assert_eq!(dense.predict_bottleneck(s), sparse.predict_bottleneck(s));
        }
    }

    #[test]
    fn structure_changes_embeddings() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let enc = GnnEncoder::new(GnnConfig::default(), &mut rng);
        let chain = sample(100.0, &[1, 1, 1], &[0.0; 3]);
        // Same ops, different wiring: f → {m, k} fan-out.
        let mut b = DataflowBuilder::new("gnn-test-100"); // same name → same features
        let s = b.add_source("s", 100.0);
        let f = b.add_op("f", Operator::filter(0.5, 32, 32));
        let m = b.add_op("m", Operator::map(32, 32));
        let k = b.add_op("k", Operator::sink(32));
        b.connect_source(s, f);
        b.connect(f, m);
        b.connect(f, k);
        let fanout_flow = b.build().unwrap();
        let fanout = GraphSample::from_dataflow(
            &fanout_flow,
            &FeatureEncoder::default(),
            &[1, 1, 1],
            &[0.0; 3],
        );
        assert_ne!(enc.embed_agnostic(&chain), enc.embed_agnostic(&fanout));
    }
}
