//! Multilayer perceptrons built on the tape.

use crate::matrix::Matrix;
use crate::optim::{Bindings, ParamId, ParamSet};
use crate::tape::{Tape, Var};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Activation applied after a linear layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (no activation).
    Linear,
}

/// One dense layer: `activation(x W + b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseLayer {
    /// Weight parameter id (`in_dim × out_dim`).
    pub w: ParamId,
    /// Bias parameter id (`1 × out_dim`).
    pub b: ParamId,
    /// Activation.
    pub activation: Activation,
}

impl DenseLayer {
    /// Create and register a layer's parameters.
    pub fn new<R: Rng>(
        params: &mut ParamSet,
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        let w = params.register(Matrix::xavier(in_dim, out_dim, rng));
        let b = params.register(Matrix::zeros(1, out_dim));
        DenseLayer { w, b, activation }
    }

    /// Forward through the tape (training path). ReLU layers take the fused
    /// linear+bias+ReLU kernel — one tape node instead of three.
    pub fn forward(
        &self,
        params: &ParamSet,
        tape: &mut Tape,
        bindings: &mut Bindings,
        x: Var,
    ) -> Var {
        let w = params.bind(self.w, tape, bindings);
        let b = params.bind(self.b, tape, bindings);
        match self.activation {
            Activation::Relu => tape.linear_bias_relu(x, w, b),
            Activation::Sigmoid => {
                let xw = tape.matmul(x, w);
                let z = tape.add_bias(xw, b);
                tape.sigmoid(z)
            }
            Activation::Tanh => {
                let xw = tape.matmul(x, w);
                let z = tape.add_bias(xw, b);
                tape.tanh(z)
            }
            Activation::Linear => {
                let xw = tape.matmul(x, w);
                tape.add_bias(xw, b)
            }
        }
    }

    /// Pure inference without a tape.
    pub fn infer(&self, params: &ParamSet, x: &Matrix) -> Matrix {
        let z = x
            .matmul(params.value(self.w))
            .add_row_broadcast(params.value(self.b));
        match self.activation {
            Activation::Relu => z.map(|v| v.max(0.0)),
            Activation::Sigmoid => z.map(|v| 1.0 / (1.0 + (-v).exp())),
            Activation::Tanh => z.map(f64::tanh),
            Activation::Linear => z,
        }
    }
}

/// A stack of dense layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    /// Layers in order.
    pub layers: Vec<DenseLayer>,
}

impl Mlp {
    /// Build an MLP with the given layer sizes, hidden activation `hidden`,
    /// and output activation `output`.
    ///
    /// `dims = [in, h1, …, out]` creates `dims.len() - 1` layers.
    pub fn new<R: Rng>(
        params: &mut ParamSet,
        dims: &[usize],
        hidden: Activation,
        output: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let act = if i + 2 == dims.len() { output } else { hidden };
            layers.push(DenseLayer::new(params, dims[i], dims[i + 1], act, rng));
        }
        Mlp { layers }
    }

    /// Forward through the tape.
    pub fn forward(
        &self,
        params: &ParamSet,
        tape: &mut Tape,
        bindings: &mut Bindings,
        mut x: Var,
    ) -> Var {
        for layer in &self.layers {
            x = layer.forward(params, tape, bindings, x);
        }
        x
    }

    /// Tape-free inference.
    pub fn infer(&self, params: &ParamSet, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.infer(params, &h);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::AdamConfig;
    use rand::SeedableRng;

    /// Train a 2-layer MLP on XOR — the classic non-linear sanity check.
    #[test]
    fn mlp_learns_xor() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut params = ParamSet::new();
        let mlp = Mlp::new(
            &mut params,
            &[2, 8, 1],
            Activation::Tanh,
            Activation::Sigmoid,
            &mut rng,
        );
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ]);
        let y = Matrix::col_vector(&[0.0, 1.0, 1.0, 0.0]);
        let mask = Matrix::col_vector(&[1.0; 4]);
        let cfg = AdamConfig {
            lr: 0.05,
            ..Default::default()
        };
        let mut last_loss = f64::INFINITY;
        for _ in 0..800 {
            let mut tape = Tape::new();
            let mut b = Bindings::new();
            let xv = tape.leaf(x.clone());
            let pred = mlp.forward(&params, &mut tape, &mut b, xv);
            let (loss, grad) = Tape::bce_grad(tape.value(pred), &y, &mask);
            tape.backward_from(pred, grad);
            params.adam_step(&tape, &b, &cfg);
            last_loss = loss;
        }
        assert!(last_loss < 0.1, "XOR loss {last_loss}");
        let out = mlp.infer(&params, &x);
        assert!(out.get(0, 0) < 0.3);
        assert!(out.get(1, 0) > 0.7);
        assert!(out.get(2, 0) > 0.7);
        assert!(out.get(3, 0) < 0.3);
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut params = ParamSet::new();
        let mlp = Mlp::new(
            &mut params,
            &[3, 5, 2],
            Activation::Relu,
            Activation::Linear,
            &mut rng,
        );
        let x = Matrix::from_rows(&[vec![0.1, 0.2, 0.3], vec![-1.0, 0.5, 2.0]]);
        let mut tape = Tape::new();
        let mut b = Bindings::new();
        let xv = tape.leaf(x.clone());
        let out = mlp.forward(&params, &mut tape, &mut b, xv);
        let inferred = mlp.infer(&params, &x);
        assert_eq!(tape.value(out), &inferred);
    }

    #[test]
    #[should_panic(expected = "need at least input and output dims")]
    fn mlp_rejects_single_dim() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut params = ParamSet::new();
        let _ = Mlp::new(
            &mut params,
            &[3],
            Activation::Relu,
            Activation::Linear,
            &mut rng,
        );
    }
}
