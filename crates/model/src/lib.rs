//! The fine-tuning model family `M_f` (paper §IV-B).
//!
//! Online, StreamTune fits a lightweight classifier over
//! `x = [h, p]` — a parallelism-agnostic operator embedding `h` plus a
//! candidate parallelism `p` — predicting `P(bottleneck | x)`. The paper
//! requires `M_f` to be **monotonic**: `P` non-increasing in `p`, because
//! raising an operator's parallelism always raises its processing ability.
//!
//! Three implementations:
//!
//! * [`MonotonicSvm`] — linear(-ised) SVM with the constraint `w_p ≤ 0`
//!   enforced by projection (Eq. 5), optionally over random Fourier
//!   features of `h` (the kernel trick);
//! * [`MonotonicGbdt`] — gradient-boosted trees with monotone-constrained
//!   splits and leaf clamping, the paper's XGBoost variant;
//! * [`NnClassifier`] — an *unconstrained* MLP, the ablation baseline of
//!   Fig. 11a that is allowed to violate monotonicity.
//!
//! [`recommend_min_parallelism`] performs Algorithm 2's line-8 search
//! `min { p ≤ p_max | M_f(h, p) = 0 }`, by binary search when the model is
//! monotonic and by linear scan otherwise.

pub mod gbdt;
pub mod nnhead;
pub mod rff;
pub mod svm;

pub use gbdt::{GbdtConfig, MonotonicGbdt};
pub use nnhead::{NnClassifier, NnConfig};
pub use rff::RandomFourierFeatures;
pub use svm::{MonotonicSvm, SvmConfig};

use serde::{Deserialize, Serialize};

/// Parallelism normalization constant shared with the GNN FUSE layer.
pub use streamtune_nn::PARALLELISM_NORM;

/// One supervised example for `M_f`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainPoint {
    /// Parallelism-agnostic operator embedding `h`.
    pub embedding: Vec<f64>,
    /// Deployed parallelism degree.
    pub parallelism: u32,
    /// Observed bottleneck indicator (true = class 1 = bottleneck).
    pub bottleneck: bool,
}

impl TrainPoint {
    /// Build the model input `[h…, p / PARALLELISM_NORM]`.
    pub fn input(&self) -> Vec<f64> {
        assemble_input(&self.embedding, self.parallelism)
    }
}

/// Build the model input vector from an embedding and a parallelism.
pub fn assemble_input(embedding: &[f64], parallelism: u32) -> Vec<f64> {
    let mut v = Vec::with_capacity(embedding.len() + 1);
    v.extend_from_slice(embedding);
    v.push(f64::from(parallelism) / PARALLELISM_NORM);
    v
}

/// A bottleneck classifier over `(embedding, parallelism)` inputs.
pub trait BottleneckClassifier {
    /// Fit on labeled points (refit from scratch each call — the warm-up
    /// dataset plus accumulated feedback is small).
    fn fit(&mut self, data: &[TrainPoint]);

    /// `P(bottleneck | h, p)` in `[0, 1]`.
    fn predict_proba(&self, embedding: &[f64], parallelism: u32) -> f64;

    /// Hard decision at 0.5.
    fn predict(&self, embedding: &[f64], parallelism: u32) -> bool {
        self.predict_proba(embedding, parallelism) >= 0.5
    }

    /// Whether the model structurally guarantees monotonicity in `p`.
    fn is_monotonic(&self) -> bool;
}

/// Algorithm 2 line 8: the smallest `p ≤ p_max` the model predicts
/// non-bottleneck, or `None` if every candidate is predicted bottleneck.
///
/// Monotonic models admit binary search (paper: "this search can be
/// implemented as a binary search"); non-monotonic models fall back to the
/// literal linear scan — which is exactly what makes the NN ablation
/// unreliable (a spuriously-low `p` can look non-bottleneck).
pub fn recommend_min_parallelism(
    model: &dyn BottleneckClassifier,
    embedding: &[f64],
    p_max: u32,
) -> Option<u32> {
    recommend_min_parallelism_at(model, embedding, p_max, 0.5)
}

/// [`recommend_min_parallelism`] with an explicit decision threshold:
/// accept `p` once `P(bottleneck | h, p) < threshold`. Thresholds below
/// 0.5 trade a little extra parallelism for a safety margin against
/// under-provisioning (StreamTune never triggers backpressure in the
/// paper's Table III).
pub fn recommend_min_parallelism_at(
    model: &dyn BottleneckClassifier,
    embedding: &[f64],
    p_max: u32,
    threshold: f64,
) -> Option<u32> {
    assert!(p_max >= 1);
    assert!((0.0..=1.0).contains(&threshold));
    let is_bottleneck = |p: u32| model.predict_proba(embedding, p) >= threshold;
    if model.is_monotonic() {
        if is_bottleneck(p_max) {
            return None; // even max parallelism predicted bottleneck
        }
        let (mut lo, mut hi) = (1u32, p_max);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if is_bottleneck(mid) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    } else {
        (1..=p_max).find(|&p| !is_bottleneck(p))
    }
}

/// Fraction of points a fitted model classifies correctly.
pub fn accuracy(model: &dyn BottleneckClassifier, data: &[TrainPoint]) -> f64 {
    if data.is_empty() {
        return 1.0;
    }
    let correct = data
        .iter()
        .filter(|pt| model.predict(&pt.embedding, pt.parallelism) == pt.bottleneck)
        .count();
    correct as f64 / data.len() as f64
}

/// Check monotonicity empirically on a grid: for every embedding in
/// `probes`, `P(bottleneck)` must be non-increasing as `p` sweeps 1..=p_max.
pub fn verify_monotonic(model: &dyn BottleneckClassifier, probes: &[Vec<f64>], p_max: u32) -> bool {
    for h in probes {
        let mut prev = f64::INFINITY;
        for p in 1..=p_max {
            let prob = model.predict_proba(h, p);
            if prob > prev + 1e-9 {
                return false;
            }
            prev = prob;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-written monotonic stub: bottleneck iff p < threshold stored
    /// in embedding[0].
    struct Stub;
    impl BottleneckClassifier for Stub {
        fn fit(&mut self, _data: &[TrainPoint]) {}
        fn predict_proba(&self, embedding: &[f64], parallelism: u32) -> f64 {
            if f64::from(parallelism) < embedding[0] {
                0.9
            } else {
                0.1
            }
        }
        fn is_monotonic(&self) -> bool {
            true
        }
    }

    #[test]
    fn binary_search_finds_threshold() {
        let m = Stub;
        assert_eq!(recommend_min_parallelism(&m, &[7.0], 100), Some(7));
        assert_eq!(recommend_min_parallelism(&m, &[1.0], 100), Some(1));
        assert_eq!(recommend_min_parallelism(&m, &[100.5], 100), None);
    }

    /// Non-monotonic stub: claims non-bottleneck at exactly p = 2 only.
    struct Bumpy;
    impl BottleneckClassifier for Bumpy {
        fn fit(&mut self, _data: &[TrainPoint]) {}
        fn predict_proba(&self, _e: &[f64], p: u32) -> f64 {
            if p == 2 || p >= 10 {
                0.0
            } else {
                1.0
            }
        }
        fn is_monotonic(&self) -> bool {
            false
        }
    }

    #[test]
    fn linear_scan_hits_spurious_dip() {
        // The non-monotonic path finds the spurious p=2 — the failure mode
        // the paper's constraint exists to prevent.
        assert_eq!(recommend_min_parallelism(&Bumpy, &[0.0], 100), Some(2));
        assert!(!verify_monotonic(&Bumpy, &[vec![0.0]], 12));
    }

    #[test]
    fn assemble_input_normalizes() {
        let v = assemble_input(&[1.0, 2.0], 50);
        assert_eq!(v, vec![1.0, 2.0, 0.5]);
    }

    #[test]
    fn stub_is_monotonic() {
        assert!(verify_monotonic(&Stub, &[vec![5.0], vec![50.0]], 100));
    }
}
