//! Monotonic soft-margin SVM (paper Eq. 5).
//!
//! Decision function `f(x) = w_e·φ(h) + w_p·p + b` with hinge loss, L2
//! regularization, and the monotonicity constraint `w_p ≤ 0` enforced by
//! projection after every gradient step (projected subgradient descent on
//! the convex objective — the projection keeps iterates feasible, so the
//! constraint holds *exactly*, not approximately).
//!
//! Class +1 = bottleneck; `w_p ≤ 0` then makes `P(bottleneck)` =
//! `σ(f)` non-increasing in parallelism, as required.

use crate::rff::RandomFourierFeatures;
use crate::{BottleneckClassifier, TrainPoint, PARALLELISM_NORM};
use serde::{Deserialize, Serialize};

/// SVM hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmConfig {
    /// Soft-margin penalty `C`.
    pub c: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Initial learning rate (decays as 1/√t).
    pub lr: f64,
    /// Optional kernel trick: number of random Fourier features over the
    /// embedding part (`None` = linear on `h`).
    pub rff_dim: Option<usize>,
    /// RBF bandwidth for the kernel map.
    pub rff_gamma: f64,
    /// Seed for the feature map and shuffling.
    pub seed: u64,
    /// Sigmoid sharpness for probability calibration.
    pub proba_scale: f64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            c: 10.0,
            epochs: 120,
            lr: 0.5,
            rff_dim: Some(64),
            rff_gamma: 1.0,
            seed: 23,
            proba_scale: 3.0,
        }
    }
}

/// The monotonic SVM model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonotonicSvm {
    config: SvmConfig,
    rff: Option<RandomFourierFeatures>,
    /// Per-dimension standardization of the raw embedding (GNN activations
    /// have arbitrary scale; the RBF kernel needs unit-scale inputs).
    feat_mean: Vec<f64>,
    feat_std: Vec<f64>,
    /// Weights over φ(h).
    w_e: Vec<f64>,
    /// Weight on the (normalized) parallelism — constrained ≤ 0.
    w_p: f64,
    bias: f64,
    fitted: bool,
}

impl MonotonicSvm {
    /// Fresh, unfitted model.
    pub fn new(config: SvmConfig) -> Self {
        MonotonicSvm {
            config,
            rff: None,
            feat_mean: Vec::new(),
            feat_std: Vec::new(),
            w_e: Vec::new(),
            w_p: 0.0,
            bias: 0.0,
            fitted: false,
        }
    }

    /// The learned parallelism weight (always ≤ 0 after fitting).
    pub fn parallelism_weight(&self) -> f64 {
        self.w_p
    }

    fn standardize(&self, embedding: &[f64]) -> Vec<f64> {
        if self.feat_mean.is_empty() {
            return embedding.to_vec();
        }
        embedding
            .iter()
            .zip(self.feat_mean.iter().zip(&self.feat_std))
            .map(|(&x, (&m, &s))| (x - m) / s)
            .collect()
    }

    fn features(&self, embedding: &[f64]) -> Vec<f64> {
        let z = self.standardize(embedding);
        match &self.rff {
            Some(rff) => rff.transform(&z),
            None => z,
        }
    }

    /// Raw decision value `f(x)`.
    pub fn decision(&self, embedding: &[f64], parallelism: u32) -> f64 {
        let phi = self.features(embedding);
        let we_dot: f64 = self.w_e.iter().zip(&phi).map(|(w, x)| w * x).sum();
        we_dot + self.w_p * (f64::from(parallelism) / PARALLELISM_NORM) + self.bias
    }
}

impl BottleneckClassifier for MonotonicSvm {
    fn fit(&mut self, data: &[TrainPoint]) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let dim = data[0].embedding.len();
        // Standardize each embedding dimension over the training set.
        let n_pts = data.len() as f64;
        let mut mean = vec![0.0; dim];
        for pt in data {
            for (m, &x) in mean.iter_mut().zip(&pt.embedding) {
                *m += x / n_pts;
            }
        }
        let mut var = vec![0.0; dim];
        for pt in data {
            for ((v, &m), &x) in var.iter_mut().zip(&mean).zip(&pt.embedding) {
                *v += (x - m) * (x - m) / n_pts;
            }
        }
        self.feat_mean = mean;
        self.feat_std = var.into_iter().map(|v| v.sqrt().max(1e-6)).collect();
        // RBF bandwidth relative to the standardized dimensionality so the
        // kernel stays informative regardless of the embedding scale.
        let gamma = self.config.rff_gamma / dim as f64;
        self.rff = self
            .config
            .rff_dim
            .map(|d| RandomFourierFeatures::new(dim, d, gamma, self.config.seed));
        let feat_dim = self.config.rff_dim.unwrap_or(dim);
        self.w_e = vec![0.0; feat_dim];
        self.w_p = 0.0;
        self.bias = 0.0;

        // Precompute feature vectors (the map is fixed).
        let phis: Vec<Vec<f64>> = data.iter().map(|pt| self.features(&pt.embedding)).collect();
        let ps: Vec<f64> = data
            .iter()
            .map(|pt| f64::from(pt.parallelism) / PARALLELISM_NORM)
            .collect();
        let ys: Vec<f64> = data
            .iter()
            .map(|pt| if pt.bottleneck { 1.0 } else { -1.0 })
            .collect();

        let n = data.len() as f64;
        // Class-balanced penalties: bottleneck labels are the rare,
        // decisive minority; weight them so the hinge loss cannot ignore
        // them (standard class-weighted SVM).
        let pos = ys.iter().filter(|&&y| y > 0.0).count().max(1) as f64;
        let neg = (data.len() as f64 - pos).max(1.0);
        let c_pos = self.config.c * (n / (2.0 * pos)).min(25.0);
        let c_neg = self.config.c * (n / (2.0 * neg)).min(25.0);
        let mut t = 0.0_f64;
        // A simple deterministic index shuffle per epoch.
        let mut order: Vec<usize> = (0..data.len()).collect();
        let len = order.len().max(1);
        for epoch in 0..self.config.epochs {
            // Rotate the visit order deterministically.
            order.rotate_left(epoch % len);
            for &i in &order {
                t += 1.0;
                let lr = self.config.lr / t.sqrt();
                let margin = ys[i]
                    * (self
                        .w_e
                        .iter()
                        .zip(&phis[i])
                        .map(|(w, x)| w * x)
                        .sum::<f64>()
                        + self.w_p * ps[i]
                        + self.bias);
                let c = if ys[i] > 0.0 { c_pos } else { c_neg };
                // Subgradient of (1/2)‖w‖²/n + C_y·hinge, per-sample.
                for (w, &x) in self.w_e.iter_mut().zip(&phis[i]) {
                    let reg = *w / n;
                    let loss = if margin < 1.0 { -c * ys[i] * x } else { 0.0 };
                    *w -= lr * (reg + loss);
                }
                let regp = self.w_p / n;
                let lossp = if margin < 1.0 {
                    -c * ys[i] * ps[i]
                } else {
                    0.0
                };
                self.w_p -= lr * (regp + lossp);
                if margin < 1.0 {
                    self.bias -= lr * (-c * ys[i]);
                }
                // Projection: keep the monotonic constraint exactly feasible.
                self.w_p = self.w_p.min(0.0);
            }
        }
        self.fitted = true;
    }

    fn predict_proba(&self, embedding: &[f64], parallelism: u32) -> f64 {
        assert!(self.fitted, "predict before fit");
        let f = self.decision(embedding, parallelism);
        1.0 / (1.0 + (-self.config.proba_scale * f).exp())
    }

    fn is_monotonic(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{accuracy, recommend_min_parallelism, verify_monotonic};

    /// Threshold data: bottleneck iff p < thresh, where thresh depends on
    /// the (1-d) embedding.
    fn threshold_data(thresholds: &[(f64, u32)]) -> Vec<TrainPoint> {
        let mut data = Vec::new();
        for &(emb, thresh) in thresholds {
            for p in (1..=60).step_by(3) {
                data.push(TrainPoint {
                    embedding: vec![emb, 1.0 - emb],
                    parallelism: p,
                    bottleneck: p < thresh,
                });
            }
        }
        data
    }

    #[test]
    fn learns_simple_threshold() {
        let data = threshold_data(&[(0.2, 12), (0.8, 30)]);
        let mut svm = MonotonicSvm::new(SvmConfig::default());
        svm.fit(&data);
        assert!(accuracy(&svm, &data) > 0.9, "acc {}", accuracy(&svm, &data));
    }

    #[test]
    fn parallelism_weight_is_nonpositive() {
        let data = threshold_data(&[(0.5, 20)]);
        let mut svm = MonotonicSvm::new(SvmConfig::default());
        svm.fit(&data);
        assert!(svm.parallelism_weight() <= 0.0);
    }

    #[test]
    fn predictions_are_monotonic() {
        let data = threshold_data(&[(0.2, 12), (0.8, 30)]);
        let mut svm = MonotonicSvm::new(SvmConfig::default());
        svm.fit(&data);
        assert!(verify_monotonic(
            &svm,
            &[vec![0.2, 0.8], vec![0.8, 0.2], vec![0.5, 0.5]],
            100
        ));
    }

    #[test]
    fn recommendation_near_true_threshold() {
        let data = threshold_data(&[(0.2, 12), (0.8, 30)]);
        let mut svm = MonotonicSvm::new(SvmConfig::default());
        svm.fit(&data);
        let rec = recommend_min_parallelism(&svm, &[0.2, 0.8], 100).unwrap();
        assert!(
            (8..=18).contains(&rec),
            "recommended {rec}, true threshold 12"
        );
        let rec_hi = recommend_min_parallelism(&svm, &[0.8, 0.2], 100).unwrap();
        assert!(
            (24..=38).contains(&rec_hi),
            "recommended {rec_hi}, true threshold 30"
        );
        assert!(rec < rec_hi);
    }

    #[test]
    fn linear_variant_also_monotonic() {
        let data = threshold_data(&[(0.3, 15)]);
        let mut svm = MonotonicSvm::new(SvmConfig {
            rff_dim: None,
            ..Default::default()
        });
        svm.fit(&data);
        assert!(verify_monotonic(&svm, &[vec![0.3, 0.7]], 100));
        assert!(accuracy(&svm, &data) > 0.85);
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        let svm = MonotonicSvm::new(SvmConfig::default());
        let _ = svm.predict_proba(&[0.0, 0.0], 1);
    }
}
