//! Unconstrained neural-network classifier — the Fig. 11a ablation.
//!
//! A plain MLP over `[h, p]` with no monotonicity guarantee. The paper
//! shows (and our ablation bench reproduces) that without the constraint,
//! spurious low-parallelism "non-bottleneck" predictions slip through and
//! cause backpressure during tuning.

use crate::{BottleneckClassifier, TrainPoint};
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use streamtune_nn::{Activation, AdamConfig, Bindings, Matrix, Mlp, ParamSet, Tape};

/// NN hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NnConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// Training epochs (full-batch Adam steps).
    pub epochs: usize,
    /// Adam settings.
    pub adam: AdamConfig,
    /// Initialization seed.
    pub seed: u64,
}

impl Default for NnConfig {
    fn default() -> Self {
        NnConfig {
            hidden: 16,
            epochs: 300,
            adam: AdamConfig {
                lr: 0.02,
                ..Default::default()
            },
            seed: 31,
        }
    }
}

/// The unconstrained MLP classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NnClassifier {
    config: NnConfig,
    params: ParamSet,
    mlp: Option<Mlp>,
    feat_mean: Vec<f64>,
    feat_std: Vec<f64>,
}

impl NnClassifier {
    /// Fresh, unfitted model.
    pub fn new(config: NnConfig) -> Self {
        NnClassifier {
            config,
            params: ParamSet::new(),
            mlp: None,
            feat_mean: Vec::new(),
            feat_std: Vec::new(),
        }
    }

    fn standardized_input(&self, embedding: &[f64], parallelism: u32) -> Vec<f64> {
        let mut x: Vec<f64> = embedding
            .iter()
            .zip(self.feat_mean.iter().zip(&self.feat_std))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect();
        x.push(f64::from(parallelism) / streamtune_nn::PARALLELISM_NORM);
        x
    }
}

impl BottleneckClassifier for NnClassifier {
    fn fit(&mut self, data: &[TrainPoint]) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let dim = data[0].embedding.len() + 1;
        // Standardize embedding dims (tanh saturates on raw GNN scales).
        let n_pts = data.len() as f64;
        let edim = data[0].embedding.len();
        let mut mean = vec![0.0; edim];
        for pt in data {
            for (m, &x) in mean.iter_mut().zip(&pt.embedding) {
                *m += x / n_pts;
            }
        }
        let mut var = vec![0.0; edim];
        for pt in data {
            for ((v, &m), &x) in var.iter_mut().zip(&mean).zip(&pt.embedding) {
                *v += (x - m) * (x - m) / n_pts;
            }
        }
        self.feat_mean = mean;
        self.feat_std = var.into_iter().map(|v| v.sqrt().max(1e-6)).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed);
        let mut params = ParamSet::new();
        let mlp = Mlp::new(
            &mut params,
            &[dim, self.config.hidden, 1],
            Activation::Tanh,
            Activation::Sigmoid,
            &mut rng,
        );
        let x = Matrix::from_rows(
            &data
                .iter()
                .map(|pt| self.standardized_input(&pt.embedding, pt.parallelism))
                .collect::<Vec<_>>(),
        );
        let y = Matrix::col_vector(
            &data
                .iter()
                .map(|p| if p.bottleneck { 1.0 } else { 0.0 })
                .collect::<Vec<_>>(),
        );
        let mask = Matrix::col_vector(&vec![1.0; data.len()]);
        for _ in 0..self.config.epochs {
            let mut tape = Tape::new();
            let mut bindings = Bindings::new();
            let xv = tape.leaf(x.clone());
            let pred = mlp.forward(&params, &mut tape, &mut bindings, xv);
            let (_, grad) = Tape::bce_grad(tape.value(pred), &y, &mask);
            tape.backward_from(pred, grad);
            params.adam_step(&tape, &bindings, &self.config.adam.clone());
        }
        self.params = params;
        self.mlp = Some(mlp);
    }

    fn predict_proba(&self, embedding: &[f64], parallelism: u32) -> f64 {
        let mlp = self.mlp.as_ref().expect("predict before fit");
        let x = Matrix::row_vector(&self.standardized_input(embedding, parallelism));
        mlp.infer(&self.params, &x).get(0, 0)
    }

    fn is_monotonic(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy;

    fn threshold_data(thresholds: &[(f64, u32)]) -> Vec<TrainPoint> {
        let mut data = Vec::new();
        for &(emb, thresh) in thresholds {
            for p in (1..=60).step_by(2) {
                data.push(TrainPoint {
                    embedding: vec![emb, 1.0 - emb],
                    parallelism: p,
                    bottleneck: p < thresh,
                });
            }
        }
        data
    }

    #[test]
    fn fits_training_data() {
        let data = threshold_data(&[(0.2, 12), (0.8, 35)]);
        let mut m = NnClassifier::new(NnConfig::default());
        m.fit(&data);
        assert!(accuracy(&m, &data) > 0.85, "acc {}", accuracy(&m, &data));
    }

    #[test]
    fn reports_non_monotonic() {
        let m = NnClassifier::new(NnConfig::default());
        assert!(!m.is_monotonic());
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        let m = NnClassifier::new(NnConfig::default());
        let _ = m.predict_proba(&[0.0], 1);
    }
}
