//! Random Fourier features — the kernel trick for the SVM head.
//!
//! Paper Eq. 4 applies a feature map `φ(h)` induced by an RBF kernel to the
//! embedding part of the input (the parallelism dimension stays linear so
//! `w_p ≤ 0` keeps its monotonic meaning). Rahimi–Recht random features
//! approximate the RBF kernel: `φ(h)_i = √(2/D) · cos(ω_i·h + b_i)` with
//! `ω ~ N(0, γ·I)`, `b ~ U[0, 2π]`.

use rand::{Rng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// An RBF-kernel random feature map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomFourierFeatures {
    /// `D × d` frequency matrix (row i = ω_i).
    omegas: Vec<Vec<f64>>,
    /// Phase offsets, length `D`.
    phases: Vec<f64>,
    /// Input dimension `d`.
    input_dim: usize,
}

impl RandomFourierFeatures {
    /// Sample a map of `output_dim` features for inputs of `input_dim`
    /// dims, approximating `exp(-γ‖a−b‖²/2)`.
    pub fn new(input_dim: usize, output_dim: usize, gamma: f64, seed: u64) -> Self {
        assert!(gamma > 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let omegas = (0..output_dim)
            .map(|_| {
                (0..input_dim)
                    .map(|_| gaussian(&mut rng) * gamma.sqrt())
                    .collect()
            })
            .collect();
        let phases = (0..output_dim)
            .map(|_| rng.random_range(0.0..std::f64::consts::TAU))
            .collect();
        RandomFourierFeatures {
            omegas,
            phases,
            input_dim,
        }
    }

    /// Output dimension `D`.
    pub fn output_dim(&self) -> usize {
        self.omegas.len()
    }

    /// Input dimension `d`.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Map one input vector.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.input_dim, "input dim mismatch");
        let scale = (2.0 / self.output_dim() as f64).sqrt();
        self.omegas
            .iter()
            .zip(&self.phases)
            .map(|(w, &b)| {
                let dot: f64 = w.iter().zip(x).map(|(wi, xi)| wi * xi).sum();
                scale * (dot + b).cos()
            })
            .collect()
    }
}

fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    // Box–Muller.
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn approximates_rbf_kernel() {
        let gamma = 0.5;
        let rff = RandomFourierFeatures::new(4, 512, gamma, 42);
        let a = vec![0.2, -0.1, 0.4, 0.0];
        let b = vec![0.1, 0.3, -0.2, 0.5];
        let fa = rff.transform(&a);
        let fb = rff.transform(&b);
        let approx = dot(&fa, &fb);
        let sq: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).powi(2)).sum();
        let exact = (-gamma * sq / 2.0).exp();
        assert!(
            (approx - exact).abs() < 0.1,
            "kernel approx {approx} vs exact {exact}"
        );
    }

    #[test]
    fn self_similarity_near_one() {
        let rff = RandomFourierFeatures::new(3, 512, 1.0, 7);
        let x = vec![1.0, 2.0, 3.0];
        let f = rff.transform(&x);
        assert!((dot(&f, &f) - 1.0).abs() < 0.15);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = RandomFourierFeatures::new(3, 16, 1.0, 9);
        let b = RandomFourierFeatures::new(3, 16, 1.0, 9);
        assert_eq!(
            a.transform(&[1.0, 0.0, -1.0]),
            b.transform(&[1.0, 0.0, -1.0])
        );
        let c = RandomFourierFeatures::new(3, 16, 1.0, 10);
        assert_ne!(
            a.transform(&[1.0, 0.0, -1.0]),
            c.transform(&[1.0, 0.0, -1.0])
        );
    }
}
