//! Gradient-boosted decision trees with a monotone constraint on the
//! parallelism feature (the paper's XGBoost variant, §IV-B).
//!
//! Standard second-order gradient boosting with logistic loss. The
//! monotonicity requirement — predictions non-increasing in parallelism —
//! is enforced exactly as described in the paper:
//!
//! * **split rejection**: a candidate split on the constrained feature
//!   whose left/right leaf values would violate the decreasing order gets
//!   gain `−∞` and is never taken;
//! * **leaf clamping**: each subtree carries a `[lo, hi]` value interval;
//!   after a constrained split at midpoint `m`, the low-parallelism side
//!   may only produce values in `[m, hi]` and the high-parallelism side in
//!   `[lo, m]`, so the order holds across the whole ensemble.

use crate::{BottleneckClassifier, TrainPoint};
use serde::{Deserialize, Serialize};

/// GBDT hyperparameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GbdtConfig {
    /// Boosting rounds (trees).
    pub rounds: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Shrinkage (learning rate).
    pub lr: f64,
    /// L2 regularization on leaf values.
    pub lambda: f64,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Minimum split gain.
    pub min_gain: f64,
    /// Cap on the positive-class weight (XGBoost `scale_pos_weight`).
    pub scale_pos_weight_cap: f64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            rounds: 40,
            max_depth: 3,
            lr: 0.3,
            lambda: 1.0,
            min_samples_leaf: 2,
            min_gain: 1e-6,
            scale_pos_weight_cap: 25.0,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// The monotone-constrained GBDT classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonotonicGbdt {
    config: GbdtConfig,
    trees: Vec<Tree>,
    base_score: f64,
    /// Index of the monotone-decreasing feature (the parallelism column —
    /// always the last input dimension).
    constrained: usize,
    fitted: bool,
}

struct TreeBuilder<'a> {
    xs: &'a [Vec<f64>],
    grads: &'a [f64],
    hess: &'a [f64],
    cfg: &'a GbdtConfig,
    constrained: usize,
    nodes: Vec<Node>,
}

impl TreeBuilder<'_> {
    fn leaf_value(&self, g: f64, h: f64, lo: f64, hi: f64) -> f64 {
        (-g / (h + self.cfg.lambda)).clamp(lo, hi)
    }

    fn build(&mut self, indices: &[usize], depth: usize, lo: f64, hi: f64) -> usize {
        let g: f64 = indices.iter().map(|&i| self.grads[i]).sum();
        let h: f64 = indices.iter().map(|&i| self.hess[i]).sum();
        let make_leaf = |s: &Self| Node::Leaf(s.leaf_value(g, h, lo, hi) * s.cfg.lr);

        if depth >= self.cfg.max_depth || indices.len() < 2 * self.cfg.min_samples_leaf {
            self.nodes.push(make_leaf(self));
            return self.nodes.len() - 1;
        }

        // Greedy exact split search.
        let parent_score = g * g / (h + self.cfg.lambda);
        let dim = self.xs[0].len();
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        for f in 0..dim {
            let mut sorted: Vec<usize> = indices.to_vec();
            sorted.sort_by(|&a, &b| self.xs[a][f].partial_cmp(&self.xs[b][f]).unwrap());
            let mut gl = 0.0;
            let mut hl = 0.0;
            for k in 0..sorted.len() - 1 {
                gl += self.grads[sorted[k]];
                hl += self.hess[sorted[k]];
                let xv = self.xs[sorted[k]][f];
                let xn = self.xs[sorted[k + 1]][f];
                if xv == xn {
                    continue; // cannot split between equal values
                }
                let nl = k + 1;
                let nr = sorted.len() - nl;
                if nl < self.cfg.min_samples_leaf || nr < self.cfg.min_samples_leaf {
                    continue;
                }
                let gr = g - gl;
                let hr = h - hl;
                let gain = gl * gl / (hl + self.cfg.lambda) + gr * gr / (hr + self.cfg.lambda)
                    - parent_score;
                if gain <= self.cfg.min_gain {
                    continue;
                }
                if f == self.constrained {
                    // Split rejection: decreasing constraint requires the
                    // low-parallelism (left) value ≥ high-parallelism value.
                    let wl = self.leaf_value(gl, hl, lo, hi);
                    let wr = self.leaf_value(gr, hr, lo, hi);
                    if wl < wr {
                        continue; // gain = −∞
                    }
                }
                if best.map(|(bg, _, _)| gain > bg).unwrap_or(true) {
                    best = Some((gain, f, (xv + xn) / 2.0));
                }
            }
        }

        let Some((_, feature, threshold)) = best else {
            self.nodes.push(make_leaf(self));
            return self.nodes.len() - 1;
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| self.xs[i][feature] <= threshold);

        // Child value intervals: clamp around the midpoint for constrained
        // splits, inherit otherwise.
        let (l_lo, l_hi, r_lo, r_hi) = if feature == self.constrained {
            let gl: f64 = left_idx.iter().map(|&i| self.grads[i]).sum();
            let hl: f64 = left_idx.iter().map(|&i| self.hess[i]).sum();
            let gr: f64 = right_idx.iter().map(|&i| self.grads[i]).sum();
            let hr: f64 = right_idx.iter().map(|&i| self.hess[i]).sum();
            let wl = self.leaf_value(gl, hl, lo, hi);
            let wr = self.leaf_value(gr, hr, lo, hi);
            let mid = (wl + wr) / 2.0;
            (mid, hi, lo, mid)
        } else {
            (lo, hi, lo, hi)
        };

        let placeholder = self.nodes.len();
        self.nodes.push(Node::Leaf(0.0)); // replaced below
        let left = self.build(&left_idx, depth + 1, l_lo, l_hi);
        let right = self.build(&right_idx, depth + 1, r_lo, r_hi);
        self.nodes[placeholder] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        placeholder
    }
}

impl MonotonicGbdt {
    /// Fresh, unfitted model.
    pub fn new(config: GbdtConfig) -> Self {
        MonotonicGbdt {
            config,
            trees: Vec::new(),
            base_score: 0.0,
            constrained: 0,
            fitted: false,
        }
    }

    /// Number of trees in the fitted ensemble.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    fn raw_score(&self, x: &[f64]) -> f64 {
        self.base_score + self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl BottleneckClassifier for MonotonicGbdt {
    fn fit(&mut self, data: &[TrainPoint]) {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let xs: Vec<Vec<f64>> = data.iter().map(TrainPoint::input).collect();
        let ys: Vec<f64> = data
            .iter()
            .map(|p| if p.bottleneck { 1.0 } else { 0.0 })
            .collect();
        self.constrained = xs[0].len() - 1;
        let pos = ys.iter().sum::<f64>() / ys.len() as f64;
        let p0 = pos.clamp(0.01, 0.99);
        self.base_score = (p0 / (1.0 - p0)).ln();
        self.trees.clear();

        let mut scores = vec![self.base_score; xs.len()];
        let all: Vec<usize> = (0..xs.len()).collect();
        // Class balancing (XGBoost's scale_pos_weight): bottleneck labels
        // are the rare minority; without it the ensemble ignores them.
        let pos_count = ys.iter().filter(|&&y| y > 0.5).count().max(1) as f64;
        let spw = ((ys.len() as f64 - pos_count) / pos_count)
            .clamp(1.0, self.config.scale_pos_weight_cap.max(1.0));
        for _ in 0..self.config.rounds {
            let mut grads = Vec::with_capacity(xs.len());
            let mut hess = Vec::with_capacity(xs.len());
            for i in 0..xs.len() {
                let p = sigmoid(scores[i]);
                let w = if ys[i] > 0.5 { spw } else { 1.0 };
                grads.push(w * (p - ys[i]));
                hess.push((w * p * (1.0 - p)).max(1e-9));
            }
            let mut builder = TreeBuilder {
                xs: &xs,
                grads: &grads,
                hess: &hess,
                cfg: &self.config,
                constrained: self.constrained,
                nodes: Vec::new(),
            };
            let root = builder.build(&all, 0, f64::NEG_INFINITY, f64::INFINITY);
            debug_assert_eq!(root, 0);
            let tree = Tree {
                nodes: builder.nodes,
            };
            for i in 0..xs.len() {
                scores[i] += tree.predict(&xs[i]);
            }
            self.trees.push(tree);
        }
        self.fitted = true;
    }

    fn predict_proba(&self, embedding: &[f64], parallelism: u32) -> f64 {
        assert!(self.fitted, "predict before fit");
        let x = crate::assemble_input(embedding, parallelism);
        sigmoid(self.raw_score(&x))
    }

    fn is_monotonic(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{accuracy, recommend_min_parallelism, verify_monotonic};

    fn threshold_data(thresholds: &[(f64, u32)]) -> Vec<TrainPoint> {
        let mut data = Vec::new();
        for &(emb, thresh) in thresholds {
            for p in 1..=60 {
                data.push(TrainPoint {
                    embedding: vec![emb, emb * emb],
                    parallelism: p,
                    bottleneck: p < thresh,
                });
            }
        }
        data
    }

    #[test]
    fn learns_threshold_accurately() {
        let data = threshold_data(&[(0.2, 12), (0.8, 35)]);
        let mut m = MonotonicGbdt::new(GbdtConfig::default());
        m.fit(&data);
        assert!(accuracy(&m, &data) > 0.95, "acc {}", accuracy(&m, &data));
        assert_eq!(m.num_trees(), 40);
    }

    #[test]
    fn predictions_are_monotonic_in_parallelism() {
        let data = threshold_data(&[(0.2, 12), (0.8, 35), (0.5, 20)]);
        let mut m = MonotonicGbdt::new(GbdtConfig::default());
        m.fit(&data);
        // Probe both training embeddings and unseen ones.
        let probes = vec![
            vec![0.2, 0.04],
            vec![0.8, 0.64],
            vec![0.5, 0.25],
            vec![0.35, 0.1225],
            vec![0.65, 0.4225],
        ];
        assert!(verify_monotonic(&m, &probes, 100));
    }

    #[test]
    fn recommendation_close_to_true_threshold() {
        let data = threshold_data(&[(0.2, 12), (0.8, 35)]);
        let mut m = MonotonicGbdt::new(GbdtConfig::default());
        m.fit(&data);
        let r1 = recommend_min_parallelism(&m, &[0.2, 0.04], 100).unwrap();
        let r2 = recommend_min_parallelism(&m, &[0.8, 0.64], 100).unwrap();
        assert!((10..=14).contains(&r1), "r1 = {r1}");
        assert!((32..=38).contains(&r2), "r2 = {r2}");
    }

    #[test]
    fn interpolates_between_seen_embeddings_monotonically() {
        let data = threshold_data(&[(0.1, 8), (0.9, 40)]);
        let mut m = MonotonicGbdt::new(GbdtConfig::default());
        m.fit(&data);
        let r_mid = recommend_min_parallelism(&m, &[0.5, 0.25], 100).unwrap();
        assert!((6..=42).contains(&r_mid), "r_mid = {r_mid}");
    }

    #[test]
    fn all_one_class_predicts_that_class() {
        let data: Vec<TrainPoint> = (1..=20)
            .map(|p| TrainPoint {
                embedding: vec![0.3, 0.3],
                parallelism: p,
                bottleneck: false,
            })
            .collect();
        let mut m = MonotonicGbdt::new(GbdtConfig::default());
        m.fit(&data);
        assert!(!m.predict(&[0.3, 0.3], 5));
    }

    #[test]
    fn handles_tiny_dataset() {
        let data = vec![
            TrainPoint {
                embedding: vec![0.5, 0.5],
                parallelism: 1,
                bottleneck: true,
            },
            TrainPoint {
                embedding: vec![0.5, 0.5],
                parallelism: 50,
                bottleneck: false,
            },
        ];
        let mut m = MonotonicGbdt::new(GbdtConfig::default());
        m.fit(&data);
        // Even with 2 points the monotone order must hold.
        assert!(m.predict_proba(&[0.5, 0.5], 1) >= m.predict_proba(&[0.5, 0.5], 50));
    }
}
